#!/usr/bin/env python3
"""CI perf-regression gate: run the benchmarks, record and assert speedups.

Runs the three performance benchmarks (batch sweep, fleet campaign,
allocation service) on a reduced grid sized for CI runners, collects the
wall times and speedups they emit under ``benchmarks/output/``, re-asserts
the speedup floors, and writes everything to one JSON trajectory file
(``BENCH_PR4.json`` by default) that the workflow uploads as an artifact.

Usage::

    PYTHONPATH=src python scripts/bench_gate.py [--output BENCH_PR4.json]
        [--full]   # full-size grids instead of the reduced CI grid
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUTPUT_DIR = REPO / "benchmarks" / "output"

BENCH_FILES = [
    "benchmarks/bench_batch_sweep.py",
    "benchmarks/bench_fleet_campaign.py",
    "benchmarks/bench_service.py",
]

#: Reduced-grid knobs for CI runners; every floor below still holds at
#: these sizes (checked in-repo on a single-core container).
REDUCED_GRID = {
    "REPRO_BENCH_BUDGETS": "60",
    "REPRO_BENCH_FLEET_HOURS": "336",
    "REPRO_BENCH_SERVICE_REQUESTS": "192",
    "REPRO_BENCH_SHARD_HOURS": "168",
    "REPRO_BENCH_POOLED_POINTS": "96",
}

#: (csv file, row label, speedup column, floor).  The floors mirror the
#: asserts inside the benchmarks; re-checking here keeps the gate honest
#: even if a benchmark's own assert is edited away.
GATES = [
    ("batch_sweep.csv", "batch engine", "speedup_x", 10.0),
    ("fleet_campaign.csv", "fleet engine", "speedup_x", 10.0),
    ("service_throughput.csv", "coalesced service", "speedup_vs_scalar", 10.0),
    ("service_pool.csv", "4 workers", "speedup_vs_single", 1.05),
]


def read_csv(path: Path):
    """One CSV as (headers, row dicts keyed by the first column)."""
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        rows = list(reader)
    return reader.fieldnames or [], rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR4.json",
                        help="where to write the JSON trajectory file")
    parser.add_argument("--full", action="store_true",
                        help="run full-size grids (no REPRO_BENCH_* knobs)")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    if not args.full:
        for key, value in REDUCED_GRID.items():
            env.setdefault(key, value)
    python_path = str(REPO / "src")
    if env.get("PYTHONPATH"):
        python_path = python_path + os.pathsep + env["PYTHONPATH"]
    env["PYTHONPATH"] = python_path

    # Stale CSVs from earlier (possibly full-grid) runs would be gated on
    # and recorded as this run's numbers; start from a clean slate so the
    # "missing" check below is meaningful.
    if OUTPUT_DIR.exists():
        for stale in OUTPUT_DIR.glob("*.csv"):
            stale.unlink()

    started = time.time()
    run = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", *BENCH_FILES],
        cwd=REPO,
        env=env,
    )
    wall_s = time.time() - started
    if run.returncode != 0:
        print(f"benchmark run failed (exit {run.returncode})", file=sys.stderr)
        return run.returncode

    benchmarks = {}
    for filename in sorted(OUTPUT_DIR.glob("*.csv")):
        headers, rows = read_csv(filename)
        benchmarks[filename.stem] = {"headers": headers, "rows": rows}

    failures = []
    gated = {}
    for filename, label, column, floor in GATES:
        path = OUTPUT_DIR / filename
        if not path.exists():
            failures.append(f"{filename}: missing (benchmark did not emit it)")
            continue
        _, rows = read_csv(path)
        matches = [row for row in rows if label in row[next(iter(row))]]
        if not matches:
            failures.append(f"{filename}: no row matching {label!r}")
            continue
        speedup = float(matches[0][column])
        name = Path(filename).stem
        gated[name] = {"speedup": speedup, "floor": floor,
                       "passed": speedup >= floor}
        status = "ok" if speedup >= floor else "FAIL"
        print(f"[bench-gate] {name}: {speedup:.2f}x (floor {floor:g}x) {status}")
        if speedup < floor:
            failures.append(
                f"{filename}: {label} speedup {speedup:.2f}x < floor {floor:g}x"
            )

    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "reduced_grid": not args.full,
        "grid": {k: env[k] for k in REDUCED_GRID} if not args.full else {},
        "wall_s": wall_s,
        "gates": gated,
        "benchmarks": benchmarks,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench-gate] trajectory written to {output}")

    if failures:
        for failure in failures:
            print(f"[bench-gate] {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
