#!/usr/bin/env python3
"""CI perf-regression gate: run the benchmarks, record and assert speedups.

Runs the eight performance benchmarks (batch sweep, fleet campaign,
allocation service, planning scan, kernel backends + wire format, shard
transports, store journaling overhead, cluster-observability overhead)
on a reduced grid sized for CI runners, collects the wall times and
speedups they emit under ``benchmarks/output/``, re-asserts the speedup
floors, and writes everything to one JSON trajectory file
(``BENCH_PR10.json`` by default) that the workflow uploads as an
artifact.

When a previous PR's trajectory artifact is available (``--baseline
PATH``, or auto-discovered as the highest-numbered other ``BENCH_PR*.json``
in the repo root), each gate's speedup is additionally compared against
the baseline's and the gate fails on a >20% regression -- the absolute
floors catch catastrophic slowdowns, the baseline comparison catches
gradual erosion.

Usage::

    PYTHONPATH=src python scripts/bench_gate.py [--output BENCH_PR10.json]
        [--baseline BENCH_PR5.json]  # previous artifact to compare against
        [--full]   # full-size grids instead of the reduced CI grid
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUTPUT_DIR = REPO / "benchmarks" / "output"

BENCH_FILES = [
    "benchmarks/bench_batch_sweep.py",
    "benchmarks/bench_fleet_campaign.py",
    "benchmarks/bench_service.py",
    "benchmarks/bench_planning.py",
    "benchmarks/bench_kernels.py",
    "benchmarks/bench_shard.py",
    "benchmarks/bench_store.py",
    "benchmarks/bench_obs.py",
]

#: Reduced-grid knobs for CI runners; every floor below still holds at
#: these sizes (checked in-repo on a single-core container).
REDUCED_GRID = {
    "REPRO_BENCH_BUDGETS": "60",
    "REPRO_BENCH_FLEET_HOURS": "336",
    "REPRO_BENCH_SERVICE_REQUESTS": "192",
    "REPRO_BENCH_SHARD_HOURS": "168",
    "REPRO_BENCH_POOLED_POINTS": "96",
    "REPRO_BENCH_PLANNING_HOURS": "336",
    "REPRO_BENCH_PLANNING_HORIZON": "12",
    "REPRO_BENCH_KERNEL_BUDGETS": "50000",
    "REPRO_BENCH_KERNEL_PERIODS": "4380",
    "REPRO_BENCH_COLUMNS_HOURS": "336",
    "REPRO_BENCH_STORE_HOURS": "336",
    "REPRO_BENCH_OBS_BURST": "256",
}

#: (csv file, row label, speedup column, floor).  The floors mirror the
#: asserts inside the benchmarks; re-checking here keeps the gate honest
#: even if a benchmark's own assert is edited away.
GATES = [
    ("batch_sweep.csv", "batch engine", "speedup_x", 10.0),
    ("fleet_campaign.csv", "fleet engine", "speedup_x", 10.0),
    ("service_throughput.csv", "coalesced service", "speedup_vs_scalar", 10.0),
    ("service_pool.csv", "4 workers", "speedup_vs_single", 1.05),
    ("planning.csv", "plan scan", "speedup_x", 10.0),
    ("kernels_solve.csv", "compiled solve", "speedup_x", 1.5),
    ("kernels_battery.csv", "compiled settle", "speedup_x", 3.0),
    ("columns_wire.csv", "binary f8", "size_ratio_x", 5.0),
    ("shard_ipc.csv", "arena ipc", "payload_ratio_x", 2.0),
    ("shard_wall.csv", "arena wall", "speedup_vs_pickle", 0.85),
    ("store_overhead.csv", "journaled campaign", "speedup_vs_plain", 0.9),
    ("obs_overhead.csv", "with observability", "speedup_vs_plain", 0.95),
]

#: A gate regresses when its speedup drops more than this fraction below
#: the previous artifact's recorded speedup.
REGRESSION_FRACTION = 0.20


def read_csv(path: Path):
    """One CSV as (headers, row dicts keyed by the first column)."""
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        rows = list(reader)
    return reader.fieldnames or [], rows


def find_baseline(output: Path):
    """The previous trajectory artifact to compare against, if any.

    Picks the highest-numbered ``BENCH_PR*.json`` in the repo root other
    than this run's output file (artifacts are named per PR, so the
    highest number is the most recent trajectory point).
    """

    def pr_number(path: Path) -> int:
        digits = "".join(ch for ch in path.stem if ch.isdigit())
        return int(digits) if digits else -1

    candidates = [
        path
        for path in REPO.glob("BENCH_PR*.json")
        if path.resolve() != output.resolve()
    ]
    return max(candidates, key=pr_number) if candidates else None


def compare_with_baseline(gated: dict, baseline_path: Path, grid: dict):
    """Per-gate comparison against a previous artifact's speedups.

    Returns (comparison payload, failure strings); a gate fails when its
    speedup fell more than :data:`REGRESSION_FRACTION` below the baseline.
    Gates absent from the baseline (new benchmarks) are recorded but never
    fail -- there is nothing to regress from.  A baseline measured on a
    different grid (``--full`` vs reduced, or different ``REPRO_BENCH_*``
    knobs) is not comparable: speedups scale with the workload, so the
    comparison is skipped rather than reporting phantom regressions.
    """
    baseline = json.loads(baseline_path.read_text())
    baseline_grid = baseline.get("grid", {})
    # Knobs added for benchmarks the baseline predates don't invalidate
    # the comparison -- its gates were measured under the shared knobs,
    # which must be unchanged.
    shared_match = all(
        grid.get(key) == value for key, value in baseline_grid.items()
    ) and bool(baseline_grid) == bool(grid)
    if not shared_match:
        print(
            f"[bench-gate] baseline {baseline_path.name} was measured on a "
            f"different grid ({baseline_grid or 'full'} vs "
            f"{grid or 'full'}); skipping the regression comparison"
        )
        return {
            "path": str(baseline_path),
            "skipped": "grid mismatch",
            "baseline_grid": baseline_grid,
        }, []
    previous_gates = baseline.get("gates", {})
    comparisons = {}
    failures = []
    for name, entry in gated.items():
        previous = previous_gates.get(name)
        if previous is None:
            comparisons[name] = {"baseline": None, "ratio": None,
                                 "regressed": False}
            continue
        before = float(previous["speedup"])
        ratio = entry["speedup"] / before if before > 0 else float("inf")
        regressed = ratio < (1.0 - REGRESSION_FRACTION)
        comparisons[name] = {"baseline": before, "ratio": ratio,
                             "regressed": regressed}
        status = "FAIL" if regressed else "ok"
        print(
            f"[bench-gate] {name}: {entry['speedup']:.2f}x vs baseline "
            f"{before:.2f}x ({ratio:.2f}x ratio) {status}"
        )
        if regressed:
            failures.append(
                f"{name}: speedup {entry['speedup']:.2f}x regressed >"
                f"{REGRESSION_FRACTION:.0%} from baseline {before:.2f}x "
                f"({baseline_path.name})"
            )
    return {"path": str(baseline_path), "comparisons": comparisons}, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR10.json",
                        help="where to write the JSON trajectory file")
    parser.add_argument("--baseline", default=None,
                        help="previous BENCH_PR*.json to compare speedups "
                             "against (default: auto-discover in the repo "
                             "root; comparison is skipped when none exists)")
    parser.add_argument("--full", action="store_true",
                        help="run full-size grids (no REPRO_BENCH_* knobs)")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    if not args.full:
        for key, value in REDUCED_GRID.items():
            env.setdefault(key, value)
    python_path = str(REPO / "src")
    if env.get("PYTHONPATH"):
        python_path = python_path + os.pathsep + env["PYTHONPATH"]
    env["PYTHONPATH"] = python_path

    # Stale CSVs from earlier (possibly full-grid) runs would be gated on
    # and recorded as this run's numbers; start from a clean slate so the
    # "missing" check below is meaningful.
    if OUTPUT_DIR.exists():
        for stale in OUTPUT_DIR.glob("*.csv"):
            stale.unlink()

    started = time.time()
    run = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", *BENCH_FILES],
        cwd=REPO,
        env=env,
    )
    wall_s = time.time() - started
    if run.returncode != 0:
        print(f"benchmark run failed (exit {run.returncode})", file=sys.stderr)
        return run.returncode

    benchmarks = {}
    for filename in sorted(OUTPUT_DIR.glob("*.csv")):
        headers, rows = read_csv(filename)
        benchmarks[filename.stem] = {"headers": headers, "rows": rows}

    failures = []
    gated = {}
    for filename, label, column, floor in GATES:
        path = OUTPUT_DIR / filename
        if not path.exists():
            failures.append(f"{filename}: missing (benchmark did not emit it)")
            continue
        _, rows = read_csv(path)
        matches = [row for row in rows if label in row[next(iter(row))]]
        if not matches:
            failures.append(f"{filename}: no row matching {label!r}")
            continue
        speedup = float(matches[0][column])
        name = Path(filename).stem
        gated[name] = {"speedup": speedup, "floor": floor,
                       "passed": speedup >= floor}
        status = "ok" if speedup >= floor else "FAIL"
        print(f"[bench-gate] {name}: {speedup:.2f}x (floor {floor:g}x) {status}")
        if speedup < floor:
            failures.append(
                f"{filename}: {label} speedup {speedup:.2f}x < floor {floor:g}x"
            )

    current_grid = {k: env[k] for k in REDUCED_GRID} if not args.full else {}
    baseline_path = (
        Path(args.baseline) if args.baseline else find_baseline(Path(args.output))
    )
    baseline_payload = None
    if baseline_path is not None:
        if not baseline_path.exists():
            failures.append(f"baseline {baseline_path} does not exist")
        else:
            baseline_payload, regressions = compare_with_baseline(
                gated, baseline_path, current_grid
            )
            failures.extend(regressions)
    else:
        print("[bench-gate] no baseline artifact found; floors only")

    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "baseline": baseline_payload,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "reduced_grid": not args.full,
        "grid": current_grid,
        "wall_s": wall_s,
        "gates": gated,
        "benchmarks": benchmarks,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[bench-gate] trajectory written to {output}")

    if failures:
        for failure in failures:
            print(f"[bench-gate] {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
