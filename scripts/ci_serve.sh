#!/usr/bin/env bash
# Start/stop a repro allocation service for CI jobs, with readiness polling.
#
# Usage:
#   scripts/ci_serve.sh start [extra serve args...]   # e.g. --workers 2
#   scripts/ci_serve.sh port                          # print the bound port
#   scripts/ci_serve.sh stop
#
# The service binds an ephemeral port (--port 0 --port-file) and `start`
# returns only once GET /healthz answers, so callers never need nohup or
# sleep loops.  State (pid/port/log) lives under ${CI_SERVE_DIR:-.ci-serve}.
set -euo pipefail

STATE_DIR=${CI_SERVE_DIR:-.ci-serve}
PID_FILE="$STATE_DIR/serve.pid"
PORT_FILE="$STATE_DIR/serve.port"
LOG_FILE="$STATE_DIR/serve.log"

start() {
  mkdir -p "$STATE_DIR"
  rm -f "$PORT_FILE"
  PYTHONPATH=src python -m repro serve --port 0 --port-file "$PORT_FILE" \
    "$@" >"$LOG_FILE" 2>&1 &
  echo $! >"$PID_FILE"
  for _ in $(seq 1 100); do
    if [ -s "$PORT_FILE" ]; then
      port=$(cat "$PORT_FILE")
      if PYTHONPATH=src python -m repro.service.client --port "$port" health \
          >/dev/null 2>&1; then
        echo "allocation service ready on port $port"
        return 0
      fi
    fi
    sleep 0.2
  done
  echo "allocation service failed to become ready; log follows" >&2
  cat "$LOG_FILE" >&2 || true
  exit 1
}

stop() {
  if [ -f "$PID_FILE" ]; then
    kill "$(cat "$PID_FILE")" 2>/dev/null || true
    rm -f "$PID_FILE"
  fi
}

case "${1:-}" in
  start) shift; start "$@" ;;
  port) cat "$PORT_FILE" ;;
  stop) stop ;;
  *) echo "usage: $0 {start [serve args...]|port|stop}" >&2; exit 2 ;;
esac
