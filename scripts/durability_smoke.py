#!/usr/bin/env python3
"""CI durability smoke: SIGKILL a serving process, restart, verify recovery.

The storyline (stdlib only, drives real ``python -m repro serve``
subprocesses):

1. **Reference**: a store-less server runs the campaign start to finish;
   its streamed columns are the ground truth.
2. **Victim**: a second server with ``--store`` accepts the same
   submission; the moment the journal holds at least one ``shard_done``
   record the process is SIGKILLed -- no shutdown hooks, no flush.
3. **Recovery**: a third server re-opens the same store path.  The
   campaign id must still answer, the job must run to ``done`` (re-running
   only the unjournaled shards), and the recovered column stream's cell
   payloads must be **byte-identical** to the reference.
4. **Exactly-once**: every (scenario, policy) cell appears in exactly one
   journaled shard record -- recovery never re-runs journaled work.
5. **Fan-out** (``--procs 2``): a two-process SO_REUSEPORT front-end on
   the same store must answer from two distinct pids and re-serve the
   same byte-identical columns.

Usage::

    PYTHONPATH=src python scripts/durability_smoke.py [--skip-procs]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sqlite3
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")

CAMPAIGN = {"hours": 200, "alphas": [0.5, 1.0], "baselines": ["DP1", "DP3"]}


def log(message: str) -> None:
    print(f"[durability-smoke] {message}", flush=True)


def serve(state_dir: Path, *extra_args: str):
    """Start one ``repro serve`` subprocess; returns (process, port)."""
    port_file = state_dir / f"port-{time.monotonic_ns()}"
    log_file = state_dir / f"serve-{time.monotonic_ns()}.log"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    with open(log_file, "w") as handle:
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--port-file", str(port_file), *extra_args],
            env=env, stdout=handle, stderr=subprocess.STDOUT,
        )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return process, int(port_file.read_text().strip())
        if process.poll() is not None:
            sys.stderr.write(log_file.read_text())
            raise SystemExit("server died during startup")
        time.sleep(0.05)
    process.kill()
    sys.stderr.write(log_file.read_text())
    raise SystemExit("server never wrote its port file")


def get_json(port: int, path: str):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as reply:
        return json.loads(reply.read())


def submit(port: int):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/campaign",
        data=json.dumps(CAMPAIGN).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as reply:
        return json.loads(reply.read())


def wait_done(port: int, campaign_id: str, timeout_s: float = 180.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = get_json(port, f"/v1/campaign/{campaign_id}")
        if status["status"] == "done":
            return
        if status["status"] in ("failed", "cancelled"):
            raise SystemExit(f"campaign ended {status['status']}: {status}")
        time.sleep(0.2)
    raise SystemExit(f"campaign {campaign_id} never finished")


def cell_lines(port: int, campaign_id: str):
    """The sorted per-cell NDJSON lines (meta line excluded)."""
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/v1/campaign/{campaign_id}/columns"
    ) as reply:
        raw = reply.read()
    lines = [line for line in raw.split(b"\n") if line.strip()]
    return sorted(lines[1:])


def shard_record_count(store: Path) -> int:
    try:
        connection = sqlite3.connect(str(store), timeout=1.0)
        try:
            return connection.execute(
                "SELECT COUNT(*) FROM journal WHERE kind = 'shard_done'"
            ).fetchone()[0]
        finally:
            connection.close()
    except sqlite3.Error:
        return 0


def assert_exactly_once(store: Path) -> None:
    sys.path.insert(0, SRC)
    from repro.service.store import decode_cells

    connection = sqlite3.connect(str(store))
    try:
        rows = connection.execute(
            "SELECT payload FROM journal WHERE kind = 'shard_done'"
        ).fetchall()
    finally:
        connection.close()
    counts: dict = {}
    for (payload,) in rows:
        for scenario, policy, _cell in decode_cells(payload):
            counts[(scenario, policy)] = counts.get((scenario, policy), 0) + 1
    doubled = {key: count for key, count in counts.items() if count != 1}
    if not counts or doubled:
        raise SystemExit(f"shard journaling not exactly-once: {doubled or counts}")
    log(f"exactly-once journaling verified for {len(counts)} cells")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-procs", action="store_true",
                        help="skip the --procs 2 SO_REUSEPORT stage")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="durability-smoke-") as tmp:
        state = Path(tmp)
        store = state / "jobs.db"

        log("stage 1: reference run (no store)")
        process, port = serve(state, "--campaign-workers", "2")
        try:
            reference_id = submit(port)["campaign_id"]
            wait_done(port, reference_id)
            reference = cell_lines(port, reference_id)
        finally:
            process.terminate()
            process.wait(timeout=15)
        log(f"reference columns: {len(reference)} cells")

        log("stage 2: submit against --store, SIGKILL mid-campaign")
        process, port = serve(
            state, "--store", str(store), "--campaign-workers", "2"
        )
        campaign_id = submit(port)["campaign_id"]
        deadline = time.monotonic() + 90.0
        while time.monotonic() < deadline and shard_record_count(store) < 1:
            time.sleep(0.02)
        journaled = shard_record_count(store)
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=15)
        if journaled < 1:
            raise SystemExit("no shard was journaled before the kill")
        log(f"killed with {journaled} shard record(s) journaled")

        log("stage 3: restart on the same store, await recovery")
        process, port = serve(
            state, "--store", str(store), "--campaign-workers", "2"
        )
        try:
            wait_done(port, campaign_id)
            recovered = cell_lines(port, campaign_id)
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=15)
        if recovered != reference:
            raise SystemExit(
                "recovered columns differ from the reference run "
                f"({len(recovered)} vs {len(reference)} cells)"
            )
        log("recovered columns byte-identical to the reference")

        assert_exactly_once(store)

        if not args.skip_procs:
            log("stage 4: --procs 2 front-end on the same store")
            process, port = serve(
                state, "--store", str(store), "--procs", "2",
                "--campaign-workers", "2",
            )
            try:
                pids = set()
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline and len(pids) < 2:
                    pids.add(get_json(port, "/v1/healthz")["pid"])
                    time.sleep(0.01)
                if len(pids) != 2:
                    raise SystemExit(f"only {pids} answered /v1/healthz")
                reserved = cell_lines(port, campaign_id)
                if reserved != reference:
                    raise SystemExit("fan-out columns differ from reference")
                log(f"two front-ends ({sorted(pids)}) re-serve the columns")
            finally:
                process.send_signal(signal.SIGTERM)
                process.wait(timeout=20)

    log("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
