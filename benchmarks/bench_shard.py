"""Benchmark of the zero-copy shared-memory campaign transport.

Sharded fleet campaigns move two kinds of bytes between parent and worker
processes: the campaign context going out and the per-cell column frames
coming back.  The shared-memory arena (:mod:`repro.service.arena`)
replaces the return leg with OS shared-memory segments -- workers write
their columns in place and the executor pipe carries only small
descriptors -- and ships the context once per worker instead of once per
task.  Two measurements back the design claims:

1. **IPC payload.**  The exact bytes each transport pushes through the
   executor result pipe: ``pickle.dumps`` of the pickle workers' returned
   cell lists versus ``pickle.dumps`` of the arena workers' descriptors,
   for the same grid.  The arena descriptors must be at least 2x smaller
   (in practice they are orders of magnitude smaller -- a descriptor is a
   segment name plus shape facts, not column data).  The cells rebuilt
   from the arena views must agree with the pickled cells to 1e-9.

2. **Wall clock.**  The same multi-week closed-loop campaign run sharded
   with ``shared_memory=True`` and ``shared_memory=False`` (best of three,
   interleaved); the arena path must not regress the pickle path.  Both
   merged results must agree with the single-process run to 1e-9,
   including battery trajectories, and a sampled-mode grid checks the
   Bernoulli RNG streams survive the transport bit for bit.

The CI bench-gate job shrinks the workloads through the
``REPRO_BENCH_SHARD_HOURS`` knob (see ``scripts/bench_gate.py``); the
asserted floors are unchanged.
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import ExperimentResult
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
from repro.harvesting.traces import SolarTrace
from repro.service import arena
from repro.service.shard import (
    _run_cell_shard,
    _run_cell_shard_arena,
    run_sharded_campaign,
    shard_cells,
)
from repro.simulation.device import DeviceConfig
from repro.simulation.fleet import CampaignConfig
from repro.simulation.policies import ReapPolicy, StaticPolicy

SHARD_HOURS = int(os.environ.get("REPRO_BENCH_SHARD_HOURS", "336"))
SHARD_JOBS = 2
#: Arena descriptors must shrink the result-pipe payload at least this much.
REQUIRED_PAYLOAD_RATIO = 2.0
#: Arena wall time over pickle wall time must stay above this floor (the
#: claim is "no regression"; 0.85 absorbs scheduler noise on shared runners).
REQUIRED_WALL_RATIO = 0.85

pytestmark = pytest.mark.skipif(
    not arena.arena_available(),
    reason="platform cannot create shared-memory segments",
)


def _campaign(points):
    """One multi-week closed-loop grid: 2 scenarios x 5 policies."""
    month = SyntheticSolarModel(seed=2015).generate_month(9)
    trace = SolarTrace(month.hours[:SHARD_HOURS], name=month.name)
    scenarios = [
        HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
        for factor in (0.032, 0.05)
    ]
    labels = [f"exposure={factor:g}" for factor in (0.032, 0.05)]
    policies = [ReapPolicy(points, alpha=alpha) for alpha in (1.0, 2.0)]
    policies += [StaticPolicy(points, name) for name in ("DP1", "DP3", "DP5")]
    return scenarios, labels, policies, trace


def _assert_cells_close(result, reference) -> None:
    """Every cell of ``result`` equals ``reference`` to 1e-9."""
    for scenario_index, policy_index, cell in result:
        other = reference.result(policy_index, scenario_index)
        np.testing.assert_allclose(
            cell.objective_values(), other.objective_values(), rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            np.asarray(cell.columns.windows_correct),
            np.asarray(other.columns.windows_correct),
            rtol=0,
            atol=1e-9,
        )
        if cell.battery_charge_j is not None:
            np.testing.assert_allclose(
                cell.battery_charge_j, other.battery_charge_j, rtol=0, atol=1e-9
            )


@pytest.mark.benchmark(group="shard")
def test_arena_descriptors_shrink_ipc_payload(output_dir, published_points):
    """Result-pipe bytes: arena descriptors >= 2x smaller than pickled cells."""
    points = tuple(published_points)
    scenarios, labels, policies, trace = _campaign(points)
    config = CampaignConfig(use_battery=True)
    chunks = shard_cells(len(scenarios), len(policies), SHARD_JOBS)

    # Pickle transport: each worker returns its chunk's full CampaignResult
    # list; this is exactly what crosses the executor result pipe.
    pickled_chunks = [
        _run_cell_shard(scenarios, labels, config, policies, trace, chunk)
        for chunk in chunks
    ]
    pickle_bytes = sum(len(pickle.dumps(chunk)) for chunk in pickled_chunks)

    # Arena transport: the same simulation, run through the real worker
    # body (context blob + segment write); only the descriptor is pickled.
    context = arena.publish_context((scenarios, labels, config, policies, trace))
    blocks = []
    try:
        shards = [
            _run_cell_shard_arena(context.ref, chunk, arena.new_segment_name())
            for chunk in chunks
        ]
        arena_bytes = sum(len(pickle.dumps(shard)) for shard in shards)
        # The views rebuilt from the segments must carry the same numbers
        # the pickle transport returned.
        reference = {
            (scenario, policy): cell
            for chunk in pickled_chunks
            for scenario, policy, cell in chunk
        }
        for shard in shards:
            block = arena.ArenaBlock.attach(shard)
            blocks.append(block)
            for slot in shard.cells:
                columns, battery = arena.read_cell(block, slot)
                cell = reference[(slot.scenario_index, slot.policy_index)]
                np.testing.assert_allclose(
                    np.asarray(columns.objective_value),
                    np.asarray(cell.columns.objective_value),
                    rtol=0,
                    atol=1e-9,
                )
                np.testing.assert_allclose(
                    battery, cell.battery_charge_j, rtol=0, atol=1e-9
                )
    finally:
        for block in blocks:
            block.close()
        context.release()

    ratio = pickle_bytes / arena_bytes
    result = ExperimentResult(
        name=(
            f"Shard IPC payload: {len(scenarios) * len(policies)} cells over "
            f"{len(trace)} hours, pickled results vs arena descriptors"
        ),
        headers=["path", "payload_bytes", "payload_ratio_x"],
        rows=[
            ["pickle ipc", pickle_bytes, 1.0],
            ["arena ipc", arena_bytes, ratio],
        ],
    )
    emit(result, output_dir, "shard_ipc.csv")

    assert ratio >= REQUIRED_PAYLOAD_RATIO, (
        f"arena descriptors only shrink the result payload {ratio:.2f}x "
        f"(need >= {REQUIRED_PAYLOAD_RATIO}x)"
    )


@pytest.mark.benchmark(group="shard")
def test_arena_transport_no_wall_clock_regression(output_dir, published_points):
    """Sharded campaign wall time: arena must not regress the pickle path."""
    points = tuple(published_points)
    scenarios, labels, policies, trace = _campaign(points)
    config = CampaignConfig(use_battery=True)

    single = run_sharded_campaign(scenarios, policies, trace, config,
                                  scenario_labels=labels, jobs=1)

    def timed(shared_memory: bool):
        started = time.perf_counter()
        result = run_sharded_campaign(
            scenarios, policies, trace, config,
            scenario_labels=labels, jobs=SHARD_JOBS,
            shared_memory=shared_memory,
        )
        return time.perf_counter() - started, result

    # Interleaved best-of-three so slow drift hits both transports alike.
    pickle_runs, arena_runs = [], []
    for _ in range(3):
        pickle_s, pickle_result = timed(False)
        pickle_runs.append(pickle_s)
        arena_s, arena_result = timed(True)
        arena_runs.append(arena_s)
        _assert_cells_close(arena_result, single)
        _assert_cells_close(pickle_result, single)
        arena_result.release()
    pickle_s, arena_s = min(pickle_runs), min(arena_runs)

    # Sampled-mode spot check: the Bernoulli streams must survive the
    # arena transport bit for bit (cell identity implies RNG identity).
    sampled_config = CampaignConfig(
        device=DeviceConfig(recognition_mode="sampled", seed=42)
    )
    sampled_single = run_sharded_campaign(
        scenarios, policies, trace, sampled_config,
        scenario_labels=labels, jobs=1,
    )
    sampled_arena = run_sharded_campaign(
        scenarios, policies, trace, sampled_config,
        scenario_labels=labels, jobs=SHARD_JOBS, shared_memory=True,
    )
    for scenario_index, policy_index, cell in sampled_arena:
        other = sampled_single.result(policy_index, scenario_index)
        assert np.array_equal(
            np.asarray(cell.columns.windows_correct),
            np.asarray(other.columns.windows_correct),
        )
    sampled_arena.release()

    speedup = pickle_s / arena_s
    result = ExperimentResult(
        name=(
            f"Shard transports: {len(scenarios) * len(policies)} cells over "
            f"{len(trace)} hours, {SHARD_JOBS} jobs, arena vs pickle"
        ),
        headers=["path", "wall_ms", "speedup_vs_pickle"],
        rows=[
            ["pickle wall", pickle_s * 1e3, 1.0],
            ["arena wall", arena_s * 1e3, speedup],
        ],
    )
    emit(result, output_dir, "shard_wall.csv")

    assert speedup >= REQUIRED_WALL_RATIO, (
        f"arena transport runs at {speedup:.2f}x the pickle transport "
        f"(floor {REQUIRED_WALL_RATIO}x -- it must not regress)"
    )
