"""Benchmark / reproduction of Figure 3.

Characterises the full 24-point design space and reports each point's energy
per activity and accuracy together with whether it is Pareto-optimal (the
dashed staircase of the figure).
"""

from __future__ import annotations

import pytest

from _bench_utils import emit
from repro.analysis.experiments import run_figure3_experiment
from repro.har.classifier.train import TrainingConfig

BENCH_NUM_WINDOWS = 700


@pytest.mark.benchmark(group="figure3")
def test_figure3_design_space_tradeoff(benchmark, output_dir):
    """Regenerate the Figure 3 energy/accuracy scatter and Pareto front."""

    def run():
        return run_figure3_experiment(
            num_windows=BENCH_NUM_WINDOWS,
            training_config=TrainingConfig(max_epochs=40, patience=10),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, output_dir, "figure3.csv")

    assert result.extras["num_design_points"] == 24
    pareto_names = set(result.extras["pareto_names"])
    # The design space contains dominated points (the red-rectangle cases of
    # the paper) as well as a non-trivial Pareto front.
    assert 2 <= len(pareto_names) < 24
    # The highest-accuracy point and the lowest-energy point are always on
    # the front.
    rows = sorted(result.rows, key=lambda row: row[1])
    lowest_energy = rows[0][0]
    highest_accuracy = max(result.rows, key=lambda row: row[2])[0]
    assert lowest_energy in pareto_names
    assert highest_accuracy in pareto_names
