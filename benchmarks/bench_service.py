"""Benchmark of the allocation service subsystem (repro.service).

Three measurements back the service's design claims:

1. **Coalesced concurrent solving.**  256 concurrent allocation requests
   (distinct budgets, one alpha) are served through the full service path --
   canonical-key cache lookup, micro-batching coalescer, one vectorized
   :meth:`BatchAllocator.solve_arrays` dispatch -- and timed against the
   sequential baseline of 256 scalar :class:`ReapAllocator` solves.  The
   coalesced path must be at least 10x faster and agree with every scalar
   objective to 1e-9.

2. **Pooled multi-worker serving.**  The same 256-request concurrent burst
   (on a large design-point set, where one solve is real NumPy work) is
   served by ``workers=4`` and ``workers=1`` services; the pooled service
   slices the dispatch group across its engine workers and must be
   measurably faster than the single worker.  (The win has two parts:
   per-worker slices are small enough to stay cache-friendly, and on
   multi-core machines NumPy's GIL-released array passes genuinely run in
   parallel.)

3. **Sharded fleet campaigns.**  A multi-week (scenario x policy) closed-
   loop campaign grid is run single-process and sharded across 4 worker
   processes via :func:`repro.service.shard.run_sharded_campaign`; the
   merged results must agree to 1e-9 on every per-period objective and on
   the battery trajectories (wall times for both are reported -- process
   start-up dominates at this problem size, the guarantee of interest is
   exactness).

The CI bench-gate job shrinks the workloads through the ``REPRO_BENCH_*``
environment knobs (see ``scripts/bench_gate.py``); the asserted floors are
unchanged.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import ExperimentResult
from repro.core.allocator import ReapAllocator
from repro.core.design_point import DesignPoint
from repro.core.problem import ReapProblem
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
from repro.harvesting.traces import SolarTrace
from repro.service import AllocationRequest, AllocationService
from repro.service.shard import run_sharded_campaign
from repro.simulation.fleet import CampaignConfig
from repro.simulation.policies import ReapPolicy, StaticPolicy

NUM_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "256"))
ALPHA = 1.0
REQUIRED_SPEEDUP = 10.0
SHARD_JOBS = 4
SHARD_HOURS = int(os.environ.get("REPRO_BENCH_SHARD_HOURS", "336"))
#: Pooled serving must beat the single worker by at least this factor.
REQUIRED_POOLED_SPEEDUP = 1.05
POOLED_WORKERS = 4
#: Size of the synthetic design-point set for the pooled-burst benchmark
#: (vertex count grows quadratically, so one solve is real NumPy work).
POOLED_DESIGN_POINTS = int(os.environ.get("REPRO_BENCH_POOLED_POINTS", "96"))


def _serve_concurrently(service: AllocationService, requests):
    """Run the burst through the service on a fresh event loop."""
    return asyncio.run(service.allocate_many(requests))


@pytest.mark.benchmark(group="service")
def test_coalesced_service_speedup_over_sequential_scalar(
    output_dir, published_points
):
    """256 concurrent requests: micro-batched service vs scalar loop, >= 10x."""
    points = tuple(published_points)
    budgets = np.linspace(0.2, 10.4, NUM_REQUESTS)
    requests = [
        AllocationRequest(energy_budget_j=float(budget), alpha=ALPHA)
        for budget in budgets
    ]

    # Sequential baseline: one scalar simplex solve per request.
    allocator = ReapAllocator()
    base = ReapProblem(points, energy_budget_j=1.0, alpha=ALPHA)
    started = time.perf_counter()
    scalar = [allocator.solve(base.with_budget(float(b))) for b in budgets]
    scalar_s = time.perf_counter() - started

    # Service path, cold cache: every request is a miss and the burst
    # coalesces inside the batcher window.  Best of three runs to keep the
    # comparison robust against scheduler noise.
    service_runs = []
    for _ in range(3):
        service = AllocationService(
            default_points=points, cache_size=0, window_s=0.001
        )
        started = time.perf_counter()
        responses = _serve_concurrently(service, requests)
        service_runs.append(time.perf_counter() - started)
    service_s = min(service_runs)

    for response, reference in zip(responses, scalar):
        assert abs(response.objective - reference.objective) <= 1e-9

    # Warm cache: the same burst again must be answered without solving.
    warm_service = AllocationService(default_points=points, window_s=0.001)
    _serve_concurrently(warm_service, requests)
    started = time.perf_counter()
    cached = _serve_concurrently(warm_service, requests)
    cached_s = time.perf_counter() - started
    assert all(response.cache_hit for response in cached)

    speedup = scalar_s / service_s
    result = ExperimentResult(
        name=(
            f"Allocation service throughput: {NUM_REQUESTS} concurrent "
            "requests, coalesced vs sequential scalar"
        ),
        headers=["path", "wall_ms", "requests_per_s", "speedup_vs_scalar"],
        rows=[
            ["sequential scalar", scalar_s * 1e3, NUM_REQUESTS / scalar_s, 1.0],
            ["coalesced service", service_s * 1e3, NUM_REQUESTS / service_s,
             speedup],
            ["warm cache repeat", cached_s * 1e3, NUM_REQUESTS / cached_s,
             scalar_s / cached_s],
        ],
    )
    emit(result, output_dir, "service_throughput.csv")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"coalesced service is only {speedup:.1f}x faster than the "
        f"sequential scalar loop (need >= {REQUIRED_SPEEDUP}x)"
    )


def _synthetic_points(count: int) -> tuple:
    """A large, Pareto-consistent design-point set (accuracy up with power)."""
    accuracies = np.linspace(0.55, 0.97, count)
    powers = np.linspace(0.004, 0.09, count)
    return tuple(
        DesignPoint(
            name=f"SP{index}", accuracy=float(a), power_w=float(p)
        )
        for index, (a, p) in enumerate(zip(accuracies, powers))
    )


@pytest.mark.benchmark(group="service")
def test_pooled_service_beats_single_worker(output_dir):
    """256-request burst: --workers 4 vs --workers 1, measurably faster."""
    points = _synthetic_points(POOLED_DESIGN_POINTS)
    budgets = np.linspace(0.5, 40.0, NUM_REQUESTS)
    requests = [
        AllocationRequest(energy_budget_j=float(budget), alpha=ALPHA)
        for budget in budgets
    ]

    def make_service(workers: int) -> AllocationService:
        return AllocationService(
            default_points=points, cache_size=0, window_s=0.001,
            workers=workers,
        )

    # Interleaved rounds (single, pooled, single, pooled, ...) so slow
    # drift on a noisy shared runner hits both paths alike; best of five
    # per path absorbs the per-round spikes.
    single_service = make_service(1)
    pooled_service = make_service(POOLED_WORKERS)
    single_runs, pooled_runs = [], []
    try:
        single_objectives = np.array(
            [r.objective for r in _serve_concurrently(single_service, requests)]
        )  # doubles as the warm-up
        pooled_responses = _serve_concurrently(pooled_service, requests)
        for _ in range(5):
            started = time.perf_counter()
            _serve_concurrently(single_service, requests)
            single_runs.append(time.perf_counter() - started)
            started = time.perf_counter()
            pooled_responses = _serve_concurrently(pooled_service, requests)
            pooled_runs.append(time.perf_counter() - started)
        # Whatever the worker count, the answers must be identical.
        assert all(
            response.batch_size == NUM_REQUESTS
            for response in pooled_responses
        )
        pooled_objectives = np.array([r.objective for r in pooled_responses])
    finally:
        single_service.close()
        pooled_service.close()
    single_s, pooled_s = min(single_runs), min(pooled_runs)
    np.testing.assert_allclose(
        pooled_objectives, single_objectives, rtol=0, atol=1e-9
    )

    speedup = single_s / pooled_s
    result = ExperimentResult(
        name=(
            f"Worker pool: {NUM_REQUESTS} concurrent requests on "
            f"{POOLED_DESIGN_POINTS} design points, {POOLED_WORKERS} workers "
            "vs 1"
        ),
        headers=["path", "wall_ms", "requests_per_s", "speedup_vs_single"],
        rows=[
            ["1 worker", single_s * 1e3, NUM_REQUESTS / single_s, 1.0],
            [f"{POOLED_WORKERS} workers", pooled_s * 1e3,
             NUM_REQUESTS / pooled_s, speedup],
        ],
        extras={"speedup": speedup},
    )
    emit(result, output_dir, "service_pool.csv")

    assert speedup >= REQUIRED_POOLED_SPEEDUP, (
        f"pooled service ({POOLED_WORKERS} workers) is only {speedup:.2f}x "
        f"the single-worker service (need >= {REQUIRED_POOLED_SPEEDUP}x)"
    )


@pytest.mark.benchmark(group="service")
def test_sharded_campaign_matches_single_process(output_dir, published_points):
    """Sharded (--jobs 4) fleet campaign: exact agreement, wall times reported."""
    points = tuple(published_points)
    trace = SyntheticSolarModel(seed=2015).generate_month(9)
    trace = SolarTrace(trace.hours[:SHARD_HOURS], name=trace.name)
    scenarios = [
        HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
        for factor in (0.032, 0.05)
    ]
    policies = [ReapPolicy(points, alpha=alpha) for alpha in (1.0, 2.0)]
    policies += [StaticPolicy(points, name) for name in ("DP1", "DP3", "DP5")]
    config = CampaignConfig(use_battery=True)

    started = time.perf_counter()
    single = run_sharded_campaign(scenarios, policies, trace, config, jobs=1)
    single_s = time.perf_counter() - started

    started = time.perf_counter()
    sharded = run_sharded_campaign(
        scenarios, policies, trace, config, jobs=SHARD_JOBS
    )
    sharded_s = time.perf_counter() - started

    for scenario_index, policy_index, cell in sharded:
        reference = single.result(policy_index, scenario_index)
        np.testing.assert_allclose(
            cell.objective_values(), reference.objective_values(), atol=1e-9
        )
        np.testing.assert_allclose(
            cell.battery_charge_j, reference.battery_charge_j, atol=1e-9
        )
        assert abs(
            cell.total_energy_consumed_j - reference.total_energy_consumed_j
        ) <= 1e-9

    result = ExperimentResult(
        name=(
            f"Sharded fleet campaign: {len(scenarios)}x{len(policies)} grid "
            f"over {len(trace)} hours, {SHARD_JOBS} jobs vs 1"
        ),
        headers=["path", "wall_ms", "cells"],
        rows=[
            ["single process", single_s * 1e3, single.num_cells],
            [f"{SHARD_JOBS} worker processes", sharded_s * 1e3,
             sharded.num_cells],
        ],
    )
    emit(result, output_dir, "service_shard.csv")
