"""Benchmark of the allocation service subsystem (repro.service).

Two measurements back the service's design claims:

1. **Coalesced concurrent solving.**  256 concurrent allocation requests
   (distinct budgets, one alpha) are served through the full service path --
   canonical-key cache lookup, micro-batching coalescer, one vectorized
   :meth:`BatchAllocator.solve_arrays` dispatch -- and timed against the
   sequential baseline of 256 scalar :class:`ReapAllocator` solves.  The
   coalesced path must be at least 10x faster and agree with every scalar
   objective to 1e-9.

2. **Sharded fleet campaigns.**  A multi-week (scenario x policy) closed-
   loop campaign grid is run single-process and sharded across 4 worker
   processes via :func:`repro.service.shard.run_sharded_campaign`; the
   merged results must agree to 1e-9 on every per-period objective and on
   the battery trajectories (wall times for both are reported -- process
   start-up dominates at this problem size, the guarantee of interest is
   exactness).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import ExperimentResult
from repro.core.allocator import ReapAllocator
from repro.core.problem import ReapProblem
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
from repro.harvesting.traces import SolarTrace
from repro.service import AllocationRequest, AllocationService
from repro.service.shard import run_sharded_campaign
from repro.simulation.fleet import CampaignConfig
from repro.simulation.policies import ReapPolicy, StaticPolicy

NUM_REQUESTS = 256
ALPHA = 1.0
REQUIRED_SPEEDUP = 10.0
SHARD_JOBS = 4


def _serve_concurrently(service: AllocationService, requests):
    """Run the burst through the service on a fresh event loop."""
    return asyncio.run(service.allocate_many(requests))


@pytest.mark.benchmark(group="service")
def test_coalesced_service_speedup_over_sequential_scalar(
    output_dir, published_points
):
    """256 concurrent requests: micro-batched service vs scalar loop, >= 10x."""
    points = tuple(published_points)
    budgets = np.linspace(0.2, 10.4, NUM_REQUESTS)
    requests = [
        AllocationRequest(energy_budget_j=float(budget), alpha=ALPHA)
        for budget in budgets
    ]

    # Sequential baseline: one scalar simplex solve per request.
    allocator = ReapAllocator()
    base = ReapProblem(points, energy_budget_j=1.0, alpha=ALPHA)
    started = time.perf_counter()
    scalar = [allocator.solve(base.with_budget(float(b))) for b in budgets]
    scalar_s = time.perf_counter() - started

    # Service path, cold cache: every request is a miss and the burst
    # coalesces inside the batcher window.  Best of three runs to keep the
    # comparison robust against scheduler noise.
    service_runs = []
    for _ in range(3):
        service = AllocationService(
            default_points=points, cache_size=0, window_s=0.001
        )
        started = time.perf_counter()
        responses = _serve_concurrently(service, requests)
        service_runs.append(time.perf_counter() - started)
    service_s = min(service_runs)

    for response, reference in zip(responses, scalar):
        assert abs(response.objective - reference.objective) <= 1e-9

    # Warm cache: the same burst again must be answered without solving.
    warm_service = AllocationService(default_points=points, window_s=0.001)
    _serve_concurrently(warm_service, requests)
    started = time.perf_counter()
    cached = _serve_concurrently(warm_service, requests)
    cached_s = time.perf_counter() - started
    assert all(response.cache_hit for response in cached)

    speedup = scalar_s / service_s
    result = ExperimentResult(
        name=(
            f"Allocation service throughput: {NUM_REQUESTS} concurrent "
            "requests, coalesced vs sequential scalar"
        ),
        headers=["path", "wall_ms", "requests_per_s", "speedup_vs_scalar"],
        rows=[
            ["sequential scalar", scalar_s * 1e3, NUM_REQUESTS / scalar_s, 1.0],
            ["coalesced service", service_s * 1e3, NUM_REQUESTS / service_s,
             speedup],
            ["warm cache repeat", cached_s * 1e3, NUM_REQUESTS / cached_s,
             scalar_s / cached_s],
        ],
    )
    emit(result, output_dir, "service_throughput.csv")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"coalesced service is only {speedup:.1f}x faster than the "
        f"sequential scalar loop (need >= {REQUIRED_SPEEDUP}x)"
    )


@pytest.mark.benchmark(group="service")
def test_sharded_campaign_matches_single_process(output_dir, published_points):
    """Sharded (--jobs 4) fleet campaign: exact agreement, wall times reported."""
    points = tuple(published_points)
    trace = SyntheticSolarModel(seed=2015).generate_month(9)
    trace = SolarTrace(trace.hours[:336], name=trace.name)  # two weeks
    scenarios = [
        HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
        for factor in (0.032, 0.05)
    ]
    policies = [ReapPolicy(points, alpha=alpha) for alpha in (1.0, 2.0)]
    policies += [StaticPolicy(points, name) for name in ("DP1", "DP3", "DP5")]
    config = CampaignConfig(use_battery=True)

    started = time.perf_counter()
    single = run_sharded_campaign(scenarios, policies, trace, config, jobs=1)
    single_s = time.perf_counter() - started

    started = time.perf_counter()
    sharded = run_sharded_campaign(
        scenarios, policies, trace, config, jobs=SHARD_JOBS
    )
    sharded_s = time.perf_counter() - started

    for scenario_index, policy_index, cell in sharded:
        reference = single.result(policy_index, scenario_index)
        np.testing.assert_allclose(
            cell.objective_values(), reference.objective_values(), atol=1e-9
        )
        np.testing.assert_allclose(
            cell.battery_charge_j, reference.battery_charge_j, atol=1e-9
        )
        assert abs(
            cell.total_energy_consumed_j - reference.total_energy_consumed_j
        ) <= 1e-9

    result = ExperimentResult(
        name=(
            f"Sharded fleet campaign: {len(scenarios)}x{len(policies)} grid "
            f"over {len(trace)} hours, {SHARD_JOBS} jobs vs 1"
        ),
        headers=["path", "wall_ms", "cells"],
        rows=[
            ["single process", single_s * 1e3, single.num_cells],
            [f"{SHARD_JOBS} worker processes", sharded_s * 1e3,
             sharded.num_cells],
        ],
    )
    emit(result, output_dir, "service_shard.csv")
