"""Benchmark / reproduction of Table 2.

Characterises the five Pareto-optimal design points on the synthetic user
study: trains one classifier per design point, measures its test accuracy
and evaluates the calibrated energy model, reporting measured values next to
the published ones.
"""

from __future__ import annotations

import pytest

from _bench_utils import emit
from repro.analysis.experiments import run_table2_experiment
from repro.har.classifier.train import TrainingConfig

#: Reduced study size keeps the benchmark around half a minute while
#: preserving the accuracy ordering; pass a larger value for a full-size run.
BENCH_NUM_WINDOWS = 1200


@pytest.mark.benchmark(group="table2")
def test_table2_design_point_characterisation(benchmark, output_dir):
    """Regenerate Table 2 (accuracy / exec time / energy / power per DP)."""

    def run():
        return run_table2_experiment(
            num_windows=BENCH_NUM_WINDOWS,
            training_config=TrainingConfig(max_epochs=60, patience=12),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, output_dir, "table2.csv")

    by_name = {row[0]: row for row in result.rows}
    # Accuracy ordering: the multi-sensor DPs clearly beat stretch-only DP5.
    for name in ("DP1", "DP2", "DP3", "DP4"):
        assert by_name[name][1] > by_name["DP5"][1] + 3.0
    # Energy model lands close to the published per-activity energies.
    for name, row in by_name.items():
        measured_energy, paper_energy = row[5], row[6]
        assert measured_energy == pytest.approx(paper_energy, rel=0.15)
