"""Benchmark of the vectorized batch allocation engine (repro.core.batch).

Solves the Figure 5/6-style 200-budget x 5-alpha grid (1000 REAP LPs) twice:
once through the per-problem scalar loop (one :class:`ReapAllocator` solve
per grid cell, the pre-batch-engine code path) and once through
:class:`BatchAllocator.solve_grid`, which evaluates every candidate vertex
against the whole grid in a single broadcast pass.

The two engines must agree to 1e-9 on every cell, and the batched path must
be at least 10x faster; in practice the gap is two to three orders of
magnitude on a workstation.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import ExperimentResult
from repro.analysis.sweep import default_budget_grid
from repro.core.allocator import ReapAllocator
from repro.core.batch import BatchAllocator
from repro.core.problem import ReapProblem

#: The CI bench-gate shrinks the grid via this knob; the >= 10x floor holds
#: comfortably down to a few dozen budgets.
NUM_BUDGETS = int(os.environ.get("REPRO_BENCH_BUDGETS", "200"))
ALPHAS = (0.5, 1.0, 2.0, 4.0, 8.0)
REQUIRED_SPEEDUP = 10.0


def _scalar_grid(points, budgets, alphas) -> np.ndarray:
    """The pre-batch-engine path: one scalar simplex solve per grid cell."""
    allocator = ReapAllocator()
    objective = np.empty((len(alphas), budgets.size))
    for alpha_index, alpha in enumerate(alphas):
        for budget_index, budget in enumerate(budgets):
            problem = ReapProblem(
                points, energy_budget_j=float(budget), alpha=float(alpha)
            )
            objective[alpha_index, budget_index] = allocator.solve(problem).objective
    return objective


@pytest.mark.benchmark(group="batch")
def test_batch_sweep_speedup_over_scalar_loop(output_dir, published_points):
    """200 x 5 grid: batched pass vs scalar loop, >= 10x and identical optima."""
    points = tuple(published_points)
    budgets = default_budget_grid(points, num_points=NUM_BUDGETS)
    num_problems = budgets.size * len(ALPHAS)

    engine = BatchAllocator(points)
    engine.solve_grid(budgets, ALPHAS)  # warm-up (allocations, caches)
    batch_s = min(
        _timed(lambda: engine.solve_grid(budgets, ALPHAS))[0] for _ in range(3)
    )
    grid = engine.solve_grid(budgets, ALPHAS)

    scalar_s, scalar_objective = _timed(lambda: _scalar_grid(points, budgets, ALPHAS))

    np.testing.assert_allclose(grid.objective, scalar_objective, rtol=1e-9, atol=1e-12)
    speedup = scalar_s / batch_s

    result = ExperimentResult(
        name=f"Batch engine vs scalar loop on a {budgets.size} x {len(ALPHAS)} grid",
        headers=["engine", "problems", "total_ms", "per_solve_us", "speedup_x"],
        rows=[
            ["scalar loop", num_problems, scalar_s * 1e3,
             scalar_s / num_problems * 1e6, 1.0],
            ["batch engine", num_problems, batch_s * 1e3,
             batch_s / num_problems * 1e6, speedup],
        ],
        extras={"speedup": speedup},
    )
    emit(result, output_dir, "batch_sweep.csv")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched grid solve is only {speedup:.1f}x faster than the scalar "
        f"loop (required {REQUIRED_SPEEDUP:.0f}x)"
    )


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value
