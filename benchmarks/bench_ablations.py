"""Ablation benchmarks (extensions beyond the paper's evaluation).

* number of Pareto design points available to the runtime (2 / 3 / 5),
* simplex pivot rule (Dantzig vs Bland),
* alpha sensitivity of the chosen operating mix at a fixed budget.
"""

from __future__ import annotations

import pytest

from _bench_utils import emit
from repro.analysis.experiments import (
    run_alpha_sensitivity_experiment,
    run_pareto_subset_ablation,
    run_pivot_rule_ablation,
)


@pytest.mark.benchmark(group="ablation")
def test_pareto_subset_ablation(benchmark, output_dir):
    """More runtime design points never hurt the achievable objective."""
    result = benchmark(
        lambda: run_pareto_subset_ablation(subset_sizes=(2, 3, 5), num_budgets=30)
    )
    emit(result, output_dir, "ablation_pareto_subsets.csv")

    objectives = result.column("mean_objective")
    assert objectives == sorted(objectives)


@pytest.mark.benchmark(group="ablation")
def test_pivot_rule_ablation(benchmark, output_dir):
    """Dantzig and Bland pivot rules find the same optimum."""
    result = benchmark(lambda: run_pivot_rule_ablation(num_budgets=30))
    emit(result, output_dir, "ablation_pivot_rule.csv")
    assert result.extras["objective_gap"] == pytest.approx(0.0, abs=1e-9)


@pytest.mark.benchmark(group="ablation")
def test_alpha_sensitivity(benchmark, output_dir):
    """Raising alpha shifts the chosen mix toward the accurate design points."""
    result = benchmark(
        lambda: run_alpha_sensitivity_experiment(alphas=(0.5, 1.0, 2.0, 4.0, 8.0))
    )
    emit(result, output_dir, "ablation_alpha_sensitivity.csv")

    dp5_shares = result.column("DP5_share")
    accuracies = result.column("expected_accuracy")
    # DP5's share never increases as alpha grows; the first and last rows
    # bracket the shift from endurance to accuracy.
    assert all(b <= a + 1e-9 for a, b in zip(dp5_shares, dp5_shares[1:]))
    assert accuracies[0] >= accuracies[-1] - 1e-9
