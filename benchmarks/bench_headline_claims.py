"""Benchmark / reproduction of the paper's headline quantitative claims.

Sections 1 and 5.2: the average expected-accuracy and active-time gains over
the always-DP1 baseline, the 2.3x Region-1 active-time gap, the DP4/DP5 time
split at a 5 J budget, and the DP5 / DP1 saturation budgets.
"""

from __future__ import annotations

import pytest

from _bench_utils import emit
from repro.analysis.experiments import run_headline_claims_experiment


@pytest.mark.benchmark(group="claims")
def test_headline_claims(benchmark, output_dir):
    """Regenerate the paper-vs-measured headline-claims table."""
    result = benchmark(lambda: run_headline_claims_experiment(num_budgets=60))
    emit(result, output_dir, "headline_claims.csv")

    measured = {row[0]: row[2] for row in result.rows}
    assert measured["expected accuracy gain vs DP1 (mean over sweep)"] == pytest.approx(
        0.46, abs=0.10
    )
    assert measured["active time gain vs DP1 (mean over sweep)"] == pytest.approx(
        0.66, abs=0.15
    )
    assert measured["max active-time ratio vs DP1 (Region 1)"] == pytest.approx(2.3, abs=0.4)
    assert measured["DP4 share of active time at 5 J"] == pytest.approx(0.42, abs=0.03)
    assert measured["DP5 share of active time at 5 J"] == pytest.approx(0.58, abs=0.03)
    assert measured["budget where DP5 saturates (J)"] == pytest.approx(4.3, abs=0.4)
    assert measured["budget where DP1 saturates (J)"] == pytest.approx(9.9, abs=0.4)
