"""Benchmark / reproduction of Figure 5(b).

Active time of each static design point normalised to REAP across the
allocated-energy sweep (alpha = 1).
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import run_figure5b_experiment


@pytest.mark.benchmark(group="figure5")
def test_figure5b_normalised_active_time(benchmark, output_dir):
    """Regenerate the Figure 5(b) series."""
    result = benchmark(lambda: run_figure5b_experiment(num_budgets=40))
    emit(result, output_dir, "figure5b.csv")

    budgets = np.array(result.column("budget_J"))
    dp1 = np.array(result.column("DP1_norm_active"))
    dp5 = np.array(result.column("DP5_norm_active"))

    # No static DP is ever active longer than REAP.
    for name in ("DP1", "DP2", "DP3", "DP4", "DP5"):
        values = np.array(result.column(f"{name}_norm_active"))
        assert np.all(values <= 1.0 + 1e-9)
    # DP5 (lowest power) matches REAP's active time whenever the device can
    # be on at all.
    on = dp5 > 0
    assert np.all(np.abs(dp5[on] - 1.0) < 1e-6)
    # In the energy-constrained region DP1 achieves well under half of
    # REAP's active time (the paper annotates a 2.3x gap).
    region1 = (budgets > 1.0) & (budgets < 4.0)
    assert np.all(dp1[region1] < 0.55)
    assert dp1[region1].min() < 0.45
