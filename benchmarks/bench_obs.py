"""Benchmark of the cluster-observability overhead on the serving path.

The cluster scope (``GET /v1/metrics?scope=cluster``) is fed by a
per-process publisher: every beat builds a full registry/SLO/stats
snapshot, upserts it into the shared SQLite store, and drains finished
spans; a cluster scrape then reads every live snapshot back and renders
the merged exposition.  The design claim is that none of this touches
the request hot path -- publication and merging cost **less than ~5% of
allocate-burst throughput** even when hammered far above the production
cadence.

The measurement runs identical allocate bursts (cache-missing requests
through the micro-batcher) against a store-backed service twice,
interleaved best-of-three:

- **plain**: no observability activity beyond the always-on counters;
- **with observability**: a background thread publishing a snapshot and
  rendering a full cluster scrape every ~50 ms -- about 40x the
  production publish cadence (one beat per ~2 s).

Asserted floor: ``speedup_vs_plain >= 0.95`` (the burst with concurrent
publication + scrapes within ~5% of plain).  The observability run must
actually have published (snapshot counter > 0) -- the overhead being
measured is the overhead of something demonstrably running.

The CI bench-gate job shrinks the workload through the
``REPRO_BENCH_OBS_BURST`` knob (see ``scripts/bench_gate.py``); the
asserted floor is unchanged.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time

import pytest

from _bench_utils import emit
from repro.analysis.experiments import ExperimentResult
from repro.service.requests import AllocationRequest
from repro.service.server import AllocationService

#: Requests per burst round (4 rounds per timed run).
OBS_BURST = int(os.environ.get("REPRO_BENCH_OBS_BURST", "512"))
OBS_ROUNDS = 4
#: Observability-loaded wall time over plain wall time: >= 0.95 keeps
#: snapshot publication + cluster scrapes under ~5% of burst throughput.
REQUIRED_SPEEDUP = 0.95
#: Background publish+scrape period while the burst runs -- far above
#: the production cadence (PUBLISH_INTERVAL_S = 2.0) to measure a bound.
HAMMER_PERIOD_S = 0.05


def _run_bursts(service: AllocationService, salt: float) -> float:
    """Time OBS_ROUNDS coalesced bursts of unique (uncached) requests."""
    async def _go() -> None:
        for round_index in range(OBS_ROUNDS):
            requests = [
                AllocationRequest(
                    energy_budget_j=0.5 + salt + 0.7 * round_index
                    + 0.001 * index,
                    alpha=1.0,
                )
                for index in range(OBS_BURST)
            ]
            await service.allocate_many(requests)

    started = time.perf_counter()
    asyncio.run(_go())
    return time.perf_counter() - started


def _timed_run(tmp_path, run_index: int, with_obs: bool) -> float:
    """One fresh store-backed service, one timed burst, optional hammer."""
    store_path = tmp_path / f"obs-{'on' if with_obs else 'off'}-{run_index}.db"
    service = AllocationService(
        store=str(store_path), slo_ms={"allocate": 25.0}
    )
    stop = threading.Event()
    hammer = None
    try:
        if with_obs:
            def _publish_and_scrape() -> None:
                while not stop.is_set():
                    service.publish_observability()
                    service.cluster_metrics_text()
                    stop.wait(HAMMER_PERIOD_S)

            hammer = threading.Thread(
                target=_publish_and_scrape, name="obs-hammer", daemon=True
            )
            hammer.start()
        # Unique budgets per (run, variant): every request misses the
        # cache, so both variants measure the same batcher/solve work.
        elapsed = _run_bursts(
            service, salt=10.0 * run_index + (100.0 if with_obs else 0.0)
        )
        if with_obs:
            stop.set()
            hammer.join(timeout=10.0)
            published = service.store.stats.snapshots_published
            assert published > 0, "observability hammer never published"
        return elapsed
    finally:
        stop.set()
        if hammer is not None and hammer.is_alive():
            hammer.join(timeout=10.0)
        service.close()


@pytest.mark.benchmark(group="obs")
def test_observability_overhead_within_bound(output_dir, tmp_path):
    """Allocate-burst throughput: publication + scrapes must cost < ~5%."""
    plain_runs, obs_runs = [], []
    for run_index in range(3):
        plain_runs.append(_timed_run(tmp_path, run_index, with_obs=False))
        obs_runs.append(_timed_run(tmp_path, run_index, with_obs=True))

    plain_s = min(plain_runs)
    obs_s = min(obs_runs)
    total_requests = OBS_BURST * OBS_ROUNDS
    speedup = plain_s / obs_s if obs_s > 0 else float("inf")
    result = ExperimentResult(
        name=(
            f"Cluster observability overhead: {total_requests} uncached "
            f"allocations per run, publish+scrape every "
            f"{HAMMER_PERIOD_S * 1000:.0f} ms"
        ),
        headers=["path", "wall_s", "requests_per_s", "speedup_vs_plain"],
        rows=[
            [
                "plain burst", round(plain_s, 4),
                round(total_requests / plain_s, 1), 1.0,
            ],
            [
                "with observability", round(obs_s, 4),
                round(total_requests / obs_s, 1), round(speedup, 4),
            ],
        ],
    )
    emit(result, output_dir, "obs_overhead.csv")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"observability slows allocate bursts to {speedup:.3f}x of plain "
        f"(need >= {REQUIRED_SPEEDUP}x, i.e. < ~5% overhead)"
    )
