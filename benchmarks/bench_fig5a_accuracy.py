"""Benchmark / reproduction of Figure 5(a).

Expected accuracy (alpha = 1) of REAP and the five static design points as a
function of the allocated energy over one hour.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import run_figure5a_experiment


@pytest.mark.benchmark(group="figure5")
def test_figure5a_expected_accuracy_vs_energy(benchmark, output_dir):
    """Regenerate the Figure 5(a) series."""
    result = benchmark(lambda: run_figure5a_experiment(num_budgets=40))
    emit(result, output_dir, "figure5a.csv")

    budgets = np.array(result.column("budget_J"))
    reap = np.array(result.column("REAP_%"))
    dp1 = np.array(result.column("DP1_%"))
    dp5 = np.array(result.column("DP5_%"))

    # REAP matches or exceeds every static point at every budget.
    assert result.extras["reap_dominates"]
    # Region 1: the low-power DP5 beats DP1 on expected accuracy.
    region1 = budgets < 4.0
    assert np.all(dp5[region1] >= dp1[region1] - 1e-9)
    # Region 3: everything saturates; REAP equals DP1's 94%.
    region3 = budgets > 10.0
    assert np.all(np.abs(reap[region3] - 94.0) < 1e-3)
    # Accuracy grows monotonically with the budget for REAP.
    assert np.all(np.diff(reap) >= -1e-9)
