"""Benchmark of the vectorized planning scan (repro.planning.scan).

Runs a month-long closed-loop planning fleet -- four wearable-exposure
scenarios x six forecast-driven policies (horizon-average and
receding-horizon MPC, each against perfect, persistence and noisy-oracle
forecasts) -- twice: once through the scalar planning reference (one
Python iteration per hour per cell, per-period LP solves, the MPC's
horizon plan re-solved with one ``solve_arrays`` broadcast per step) and
once through the vectorized :class:`~repro.planning.scan.PlanScan` inside
:class:`~repro.simulation.fleet.FleetCampaign` (one budget/charge vector
per planner group covering every cell, consumption-curve lookups, one
batched allocation solve per cell).

Both paths must agree to 1e-9 on every per-period objective and on the
battery trajectories, and the plan scan must be at least 10x faster.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import ExperimentResult
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
from repro.harvesting.traces import SolarTrace
from repro.simulation.fleet import CampaignConfig, FleetCampaign
from repro.simulation.policies import PlanningPolicy
from repro.simulation.simulator import HarvestingCampaign

MONTH = 9
SEED = 2015
ALPHA = 1.0
EXPOSURES = (0.024, 0.032, 0.045, 0.06)
REQUIRED_SPEEDUP = 10.0
#: 0 means the whole month; the CI bench-gate truncates the trace.
BENCH_HOURS = int(os.environ.get("REPRO_BENCH_PLANNING_HOURS", "0"))
#: Lookahead window; the CI bench-gate can shrink it with the trace.
HORIZON = int(os.environ.get("REPRO_BENCH_PLANNING_HORIZON", "24"))


def _policies(points):
    return [
        PlanningPolicy(
            points,
            planner=planner,
            horizon_periods=HORIZON,
            forecast=forecast,
            alpha=ALPHA,
        )
        for planner in ("horizon", "mpc")
        for forecast in ("perfect", "persistence", "noisy")
    ]


def _scenarios():
    return [
        HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
        for factor in EXPOSURES
    ]


def _config():
    return CampaignConfig(use_battery=True, battery_capacity_j=80.0)


def _run_fleet(points, trace):
    """All (scenario x policy) cells through one vectorized fleet run."""
    fleet = FleetCampaign(_scenarios(), _config())
    return fleet.run(_policies(points), trace)


def _run_scalar(points, trace):
    """The same grid through the scalar planning reference, cell by cell."""
    grid = []
    policies = _policies(points)
    for scenario in _scenarios():
        campaign = HarvestingCampaign(scenario, _config(), engine="scalar")
        grid.append([campaign.run(policy, trace) for policy in policies])
    return grid


@pytest.mark.benchmark(group="planning")
def test_plan_scan_speedup_over_scalar_reference(output_dir, published_points):
    """Month x 4 scenarios x 6 planning policies: scan vs scalar, >= 10x."""
    points = tuple(published_points)
    trace = SyntheticSolarModel(seed=SEED).generate_month(MONTH)
    if BENCH_HOURS:
        trace = SolarTrace(trace.hours[:BENCH_HOURS], name=trace.name)
    num_cells = len(trace) * len(EXPOSURES) * 6

    # Same protocol as the fleet benchmark: warm-up, then best of three.
    scan_result = _run_fleet(points, trace)  # warm-up (engine caches)
    scan_s = min(_timed(lambda: _run_fleet(points, trace))[0] for _ in range(3))

    scalar_grid = _run_scalar(points, trace)  # warm-up
    scalar_s = min(
        _timed(lambda: _run_scalar(points, trace))[0] for _ in range(3)
    )

    for scenario_index, row in enumerate(scalar_grid):
        for policy_index, scalar_cell in enumerate(row):
            scan_cell = scan_result.result(policy_index, scenario_index)
            np.testing.assert_allclose(
                scan_cell.objective_values(),
                scalar_cell.objective_values(),
                rtol=1e-9,
                atol=1e-9,
            )
            np.testing.assert_allclose(
                scan_cell.battery_charge_j,
                scalar_cell.battery_charge_j,
                rtol=0,
                atol=1e-9,
            )
    speedup = scalar_s / scan_s

    result = ExperimentResult(
        name=(
            f"Planning scan vs scalar reference: {len(trace)} hours x "
            f"{len(EXPOSURES)} scenarios x 6 planning policies, "
            f"{HORIZON}-period lookahead"
        ),
        headers=["engine", "policy_periods", "total_ms", "per_period_us",
                 "speedup_x"],
        rows=[
            ["scalar reference", num_cells, scalar_s * 1e3,
             scalar_s / num_cells * 1e6, 1.0],
            ["plan scan", num_cells, scan_s * 1e3,
             scan_s / num_cells * 1e6, speedup],
        ],
        extras={"speedup": speedup},
    )
    emit(result, output_dir, "planning.csv")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized planning scan is only {speedup:.1f}x faster than the "
        f"scalar reference (required {REQUIRED_SPEEDUP:.0f}x)"
    )


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value
