"""Benchmark / reproduction of Figure 7.

Month-long case study with real-solar-shaped energy budgets: REAP's
objective value normalised to the static DP1 / DP3 / DP5 baselines, for
alpha in {0.5, 1, 2, 4, 8}.  The bars of the figure are the mean per-day
ratios; the error bars are the min/max across the days of the month.
"""

from __future__ import annotations

import pytest

from _bench_utils import emit
from repro.analysis.experiments import run_figure7_experiment


@pytest.mark.benchmark(group="figure7")
def test_figure7_monthly_solar_case_study(benchmark, output_dir):
    """Regenerate the Figure 7 normalised-performance bars."""

    def run():
        return run_figure7_experiment(
            alphas=(0.5, 1.0, 2.0, 4.0, 8.0), month=9, seed=2015
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result, output_dir, "figure7.csv")

    by_alpha = {row[0]: row for row in result.rows}
    headers = result.headers

    def value(alpha, column):
        return by_alpha[alpha][headers.index(column)]

    # REAP never loses to a static design point on any day of the month.
    for alpha in (0.5, 1.0, 2.0, 4.0, 8.0):
        for baseline in ("DP1", "DP3", "DP5"):
            assert value(alpha, f"vs_{baseline}_min") >= 1.0 - 1e-9

    # Gains over DP1 are large when active time matters and shrink (but stay
    # above 1.1x) when accuracy dominates -- the trend of the figure.
    assert value(0.5, "vs_DP1_mean") > 1.4
    assert value(8.0, "vs_DP1_mean") > 1.1
    assert value(8.0, "vs_DP1_mean") < value(0.5, "vs_DP1_mean")

    # Gains over DP3 are the smallest (it is the best single trade-off).
    assert value(0.5, "vs_DP3_mean") < value(0.5, "vs_DP1_mean")

    # Gains over DP5 follow the opposite trend: small at low alpha, large at
    # high alpha.
    assert value(0.5, "vs_DP5_mean") < value(8.0, "vs_DP5_mean")
    assert value(8.0, "vs_DP5_mean") > 1.5
