"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints the
same rows/series the paper reports and stores them as CSV under
``benchmarks/output/`` so the numbers can be inspected after the run.
pytest-benchmark times either the full experiment (for the heavyweight,
train-a-classifier experiments we run a single round) or the representative
kernel (for the fast optimiser-only experiments).

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see the reproduced tables on stdout.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data.table2 import table2_design_points

#: Directory where benchmarks drop their reproduced tables as CSV files.
OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    """Create (once) and return the benchmark output directory."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def published_points():
    """The five published Table 2 design points."""
    return table2_design_points()
