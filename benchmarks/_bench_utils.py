"""Small helpers shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path


def emit(result, output_dir: Path, filename: str) -> None:
    """Print an ExperimentResult table and persist it as CSV.

    ``result`` is an :class:`repro.analysis.experiments.ExperimentResult`;
    the printed table shows the same rows/series the paper reports and the
    CSV lands under ``benchmarks/output/`` for later inspection.
    """
    print()
    print(result.to_text())
    result.to_csv(str(output_dir / filename))
