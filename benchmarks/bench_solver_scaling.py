"""Benchmark of the on-device simplex solver (Section 3.3).

The paper reports ~1.5 ms per solve with 5 design points and ~8 ms with 100
design points on the 47 MHz CC2650.  Absolute numbers on a workstation are
far smaller; the property that matters is that the solve time stays in the
microsecond-to-millisecond range and grows gently with the number of design
points, so running it once per hour is negligible.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import (
    run_solver_scaling_experiment,
    _random_design_points,
)
from repro.core.allocator import ReapAllocator
from repro.core.problem import ReapProblem
from repro.data.paper_constants import ACTIVITY_PERIOD_S


@pytest.mark.benchmark(group="solver")
@pytest.mark.parametrize("num_design_points", [5, 10, 20, 50, 100])
def test_solver_scaling_with_design_point_count(benchmark, num_design_points):
    """Time one REAP allocation solve for N design points."""
    rng = np.random.default_rng(7)
    points = _random_design_points(num_design_points, rng)
    budget = 0.6 * max(dp.power_w for dp in points) * ACTIVITY_PERIOD_S
    problem = ReapProblem(tuple(points), energy_budget_j=budget, alpha=1.0)
    allocator = ReapAllocator()

    allocation = benchmark(lambda: allocator.solve(problem))
    assert allocation.active_time_s > 0
    assert allocation.energy_j <= budget + 1e-6


@pytest.mark.benchmark(group="solver")
def test_solver_scaling_summary_table(benchmark, output_dir):
    """Regenerate the solve-time-vs-N summary table."""
    result = benchmark.pedantic(
        lambda: run_solver_scaling_experiment(sizes=(5, 10, 20, 50, 100), repeats=10),
        rounds=1,
        iterations=1,
    )
    emit(result, output_dir, "solver_scaling.csv")

    times = result.column("mean_solve_ms")
    # Solve times stay small (well under the paper's 8 ms on an MCU) and do
    # not explode with N.
    assert max(times) < 50.0
