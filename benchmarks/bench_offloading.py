"""Benchmark / reproduction of the Section 4.2 offloading comparison.

Transmitting the recognised activity label costs ~0.38 mJ per activity while
streaming the raw sensor data to a host costs ~5.5 mJ, which is why REAP
keeps the classifier on the device.
"""

from __future__ import annotations

import pytest

from _bench_utils import emit
from repro.analysis.experiments import run_offloading_experiment


@pytest.mark.benchmark(group="offloading")
def test_offloading_comparison(benchmark, output_dir):
    """Regenerate the label-vs-raw-offload energy comparison."""
    result = benchmark(run_offloading_experiment)
    emit(result, output_dir, "offloading.csv")

    label_row, raw_row = result.rows
    assert label_row[1] == pytest.approx(label_row[2], abs=0.05)
    assert raw_row[1] == pytest.approx(raw_row[2], rel=0.1)
    assert result.extras["offload_penalty_factor"] > 10
