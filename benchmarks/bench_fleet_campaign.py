"""Benchmark of the vectorized fleet campaign engine (repro.simulation.fleet).

Runs the month-long closed-loop (battery-backed) solar case study across the
full 6-policy suite (REAP plus the five static design points) twice: once
through the scalar reference loop (one ``grant -> allocate -> run_period ->
settle`` Python iteration per hour per policy) and once through the fleet
engine (one lockstep battery scan for all policies, one batched allocation
solve per policy, columnar device accounting).

Both engines must agree to 1e-9 on every per-period objective and on the
battery trajectories, and the fleet path must be at least 10x faster.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import ExperimentResult
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario
from repro.harvesting.traces import SolarTrace
from repro.simulation.fleet import CampaignConfig
from repro.simulation.policies import default_policy_suite
from repro.simulation.simulator import HarvestingCampaign

MONTH = 9
SEED = 2015
ALPHA = 1.0
REQUIRED_SPEEDUP = 10.0
#: 0 means the whole month; the CI bench-gate truncates the trace (the
#: speedup shrinks with the trace because the fleet engine's fixed setup
#: amortises over hours -- keep at least ~2 weeks for a clean >= 10x).
BENCH_HOURS = int(os.environ.get("REPRO_BENCH_FLEET_HOURS", "0"))


def _run(engine: str, points, trace):
    campaign = HarvestingCampaign(
        HarvestScenario(),
        CampaignConfig(use_battery=True, battery_capacity_j=80.0),
        engine=engine,
    )
    return campaign.run_many(default_policy_suite(points, alpha=ALPHA), trace)


@pytest.mark.benchmark(group="fleet")
def test_fleet_campaign_speedup_over_scalar_loop(output_dir, published_points):
    """Month x 6 policies closed loop: fleet engine vs scalar loop, >= 10x."""
    points = tuple(published_points)
    trace = SyntheticSolarModel(seed=SEED).generate_month(MONTH)
    if BENCH_HOURS:
        trace = SolarTrace(trace.hours[:BENCH_HOURS], name=trace.name)
    num_cells = len(trace) * 6

    # Same protocol for both engines: one warm-up run, then best of three.
    fleet_results = _run("fleet", points, trace)  # warm-up (engine caches)
    fleet_s = min(_timed(lambda: _run("fleet", points, trace))[0] for _ in range(3))

    scalar_results = _run("scalar", points, trace)  # warm-up
    scalar_s = min(_timed(lambda: _run("scalar", points, trace))[0] for _ in range(3))

    for name, scalar_result in scalar_results.items():
        fleet_result = fleet_results[name]
        np.testing.assert_allclose(
            fleet_result.objective_values(),
            scalar_result.objective_values(),
            rtol=1e-9,
            atol=1e-9,
        )
        np.testing.assert_allclose(
            fleet_result.battery_charge_j,
            scalar_result.battery_charge_j,
            rtol=0,
            atol=1e-9,
        )
    speedup = scalar_s / fleet_s

    result = ExperimentResult(
        name=(
            f"Fleet campaign engine vs scalar loop: {len(trace)} hours x "
            f"6 policies, battery-backed"
        ),
        headers=["engine", "policy_periods", "total_ms", "per_period_us", "speedup_x"],
        rows=[
            ["scalar loop", num_cells, scalar_s * 1e3,
             scalar_s / num_cells * 1e6, 1.0],
            ["fleet engine", num_cells, fleet_s * 1e3,
             fleet_s / num_cells * 1e6, speedup],
        ],
        extras={"speedup": speedup},
    )
    emit(result, output_dir, "fleet_campaign.csv")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"fleet closed-loop campaign is only {speedup:.1f}x faster than the "
        f"scalar loop (required {REQUIRED_SPEEDUP:.0f}x)"
    )


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value
