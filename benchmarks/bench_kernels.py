"""Benchmarks of the compiled/float32 kernel backends (repro.core.kernels).

Three micro-benchmarks cover the raw-speed work of the kernels PR:

* the value-hull ``BatchAllocator.solve_arrays`` backends against the
  float64 candidate-enumeration reference (compiled must be >= 1.5x at
  1e-9 agreement on objectives; float32 is reported alongside at 1e-4),
* the ``BatteryScan`` grant/settle recurrence on a narrow fleet, where
  the compiled scalar path replaces the per-period Python loop and must
  be >= 3x while staying bit-exact, and
* the binary columnar wire format against the NDJSON stream for
  ``GET /campaign/<id>/columns`` -- the float64 frames must be >= 5x
  smaller on a multi-week campaign and round-trip byte-exactly.

Like the other benchmarks, each test prints and persists an
``ExperimentResult`` CSV under ``benchmarks/output/`` so the CI bench
gate (scripts/bench_gate.py) can re-assert the floors.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import ExperimentResult
from repro.core import kernels
from repro.core.batch import BatchAllocator, StackedConsumptionCurves
from repro.energy.fleet import BatteryScan
from repro.service.requests import CampaignRequest
from repro.simulation.fleet import FleetCampaign, FleetResult
from repro.simulation.metrics import CampaignColumns

ALPHA = 1.0
SEED = 2019

#: Budget-grid width of the hull-solve benchmark; the hull kernel's edge
#: over candidate enumeration grows with the grid, so keep >= ~20k points.
BENCH_BUDGETS = int(os.environ.get("REPRO_BENCH_KERNEL_BUDGETS", "200000"))
#: Trace length of the battery-scan benchmark (a year of hourly periods
#: by default; the compiled recurrence amortises its setup over periods).
BENCH_PERIODS = int(os.environ.get("REPRO_BENCH_KERNEL_PERIODS", "8760"))
#: Fleet width of the battery-scan benchmark; <= 24 devices stays on the
#: scalar recurrence path that replaces the per-period Python loop.
BENCH_DEVICES = int(os.environ.get("REPRO_BENCH_KERNEL_DEVICES", "8"))
#: Campaign length (hours) of the wire-format benchmark.  The binary
#: advantage grows with the trace (the JSON framing overhead is
#: per-number); keep >= ~2 weeks for a clean >= 5x.
BENCH_COLUMNS_HOURS = int(os.environ.get("REPRO_BENCH_COLUMNS_HOURS", "504"))

REQUIRED_SOLVE_SPEEDUP = 1.5
REQUIRED_SCAN_SPEEDUP = 3.0
REQUIRED_SIZE_RATIO = 5.0


@pytest.mark.benchmark(group="kernels")
def test_hull_solve_speedup_over_reference(output_dir, published_points):
    """solve_arrays backends vs the float64 reference: compiled >= 1.5x."""
    points = tuple(published_points)
    engines = {
        backend: BatchAllocator(points, backend=backend)
        for backend in kernels.BACKENDS
    }
    reference = engines["numpy"]
    floor = reference.off_power_w * reference.period_s
    ceiling = max(dp.power_w for dp in points) * reference.period_s * 1.2
    budgets = np.linspace(floor * 0.5, ceiling, BENCH_BUDGETS)

    results, timings = {}, {}
    for backend, engine in engines.items():
        results[backend] = engine.solve_arrays(budgets, alpha=ALPHA)  # warm-up
        timings[backend] = min(
            _timed(lambda e=engine: e.solve_arrays(budgets, alpha=ALPHA))[0]
            for _ in range(3)
        )

    # Agreement before speed: compiled tracks the reference to 1e-9 on the
    # objective, float32 to 1e-4 (relative to the objective scale).
    base = results["numpy"]
    scale = float(np.max(np.abs(base.objective)))
    for backend, atol in (("compiled", 1e-9), ("float32", 1e-4)):
        fast = results[backend]
        np.testing.assert_array_equal(fast.feasible, base.feasible)
        np.testing.assert_allclose(
            fast.objective, base.objective, rtol=0, atol=atol * max(scale, 1.0)
        )

    rows = []
    for backend in kernels.BACKENDS:
        speedup = timings["numpy"] / timings[backend]
        label = "reference solve" if backend == "numpy" else f"{backend} solve"
        rows.append(
            [label, BENCH_BUDGETS, timings[backend] * 1e3,
             timings[backend] / BENCH_BUDGETS * 1e6, speedup]
        )
    solve_speedup = timings["numpy"] / timings["compiled"]

    result = ExperimentResult(
        name=(
            f"Value-hull solve backends: {BENCH_BUDGETS} budgets x "
            f"{len(points)} design points (alpha={ALPHA:g}, "
            f"numba={'yes' if kernels.numba_ready() else 'no'})"
        ),
        headers=["backend", "budgets", "total_ms", "per_solve_us", "speedup_x"],
        rows=rows,
        extras={"speedup": solve_speedup},
    )
    emit(result, output_dir, "kernels_solve.csv")

    assert solve_speedup >= REQUIRED_SOLVE_SPEEDUP, (
        f"compiled hull solve is only {solve_speedup:.2f}x faster than the "
        f"reference (required {REQUIRED_SOLVE_SPEEDUP:g}x)"
    )


@pytest.mark.benchmark(group="kernels")
def test_battery_scan_speedup_over_python_loop(output_dir, published_points):
    """Narrow-fleet settle recurrence: compiled >= 3x over the period loop."""
    points = tuple(published_points)
    curve = BatchAllocator(points).consumption_curve(alpha=ALPHA)
    curves = StackedConsumptionCurves([curve] * BENCH_DEVICES)
    rng = np.random.default_rng(SEED)
    harvest = rng.uniform(0.0, 4.0, size=(BENCH_PERIODS, BENCH_DEVICES))

    def scan(backend):
        return BatteryScan(
            BENCH_DEVICES, capacity_j=80.0, backend=backend
        ).run(harvest, curves)

    results, timings = {}, {}
    for backend in ("numpy", "compiled"):
        results[backend] = scan(backend)  # warm-up
        timings[backend] = min(
            _timed(lambda b=backend: scan(b))[0] for _ in range(3)
        )

    # The scalar recurrence replays the reference arithmetic in the same
    # order, so the trajectories must match bit for bit.
    np.testing.assert_array_equal(
        results["compiled"].charge_j, results["numpy"].charge_j
    )
    np.testing.assert_array_equal(
        results["compiled"].budgets_j, results["numpy"].budgets_j
    )
    np.testing.assert_array_equal(
        results["compiled"].consumed_j, results["numpy"].consumed_j
    )
    scan_speedup = timings["numpy"] / timings["compiled"]
    cells = BENCH_PERIODS * BENCH_DEVICES

    result = ExperimentResult(
        name=(
            f"Battery scan recurrence: {BENCH_PERIODS} periods x "
            f"{BENCH_DEVICES} devices "
            f"(numba={'yes' if kernels.numba_ready() else 'no'})"
        ),
        headers=["backend", "device_periods", "total_ms", "per_period_us",
                 "speedup_x"],
        rows=[
            ["reference settle", cells, timings["numpy"] * 1e3,
             timings["numpy"] / cells * 1e6, 1.0],
            ["compiled settle", cells, timings["compiled"] * 1e3,
             timings["compiled"] / cells * 1e6, scan_speedup],
        ],
        extras={"speedup": scan_speedup},
    )
    emit(result, output_dir, "kernels_battery.csv")

    assert scan_speedup >= REQUIRED_SCAN_SPEEDUP, (
        f"compiled battery scan is only {scan_speedup:.2f}x faster than the "
        f"per-period loop (required {REQUIRED_SCAN_SPEEDUP:g}x)"
    )


@pytest.mark.benchmark(group="kernels")
def test_binary_columns_wire_size(output_dir):
    """Columns wire format: binary f8 frames >= 5x smaller than NDJSON."""
    # The paper's comparison set: REAP at alpha=1 against three static
    # baselines (the mix the service ships in practice).
    request = CampaignRequest(
        hours=BENCH_COLUMNS_HOURS, alphas=(1.0,), baselines=("DP1", "DP3", "DP5")
    )
    scenarios, labels, policies, trace, config = request.build()
    fleet_result = FleetCampaign(scenarios, config, scenario_labels=labels).run(
        policies, trace
    )

    payloads = [fleet_result.meta_payload(), *fleet_result.cell_payloads()]
    # Matches the service's _write_stream framing: one JSON line per cell.
    ndjson_bytes = sum(
        len((json.dumps(payload) + "\n").encode("utf-8"))
        for payload in payloads
    )
    binary = {
        dtype: sum(
            len(frame) for frame in fleet_result.to_binary_frames(dtype)
        )
        for dtype in ("<f8", "<f4")
    }

    # The stream and the per-cell codec must both round-trip before the
    # size comparison means anything: byte-exact re-encode at f8.
    stream = b"".join(fleet_result.to_binary_frames("<f8"))
    decoded = FleetResult.from_binary(stream)
    np.testing.assert_array_equal(
        decoded.result(0).columns.objective_value,
        fleet_result.result(0).columns.objective_value,
    )
    blob = fleet_result.result(0).columns.to_bytes(dtype="<f8")
    assert CampaignColumns.from_bytes(blob).to_bytes(dtype="<f8") == blob

    ratio_f8 = ndjson_bytes / binary["<f8"]
    ratio_f4 = ndjson_bytes / binary["<f4"]

    result = ExperimentResult(
        name=(
            f"Campaign columns wire formats: {BENCH_COLUMNS_HOURS}h x "
            f"{len(policies)} policies x {len(scenarios)} scenarios"
        ),
        headers=["wire format", "bytes", "kib", "size_ratio_x"],
        rows=[
            ["ndjson stream", ndjson_bytes, ndjson_bytes / 1024, 1.0],
            ["binary f8 frames", binary["<f8"], binary["<f8"] / 1024, ratio_f8],
            ["binary f4 frames", binary["<f4"], binary["<f4"] / 1024, ratio_f4],
        ],
        extras={"speedup": ratio_f8},
    )
    emit(result, output_dir, "columns_wire.csv")

    assert ratio_f8 >= REQUIRED_SIZE_RATIO, (
        f"binary f8 columns are only {ratio_f8:.2f}x smaller than NDJSON "
        f"(required {REQUIRED_SIZE_RATIO:g}x)"
    )


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value
