"""Benchmark / reproduction of Figure 6.

Objective value J(t) of each static design point normalised to REAP for
alpha = 2 (accuracy emphasised over active time).
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import run_figure6_experiment


@pytest.mark.benchmark(group="figure6")
def test_figure6_normalised_objective_alpha2(benchmark, output_dir):
    """Regenerate the Figure 6 series."""
    result = benchmark(lambda: run_figure6_experiment(alpha=2.0, num_budgets=40))
    emit(result, output_dir, "figure6.csv")

    budgets = np.array(result.column("budget_J"))
    assert result.extras["reap_dominates"]

    dp4 = np.array(result.column("DP4_norm_J"))
    dp5 = np.array(result.column("DP5_norm_J"))
    dp1 = np.array(result.column("DP1_norm_J"))

    # Below ~6 J DP4 is the best static point and essentially matches REAP.
    low = (budgets > 2.0) & (budgets < 5.5)
    assert np.all(dp4[low] > 0.97)
    # DP5 never reaches REAP once accuracy is emphasised and falls away as
    # the budget grows.
    mid = budgets > 5.0
    assert np.all(dp5[mid] < 0.85)
    # DP1 starts well below REAP (it is mostly off in the constrained region,
    # where DP4 is the best static choice) and converges to 1.0 once the
    # budget can sustain it for the whole hour.
    assert dp1[5] < 0.7
    assert dp1[5] < dp4[5] - 0.2
    assert dp1[-1] == pytest.approx(1.0, abs=1e-6)
