"""Benchmark of the durable campaign store's journaling overhead.

Durable campaigns (``repro serve --store``) pay for crash recovery with
a write-ahead journal: every finished shard's column frames are encoded
and committed to SQLite (WAL) *before* the run proceeds.  The design
claim is that this persist-then-ack discipline costs **less than 10% of
campaign wall-clock** -- journaling rides the shard boundaries, far off
the per-period simulation hot path.

The measurement runs the same multi-week closed-loop campaign twice
through the identical durable execution path (cell-sharded, two worker
processes), interleaved best-of-three:

- **plain**: the shard-completion hook is a no-op -- durable plumbing,
  zero persistence;
- **journaled**: the hook is a real :class:`CampaignStore` --
  ``submit``/``start`` up front, ``shard_done`` frames per shard, a
  ``finish`` record at the end (``sync="normal"``, the server default).

Asserted floor: ``speedup_vs_plain >= 0.9`` (journaled wall time within
~11% of plain).  Both results must equal the single-process reference to
1e-9, and the journal must immediately reload into a bit-exact
FleetResult -- the overhead being measured is the overhead of something
that demonstrably works.

The CI bench-gate job shrinks the workload through the
``REPRO_BENCH_STORE_HOURS`` knob (see ``scripts/bench_gate.py``); the
asserted floor is unchanged.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _bench_utils import emit
from repro.analysis.experiments import ExperimentResult
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
from repro.harvesting.traces import SolarTrace
from repro.service.shard import run_sharded_campaign
from repro.service.store import CampaignStore
from repro.service.requests import CampaignRequest
from repro.simulation.fleet import CampaignConfig
from repro.simulation.policies import ReapPolicy, StaticPolicy

STORE_HOURS = int(os.environ.get("REPRO_BENCH_STORE_HOURS", "336"))
STORE_JOBS = 2
#: Journaled wall time over plain wall time: >= 0.9 keeps the journal
#: under ~11% of campaign wall-clock (the <10% claim plus runner noise).
REQUIRED_SPEEDUP = 0.9


def _campaign(points):
    """One multi-week closed-loop grid: 2 scenarios x 4 policies."""
    month = SyntheticSolarModel(seed=2015).generate_month(9)
    trace = SolarTrace(month.hours[:STORE_HOURS], name=month.name)
    factors = (0.032, 0.05)
    scenarios = [
        HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
        for factor in factors
    ]
    labels = [f"exposure={factor:g}" for factor in factors]
    policies = [ReapPolicy(points, alpha=alpha) for alpha in (1.0, 2.0)]
    policies += [StaticPolicy(points, name) for name in ("DP1", "DP3")]
    return scenarios, labels, policies, trace


def _assert_cells_close(result, reference) -> None:
    for scenario_index, policy_index, cell in result:
        other = reference.result(policy_index, scenario_index)
        np.testing.assert_allclose(
            cell.objective_values(), other.objective_values(), rtol=0, atol=1e-9
        )
        if cell.battery_charge_j is not None:
            np.testing.assert_allclose(
                cell.battery_charge_j, other.battery_charge_j, rtol=0, atol=1e-9
            )


@pytest.mark.benchmark(group="store")
def test_journaling_overhead_within_bound(
    output_dir, published_points, tmp_path
):
    """Durable campaign wall time: journaling must cost < ~10%."""
    points = tuple(published_points)
    scenarios, labels, policies, trace = _campaign(points)
    config = CampaignConfig(use_battery=True)

    single = run_sharded_campaign(
        scenarios, policies, trace, config, scenario_labels=labels, jobs=1
    )

    def timed_plain():
        started = time.perf_counter()
        result = run_sharded_campaign(
            scenarios, policies, trace, config,
            scenario_labels=labels, jobs=STORE_JOBS,
            on_shard_done=lambda cells: None,
        )
        return time.perf_counter() - started, result

    def timed_journaled(run_index: int):
        # A fresh store per round: each run journals its full history
        # (submit, start, every shard's frames, finish), exactly what the
        # server's durable path writes.
        store = CampaignStore(str(tmp_path / f"bench-{run_index}.db"))
        request = CampaignRequest(
            hours=STORE_HOURS, alphas=(1.0, 2.0), baselines=("DP1", "DP3")
        )
        started = time.perf_counter()
        job_id, _created = store.submit(request)
        store.start(job_id, trace_hours=len(trace))
        result = run_sharded_campaign(
            scenarios, policies, trace, config,
            scenario_labels=labels, jobs=STORE_JOBS,
            on_shard_done=lambda cells: store.shard_done(job_id, cells),
        )
        store.finish(job_id, result)
        elapsed = time.perf_counter() - started
        return elapsed, result, store, job_id

    plain_runs, journaled_runs = [], []
    last_store = None
    last_job = None
    for run_index in range(3):
        plain_s, plain_result = timed_plain()
        plain_runs.append(plain_s)
        journal_s, journal_result, store, job_id = timed_journaled(run_index)
        journaled_runs.append(journal_s)
        if last_store is not None:
            last_store.close()
        last_store, last_job = store, job_id
        _assert_cells_close(plain_result, single)
        _assert_cells_close(journal_result, single)

    # The journal is not write-only: it must reload into the same grid.
    reloaded = last_store.load_result(last_job)
    _assert_cells_close(reloaded, single)
    appends = dict(last_store.stats.appends)
    append_bytes = last_store.stats.append_bytes
    last_store.close()

    plain_s = min(plain_runs)
    journal_s = min(journaled_runs)
    speedup = plain_s / journal_s if journal_s > 0 else float("inf")
    result = ExperimentResult(
        name=(
            f"Store journaling overhead: {len(scenarios) * len(policies)} "
            f"cells over {len(trace)} hours, {appends.get('shard_done', 0)} "
            f"shard records, {append_bytes / 1024:.0f} KiB journaled"
        ),
        headers=["path", "wall_s", "speedup_vs_plain"],
        rows=[
            ["plain campaign", round(plain_s, 4), 1.0],
            ["journaled campaign", round(journal_s, 4), round(speedup, 4)],
        ],
    )
    emit(result, output_dir, "store_overhead.csv")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"journaling slows the campaign to {speedup:.3f}x of plain "
        f"(need >= {REQUIRED_SPEEDUP}x, i.e. < ~10% overhead)"
    )
