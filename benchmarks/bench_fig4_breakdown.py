"""Benchmark / reproduction of Figure 4.

Energy breakdown of DP1 over a one-hour activity period.  The paper reports
a 9.9 J total with roughly 47% of it spent in the sensors.
"""

from __future__ import annotations

import pytest

from _bench_utils import emit
from repro.analysis.experiments import run_figure4_experiment


@pytest.mark.benchmark(group="figure4")
def test_figure4_dp1_hourly_energy_breakdown(benchmark, output_dir):
    """Regenerate the Figure 4 energy-breakdown pie as a table."""
    result = benchmark(run_figure4_experiment)
    emit(result, output_dir, "figure4.csv")

    assert result.extras["total_j"] == pytest.approx(
        result.extras["paper_total_j"], rel=0.05
    )
    assert result.extras["sensor_fraction"] == pytest.approx(0.47, abs=0.05)
    fractions = result.column("fraction")
    assert sum(fractions) == pytest.approx(1.0, abs=1e-9)
