"""Quickstart: allocate one hour of harvested energy with REAP.

Uses the five published Pareto-optimal design points (Table 2 of the paper)
and shows how the optimal schedule changes with the energy budget and with
the accuracy/active-time trade-off knob alpha.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BatchAllocator, ReapController, StaticController, table2_design_points
from repro.analysis import format_table


def describe_allocation(budget_j: float, alpha: float) -> list:
    """Solve one period and return a report row."""
    design_points = table2_design_points()
    controller = ReapController(design_points, alpha=alpha)
    allocation = controller.allocate(budget_j)

    active_points = {
        name: seconds for name, seconds in allocation.as_dict().items() if seconds > 1.0
    }
    mix = ", ".join(
        f"{name}: {seconds / 60:.0f} min" for name, seconds in active_points.items()
    )
    return [
        budget_j,
        alpha,
        allocation.expected_accuracy * 100.0,
        allocation.active_time_s / 60.0,
        allocation.energy_j,
        mix or "(off)",
    ]


def main() -> None:
    design_points = table2_design_points()
    print("Design points available to the runtime (Table 2):")
    rows = [
        [dp.name, dp.accuracy_percent, dp.power_mw, dp.energy_per_activity_mj, dp.description]
        for dp in design_points
    ]
    print(format_table(
        ["DP", "accuracy %", "power mW", "energy/activity mJ", "features"], rows
    ))
    print()

    print("REAP schedules for a one-hour activity period:")
    rows = [
        describe_allocation(budget_j=2.0, alpha=1.0),
        describe_allocation(budget_j=5.0, alpha=1.0),
        describe_allocation(budget_j=5.0, alpha=4.0),
        describe_allocation(budget_j=8.0, alpha=1.0),
        describe_allocation(budget_j=12.0, alpha=1.0),
    ]
    print(format_table(
        ["budget J", "alpha", "expected acc %", "active min", "energy J", "schedule"],
        rows,
    ))
    print()

    # Compare against the static DP1 baseline at a mid-range budget.
    budget = 5.0
    reap = ReapController(design_points).allocate(budget)
    dp1 = StaticController(design_points, "DP1").allocate(budget)
    print(
        f"At a {budget:.0f} J budget REAP achieves "
        f"{reap.expected_accuracy:.1%} expected accuracy and "
        f"{reap.active_time_s / 60:.0f} min active time, while always-DP1 achieves "
        f"{dp1.expected_accuracy:.1%} and {dp1.active_time_s / 60:.0f} min."
    )
    print()

    # Whole scenario grids solve in one vectorized pass: every (budget,
    # alpha) cell below is a full REAP LP, handled by the batch engine.
    budgets = np.linspace(1.0, 10.0, 10)
    alphas = (0.5, 1.0, 2.0)
    grid = BatchAllocator(design_points).solve_grid(budgets, alphas)
    print(
        f"Batch engine: solved {grid.num_budgets * grid.num_alphas} scenarios "
        f"({grid.num_budgets} budgets x {grid.num_alphas} alphas) in one call;"
    )
    for alpha_index, alpha in enumerate(grid.alphas):
        peak = grid.objective[alpha_index].max()
        print(f"  alpha={alpha:g}: peak objective {peak:.3f} across the sweep")


if __name__ == "__main__":
    main()
