"""Month-long solar harvesting case study (Section 5.4 / Figure 7).

Generates a synthetic September solar trace for Golden, Colorado, converts it
into hourly energy budgets through the flexible-solar-cell model, and runs
REAP and the static design-point baselines over the whole month -- both
open-loop (spend what each hour harvests) and closed-loop through a small
battery.

By default the whole policy suite is simulated in one pass by the vectorized
fleet engine (closed-loop runs share a single lockstep battery scan); pass
``--engine scalar`` to step the original hour-by-hour reference loop instead.

Run with:  python examples/solar_month_study.py [--month M] [--battery]
"""

from __future__ import annotations

import argparse

from repro import table2_design_points
from repro.analysis import format_table
from repro.harvesting import HarvestScenario, SyntheticSolarModel, summarize_budgets
from repro.simulation import (
    CampaignConfig,
    HarvestingCampaign,
    ReapPolicy,
    StaticPolicy,
    compare_campaigns,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--month", type=int, default=9, help="calendar month to simulate")
    parser.add_argument("--seed", type=int, default=2015, help="solar trace seed")
    parser.add_argument("--alpha", type=float, default=1.0,
                        help="accuracy/active-time trade-off parameter")
    parser.add_argument("--battery", action="store_true",
                        help="run closed-loop through a small battery")
    parser.add_argument("--engine", choices=("fleet", "scalar"), default="fleet",
                        help="vectorized fleet engine or the scalar reference loop")
    args = parser.parse_args()

    design_points = table2_design_points()
    trace = SyntheticSolarModel(seed=args.seed).generate_month(args.month)
    scenario = HarvestScenario()
    budgets = scenario.budgets_from_trace(trace)
    stats = summarize_budgets(budgets)
    print(f"Synthetic month {args.month:02d}: {stats['num_periods']} hours, "
          f"total harvest {stats['total_j']:.0f} J, "
          f"peak hour {stats['max_j']:.1f} J, "
          f"{stats['hours_above_dp1_j']} hours above the 9.9 J DP1 saturation point.")

    campaign = HarvestingCampaign(
        scenario, CampaignConfig(use_battery=args.battery), engine=args.engine
    )
    policies = [ReapPolicy(design_points, alpha=args.alpha)] + [
        StaticPolicy(design_points, dp.name, alpha=args.alpha) for dp in design_points
    ]
    results = campaign.run_many(policies, trace)

    rows = []
    reap_result = results["REAP"]
    for name, result in results.items():
        summary = result.summary()
        rows.append(
            [
                name,
                summary["mean_objective"],
                summary["mean_expected_accuracy"] * 100.0,
                summary["total_active_time_s"] / 3600.0,
                summary["total_energy_j"],
                summary["overall_recognition_rate"] * 100.0,
            ]
        )
    print(format_table(
        ["policy", "mean J(t)", "mean expected acc %", "active hours", "energy J",
         "recognised windows %"],
        rows,
        title=f"Month-long campaign (alpha={args.alpha}, "
              f"{'battery-backed' if args.battery else 'open loop'})",
    ))

    print("\nREAP improvement over the static baselines (per-day objective ratios):")
    comparison_rows = []
    for name in ("Static-DP1", "Static-DP3", "Static-DP5"):
        comparison = compare_campaigns(reap_result, results[name])
        comparison_rows.append(
            [name, comparison["mean_ratio"], comparison["min_ratio"], comparison["max_ratio"]]
        )
    print(format_table(["baseline", "mean", "min", "max"], comparison_rows))


if __name__ == "__main__":
    main()
