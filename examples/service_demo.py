"""Allocation service demo: concurrent REAP solving over HTTP.

Serving allocations
-------------------
The paper frames REAP as a runtime service devices consult for their next
energy-optimal hour; :mod:`repro.service` is that service.  This demo boots
the stdlib JSON-over-HTTP server on an ephemeral port (the same thing
``python -m repro serve`` runs -- pass ``--workers N`` here or on the CLI
to fan batched solves across a pool of engine workers), then plays a
device fleet against it:

1. a **burst** of concurrent allocation requests with distinct budgets --
   the micro-batcher coalesces them into a handful of vectorized
   :class:`~repro.core.batch.BatchAllocator` solves instead of one scalar
   LP per request;
2. a **repeat wave** re-asking the same questions -- every answer now comes
   straight from the LRU result cache (the canonical problem encoding is
   permutation-invariant, so equivalent requests share entries);
3. a ``GET /stats`` call showing the cache hit rate, how many batches the
   coalescer dispatched, per-worker pool counters, and the solve latency
   profile.

Remote campaigns
----------------
With ``--campaign``, the demo also submits a whole fleet study over HTTP
(``POST /campaign``), polls ``GET /campaign/<id>`` until the service's
process workers finish it, streams the full per-period columns back as
chunked NDJSON (``GET /campaign/<id>/columns``), and rebuilds the
:class:`~repro.simulation.fleet.FleetResult` client-side -- equal to a
local :class:`~repro.simulation.fleet.FleetCampaign` run to 1e-9.  The
same flow from the shell::

    python -m repro serve --workers 4 --port 8734 &
    python -m repro fleet --remote 127.0.0.1:8734 --hours 48
    python -m repro.service.client --port 8734 campaign run --hours 48

With ``--binary`` the columns come back as the length-prefixed binary
columnar frames instead (``GET /campaign/<id>/columns?format=binary``,
~5x smaller at float64, ~8x at float32) -- same decoded result.  Add
``codec=raw`` to the query (``--codec raw`` on the client CLI) and the
server streams the frames uncompressed, as zero-copy ``memoryview``
slices over the result arrays -- more bytes on the wire, no deflate pass.

All of this speaks the versioned **/v1 API** (``docs/service_api.md``):
every error is a uniform envelope ``{"error": {"code", "message",
"detail"}}`` with stable codes (``bad_request``, ``job_running``,
``not_found``, ``store_unavailable``, ...), campaign jobs move through an
explicit ``queued -> running -> done | failed | cancelled`` lifecycle,
and ``POST /v1/campaign`` honours an ``Idempotency-Key`` header so a
retried submission returns the original job instead of a duplicate run.
The pre-versioning paths still answer through a shim that adds
``Deprecation: true`` and a ``Link: ...; rel="successor-version"``
header.

Kill-and-recover: the durable store
-----------------------------------
With ``--durable``, the demo stops being polite.  It boots a real
``python -m repro serve --store jobs.db`` subprocess, submits a campaign
(with an idempotency key), waits until the write-ahead journal holds at
least one finished shard, and **SIGKILLs the server mid-campaign** -- no
shutdown hooks, no flush.  Then it restarts a server on the same store
path and watches recovery: the campaign id still answers (the submit ack
was persist-then-ack), the job re-runs only the shards the journal is
missing, replaying the idempotency key returns the same job id, and the
finished columns stream back bit-exact.  The same walkthrough from the
shell::

    python -m repro serve --port 8734 --store jobs.db &
    python -m repro.service.client campaign submit --hours 336 \
        --idempotency-key nightly-1          # -> {"campaign_id": "c1", ...}
    kill -9 %1                               # mid-campaign, no mercy
    python -m repro serve --port 8734 --store jobs.db &
    python -m repro.service.client campaign status c1   # recovering -> done
    python -m repro.service.client campaign columns c1  # full columns

``--procs N`` scales the same recipe horizontally: N server processes
share one port via ``SO_REUSEPORT``, coordinate *only* through the store
(advisory job leases -- two front-ends never run the same shard), and
any process answers ``GET /v1/campaign/<id>`` for any job.

Zero-copy sharded campaigns
---------------------------
Campaigns sharded across process workers (``--campaign-workers N`` here,
``--jobs N`` on ``python -m repro fleet``) default to a shared-memory
transport wherever the platform provides it: workers write each cell's
column arrays straight into a ``multiprocessing.shared_memory`` segment
and return only a tiny descriptor over the executor pipe, the campaign
context (trace, config, policies) ships once per worker instead of once
per task, and the parent rebuilds the merged
:class:`~repro.simulation.fleet.FleetResult` as zero-copy NumPy views.
``--shared-memory {auto,on,off}`` controls it: ``auto`` (default) probes
for usable segments and quietly degrades to the plain pickle round trip
when there are none (no ``/dev/shm``, locked-down containers), ``on``
requires the arena (failing loudly where it cannot work), ``off`` forces
pickle.  Both transports produce results identical to the single-process
run to 1e-9 -- including sampled-mode RNG streams, bit for bit.

Observing the service
---------------------
Everything the service does is observable without third-party tooling
(:mod:`repro.obs`):

* **Metrics.**  ``GET /metrics`` renders the Prometheus text exposition:
  request counters by endpoint and status, cache/batcher/pool counters,
  log2-bucketed latency histograms per endpoint, per-phase campaign
  timings (``repro_campaign_phase_seconds``), and SLO burn rates.  The
  demo scrapes it and prints a few headline series; in production, point
  a Prometheus scraper at it.  ``python -m repro.service.client metrics``
  does the same from the shell, and plain ``... client stats`` prints a
  human summary (hit rate, coalescing ratio, p50/p95/p99 per endpoint).
* **Traces.**  Every request carries a W3C ``traceparent`` (the client
  generates one per call, or pins one via ``traceparent=`` /
  ``--traceparent``).  The server opens an ``http.request`` span, the
  micro-batcher records one ``batcher.solve`` span per coalesced burst,
  pool workers record ``pool.slice`` spans, and campaign process workers
  ship ``campaign.shard`` spans back over the executor pipe -- one trace
  id follows the request across threads *and* processes.  ``GET
  /trace/<id>`` returns the recorded spans; the demo follows one below.
  ``python -m repro serve --log-format json`` additionally emits every
  span and request log as one JSON object per line, trace ids included.
* **SLOs.**  ``--slo-ms allocate=5,campaign=500`` (on ``repro serve`` or
  ``AllocationService(slo_ms=...)``) sets per-endpoint latency
  objectives; ``/metrics`` and ``/stats`` then carry good/bad counts and
  5m/1h error-budget burn rates (burn 1.0 = spending budget exactly at
  the sustainable rate).
* **Campaign profiles.**  Finished campaigns report per-phase wall-clock
  timings (harvest, scan settle, cell solves, arena pack, merge) on the
  status payload; ``python -m repro fleet --profile`` writes the same
  breakdown for local runs.

Choosing a backend
------------------
Every engine accepts ``backend=`` (``--backend`` on the CLI, per-request
``"backend"`` over HTTP); the service's default is set at boot.  The
choices:

``numpy`` (default)
    The float64 reference: candidate enumeration in the allocator, the
    per-period settle loop in the scans.  Always available, bit-stable
    across releases; every other backend is tested against it.
``compiled``
    The value-hull / scalar-recurrence kernels from
    :mod:`repro.core.kernels`, jitted with Numba when it is installed
    and falling back to fused NumPy hull kernels when not.  Agrees with
    the reference to 1e-9 on objectives (bit-exact on battery
    trajectories) and is the right default for large campaigns: ~10x on
    raw solves, >3x on closed-loop scans even without Numba.
``float32``
    Single-precision variants of the same kernels, SIMD-friendly and
    half the memory traffic; agreement loosens to 1e-4.  Use for
    exploratory sweeps where throughput beats the last digits.

Cached results never cross backends (the backend participates in the
engine and cache keys), so mixing backends against one service is safe.

Run with:  python examples/service_demo.py [--requests N] [--window-ms W]
           [--workers N] [--backend numpy|compiled|float32]
           [--campaign] [--binary] [--campaign-workers N]
           [--shared-memory auto|on|off] [--durable]
"""

from __future__ import annotations

import argparse
import os
import signal
import sqlite3
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.analysis import format_table
from repro.core.kernels import BACKENDS
from repro.service import AllocationRequest, AllocationService, CampaignRequest
from repro.service.client import AllocationClient
from repro.service.server import start_in_thread


def run_remote_campaign(
    client: AllocationClient, backend: str = "numpy", binary: bool = False
) -> None:
    """Submit a 48-hour fleet study over HTTP and stream the columns back."""
    request = CampaignRequest(
        hours=48, alphas=(1.0,), baselines=("DP1",), backend=backend
    )
    submitted = client.submit_campaign(request)
    print(f"\nCampaign {submitted.campaign_id} submitted "
          f"({submitted.cells} cells); polling...")
    status = client.wait_for_campaign(submitted.campaign_id)
    fleet = client.campaign_result(submitted.campaign_id, binary=binary)
    wire = "binary columnar frames" if binary else "chunked NDJSON"
    rows = [
        [cell["policy"], cell["alpha"], cell["mean_objective"],
         cell["active_hours"], cell["recognition_rate"] * 100.0]
        for cell in fleet.cell_summaries()
    ]
    print(format_table(
        ["policy", "alpha", "mean_objective", "active_hours", "recognition_%"],
        rows,
        title=(
            f"Remote campaign {status.campaign_id}: {fleet.num_cells} cells "
            f"over {fleet.trace_hours} hours, streamed back as {wire}"
        ),
    ))
    if status.profile:
        breakdown = ", ".join(
            f"{phase} {seconds * 1000.0:.1f}ms"
            for phase, seconds in status.profile.items()
        )
        print(f"phase profile: {breakdown}")


def _start_server(state_dir: str, store: str) -> tuple:
    """One real ``repro serve --store`` subprocess; returns (proc, port)."""
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        sys.modules["repro"].__file__
    )))
    port_file = os.path.join(state_dir, f"port-{time.monotonic_ns()}")
    log_path = os.path.join(state_dir, f"serve-{time.monotonic_ns()}.log")
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    with open(log_path, "w") as log:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--port-file", port_file, "--store", store,
             "--campaign-workers", "2"],
            env=env, stdout=log, stderr=subprocess.STDOUT,
        )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        try:
            with open(port_file) as handle:
                text = handle.read().strip()
            if text:
                return proc, int(text)
        except FileNotFoundError:
            pass
        if proc.poll() is not None:
            raise RuntimeError(f"server died; see {log_path}")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("server never wrote its port file")


def _journaled_shards(store: str) -> int:
    try:
        connection = sqlite3.connect(store, timeout=1.0)
        try:
            return connection.execute(
                "SELECT COUNT(*) FROM journal WHERE kind = 'shard_done'"
            ).fetchone()[0]
        finally:
            connection.close()
    except sqlite3.Error:
        return 0


def run_durable_walkthrough() -> None:
    """SIGKILL a serving process mid-campaign and watch it recover."""
    request = CampaignRequest(
        hours=200, alphas=(0.5, 1.0), baselines=("DP1", "DP3")
    )
    with tempfile.TemporaryDirectory(prefix="service-demo-") as state_dir:
        store = os.path.join(state_dir, "jobs.db")

        print("\n--- kill-and-recover walkthrough "
              f"({request.num_cells} cells, {request.hours} hours) ---")
        proc, port = _start_server(state_dir, store)
        client = AllocationClient(port=port, timeout_s=120.0)
        submitted = client.submit_campaign(
            request, idempotency_key="demo-durable-1"
        )
        print(f"submitted {submitted.campaign_id} "
              f"(status {submitted.status}, journaled before the ack)")

        # Let the journal accumulate at least one finished shard, then
        # SIGKILL: no shutdown hooks, no flush, nothing graceful.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and _journaled_shards(store) < 1:
            time.sleep(0.02)
        shards = _journaled_shards(store)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=15)
        print(f"SIGKILLed the server with {shards} shard record(s) "
              "in the write-ahead journal")

        proc, port = _start_server(state_dir, store)
        try:
            client = AllocationClient(port=port, timeout_s=120.0)
            # Persist-then-ack means the id survives; replaying the
            # idempotency key finds the original job, not a duplicate.
            replay = client.submit_campaign(
                request, idempotency_key="demo-durable-1"
            )
            assert replay.campaign_id == submitted.campaign_id
            print(f"restarted on the same --store: {replay.campaign_id} "
                  f"is {replay.status} (idempotent replay, no duplicate run)")
            status = client.wait_for_campaign(replay.campaign_id)
            fleet = client.campaign_result(replay.campaign_id)
            total = _journaled_shards(store)
            print(f"recovered to {status.status}: re-ran only the missing "
                  f"shards ({total} journal records total), "
                  f"{fleet.num_cells} cells stream back bit-exact")
        finally:
            proc.terminate()
            proc.wait(timeout=15)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=64,
                        help="size of the concurrent request burst")
    parser.add_argument("--window-ms", type=float, default=2.0,
                        help="micro-batching window in milliseconds")
    parser.add_argument("--alphas", type=float, nargs="+", default=[1.0, 2.0],
                        help="alpha values mixed into the burst")
    parser.add_argument("--workers", type=int, default=2,
                        help="engine workers fanning batched solves "
                             "(1 solves inline on the event loop)")
    parser.add_argument("--backend", choices=BACKENDS, default="numpy",
                        help="numeric backend the service solves with "
                             "(see 'Choosing a backend' above)")
    parser.add_argument("--campaign", action="store_true",
                        help="also run a fleet campaign over HTTP and "
                             "stream its columns back")
    parser.add_argument("--binary", action="store_true",
                        help="stream the campaign columns as binary "
                             "columnar frames instead of NDJSON")
    parser.add_argument("--campaign-workers", type=int, default=1,
                        help="process workers for --campaign fleet studies "
                             "(N > 1 shards the grid and exercises the "
                             "shared-memory arena)")
    parser.add_argument("--shared-memory", choices=["auto", "on", "off"],
                        default="auto",
                        help="worker transport for sharded campaigns: auto "
                             "probes /dev/shm, on requires the zero-copy "
                             "arena, off forces pickle")
    parser.add_argument("--durable", action="store_true",
                        help="also run the kill-and-recover walkthrough: "
                             "SIGKILL a --store server mid-campaign and "
                             "watch the restart finish the job")
    args = parser.parse_args()

    service = AllocationService(
        window_s=args.window_ms / 1000.0, workers=args.workers,
        campaign_workers=args.campaign_workers,
        default_backend=args.backend,
        shared_memory={"auto": None, "on": True, "off": False}[
            args.shared_memory
        ],
    )
    with start_in_thread(service) as server:
        print(f"Allocation service listening on {server.base_url}")
        client = AllocationClient(port=server.port)

        budgets = np.linspace(0.2, 9.9, args.requests)
        burst = [
            AllocationRequest(energy_budget_j=float(budget), alpha=alpha)
            for index, budget in enumerate(budgets)
            for alpha in (args.alphas[index % len(args.alphas)],)
        ]

        # Wave 1: all cache misses; the server coalesces the burst.
        first = client.allocate_batch(burst)
        # Wave 2: identical questions; all answers come from the cache.
        second = client.allocate_batch(burst)

        rows = []
        for request, early, late in zip(burst[:8], first[:8], second[:8]):
            rows.append([
                request.energy_budget_j,
                request.alpha,
                early.objective,
                early.batch_size,
                "yes" if late.cache_hit else "no",
            ])
        print()
        print(format_table(
            ["budget_J", "alpha", "objective", "batch_size", "repeat_cached"],
            rows,
            title=f"First {len(rows)} of {len(burst)} served allocations",
        ))

        stats = client.stats()
        cache, batcher, latency = (
            stats["cache"], stats["batcher"], stats["latency"],
        )
        print()
        print(
            f"cache: {cache['hits']} hits / {cache['lookups']} lookups "
            f"(hit rate {cache['hit_rate']:.0%}), "
            f"{cache['entries']} entries"
        )
        print(
            f"batcher: {batcher['requests']} solves in {batcher['batches']} "
            f"batches (largest {batcher['largest_batch']}, "
            f"mean {batcher['mean_batch_size']:.1f} per dispatch)"
        )
        print(
            f"latency: mean {latency['mean_ms']:.2f} ms, "
            f"max {latency['max_ms']:.2f} ms per served solve"
        )

        pool = stats["pool"]
        print(
            f"pool: {pool['workers']} engine worker(s), {pool['tasks']} "
            f"solve tasks, {pool['busy_ms']:.2f} ms busy across "
            f"{len(pool['per_worker'])} worker thread(s)"
        )

        endpoints = stats["endpoints"]
        print("per-endpoint latency (log-bucketed histograms):")
        for endpoint, histogram in endpoints.items():
            print(
                f"  {endpoint}: {histogram['count']} requests, "
                f"p50 {histogram['p50_ms']:.2f} ms / "
                f"p95 {histogram['p95_ms']:.2f} ms / "
                f"p99 {histogram['p99_ms']:.2f} ms"
            )

        cached = sum(1 for response in second if response.cache_hit)
        print(
            f"\nRepeat wave: {cached}/{len(second)} answers served from the "
            "LRU cache without touching the engine"
        )

        # --- Observing the service: follow one trace, scrape /metrics ---
        traced = AllocationClient(port=server.port)
        traced.allocate(
            AllocationRequest(energy_budget_j=11.313, alpha=1.0)
        )
        spans = traced.trace(traced.last_trace_id)["spans"]
        print(f"\nTrace {traced.last_trace_id} ({len(spans)} spans):")
        for span in spans:
            parent = span.get("parent_span_id") or "-"
            print(
                f"  {span['name']:<16} span={span['span_id']} "
                f"parent={parent} {span['duration_ms']:.2f} ms"
            )

        metrics_lines = [
            line
            for line in client.metrics_text().splitlines()
            if line.startswith(
                ("repro_requests_total", "repro_slo_burn_rate",
                 "repro_cache_lookups_total")
            )
        ]
        print("\nGET /metrics (headline series):")
        for line in metrics_lines:
            print(f"  {line}")

        slo = client.stats()["slo"]
        for key, objective in sorted(slo["objectives"].items()):
            if not objective["total"]:
                continue
            print(
                f"SLO {key}: {objective['good']}/{objective['total']} under "
                f"{objective['threshold_ms']:g} ms, burn 5m "
                f"{objective['burn_rate_5m']:.2f} / 1h "
                f"{objective['burn_rate_1h']:.2f}"
            )

        if args.campaign:
            run_remote_campaign(client, backend=args.backend,
                                binary=args.binary)

    if args.durable:
        run_durable_walkthrough()


if __name__ == "__main__":
    main()
