"""Allocation service demo: concurrent REAP solving over HTTP.

Serving allocations
-------------------
The paper frames REAP as a runtime service devices consult for their next
energy-optimal hour; :mod:`repro.service` is that service.  This demo boots
the stdlib JSON-over-HTTP server on an ephemeral port (the same thing
``python -m repro serve`` runs), then plays a device fleet against it:

1. a **burst** of concurrent allocation requests with distinct budgets --
   the micro-batcher coalesces them into a handful of vectorized
   :class:`~repro.core.batch.BatchAllocator` solves instead of one scalar
   LP per request;
2. a **repeat wave** re-asking the same questions -- every answer now comes
   straight from the LRU result cache (the canonical problem encoding is
   permutation-invariant, so equivalent requests share entries);
3. a ``GET /stats`` call showing the cache hit rate, how many batches the
   coalescer dispatched, and the solve latency profile.

Run with:  python examples/service_demo.py [--requests N] [--window-ms W]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import format_table
from repro.service import AllocationRequest, AllocationService
from repro.service.client import AllocationClient
from repro.service.server import start_in_thread


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=64,
                        help="size of the concurrent request burst")
    parser.add_argument("--window-ms", type=float, default=2.0,
                        help="micro-batching window in milliseconds")
    parser.add_argument("--alphas", type=float, nargs="+", default=[1.0, 2.0],
                        help="alpha values mixed into the burst")
    args = parser.parse_args()

    service = AllocationService(window_s=args.window_ms / 1000.0)
    with start_in_thread(service) as server:
        print(f"Allocation service listening on {server.base_url}")
        client = AllocationClient(port=server.port)

        budgets = np.linspace(0.2, 9.9, args.requests)
        burst = [
            AllocationRequest(energy_budget_j=float(budget), alpha=alpha)
            for index, budget in enumerate(budgets)
            for alpha in (args.alphas[index % len(args.alphas)],)
        ]

        # Wave 1: all cache misses; the server coalesces the burst.
        first = client.allocate_batch(burst)
        # Wave 2: identical questions; all answers come from the cache.
        second = client.allocate_batch(burst)

        rows = []
        for request, early, late in zip(burst[:8], first[:8], second[:8]):
            rows.append([
                request.energy_budget_j,
                request.alpha,
                early.objective,
                early.batch_size,
                "yes" if late.cache_hit else "no",
            ])
        print()
        print(format_table(
            ["budget_J", "alpha", "objective", "batch_size", "repeat_cached"],
            rows,
            title=f"First {len(rows)} of {len(burst)} served allocations",
        ))

        stats = client.stats()
        cache, batcher, latency = (
            stats["cache"], stats["batcher"], stats["latency"],
        )
        print()
        print(
            f"cache: {cache['hits']} hits / {cache['lookups']} lookups "
            f"(hit rate {cache['hit_rate']:.0%}), "
            f"{cache['entries']} entries"
        )
        print(
            f"batcher: {batcher['requests']} solves in {batcher['batches']} "
            f"batches (largest {batcher['largest_batch']}, "
            f"mean {batcher['mean_batch_size']:.1f} per dispatch)"
        )
        print(
            f"latency: mean {latency['mean_ms']:.2f} ms, "
            f"max {latency['max_ms']:.2f} ms per served solve"
        )

        cached = sum(1 for response in second if response.cache_hit)
        print(
            f"\nRepeat wave: {cached}/{len(second)} answers served from the "
            "LRU cache without touching the engine"
        )


if __name__ == "__main__":
    main()
