"""HAR design-space exploration: from raw sensor data to Pareto design points.

Reproduces the Section 4 workflow end to end on the synthetic user study:

1. synthesise a multi-user labelled dataset of accelerometer + stretch
   windows,
2. characterise the five Table 2 design-point configurations -- train the
   classifier of each, measure its test accuracy and model its energy,
3. filter the Pareto-optimal points, and
4. hand them to the REAP runtime for an example allocation.

A reduced dataset (1000 windows) keeps the runtime around a minute; pass a
larger ``--windows`` for a study-sized run (3553 windows, 14 users).

Run with:  python examples/har_design_space.py [--windows N] [--all-24]
"""

from __future__ import annotations

import argparse

from repro import ReapController
from repro.analysis import format_table
from repro.har import DesignSpaceExplorer, generate_study_dataset, pareto_design_points
from repro.har.classifier.train import TrainingConfig
from repro.har.design_space import DESIGN_SPACE_SPECS, table2_specs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--windows", type=int, default=1000,
                        help="number of labelled windows to synthesise")
    parser.add_argument("--users", type=int, default=14,
                        help="number of synthetic users")
    parser.add_argument("--all-24", action="store_true",
                        help="characterise the full 24-point design space")
    parser.add_argument("--seed", type=int, default=2019)
    args = parser.parse_args()

    print(f"Synthesising a {args.users}-user study with {args.windows} windows ...")
    dataset = generate_study_dataset(
        num_users=args.users, num_windows=args.windows, seed=args.seed
    )
    distribution = {a.label: count for a, count in dataset.class_distribution().items()}
    print(f"  class distribution: {distribution}")

    specs = DESIGN_SPACE_SPECS if args.all_24 else table2_specs()
    print(f"Characterising {len(specs)} design points (training one classifier each) ...")
    explorer = DesignSpaceExplorer(
        dataset, training_config=TrainingConfig(max_epochs=80, patience=15)
    )
    characterized = explorer.characterize_all(specs)

    rows = [
        [
            item.name,
            item.test_accuracy * 100.0,
            item.characterization.execution.total_ms,
            item.characterization.total_energy_mj,
            item.characterization.average_power_mw,
            item.config.describe(),
        ]
        for item in characterized
    ]
    print(format_table(
        ["DP", "accuracy %", "exec ms", "energy mJ", "power mW", "configuration"],
        rows,
        title="Characterised design points",
    ))

    design_points = [item.to_design_point() for item in characterized]
    front = pareto_design_points(design_points, max_points=5)
    print(f"\nPareto-optimal subset: {[dp.name for dp in front]}")

    controller = ReapController(front, alpha=1.0)
    for budget in (2.0, 5.0, 8.0):
        allocation = controller.allocate(budget)
        mix = {k: round(v / 60, 1) for k, v in allocation.as_dict().items() if v > 1}
        print(
            f"  budget {budget:.0f} J -> expected accuracy "
            f"{allocation.expected_accuracy:.1%}, active "
            f"{allocation.active_time_s / 60:.0f} min, mix (min) {mix}"
        )


if __name__ == "__main__":
    main()
