"""Closed-loop operation: forecast the harvest, plan budgets over a horizon.

The paper assumes the energy budget of each activity period is handed to
REAP by an energy-allocation layer.  This example builds that layer with
the :mod:`repro.planning` subsystem for a three-day scenario:

1. a synthetic solar trace is turned into per-hour harvested energy,
2. forecast providers predict the coming hours (a perfect oracle, a
   yesterday-equals-today persistence model and a noisy oracle),
3. horizon planners turn each lookahead window plus the battery state into
   the hour's budget -- the closed-form horizon-average allocator and the
   receding-horizon MPC planner that re-solves the REAP LP over the whole
   window in one broadcast ``solve_arrays`` call per step,
4. REAP turns every budget into a design-point schedule while the battery
   absorbs the difference between the forecast and reality.

All planning policies and the harvest-following REAP baseline run through
one vectorized :class:`~repro.simulation.fleet.FleetCampaign`, so the
whole comparison is a single lockstep scan.  The same policies work with
``repro plan``, ``repro fleet --planners`` and the allocation service's
campaign endpoints.

Run with:  python examples/closed_loop_forecasting.py [--hours 72]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import table2_design_points
from repro.analysis import format_table
from repro.harvesting import HarvestScenario, SyntheticSolarModel
from repro.harvesting.traces import SolarTrace
from repro.planning import PersistenceForecast
from repro.simulation.fleet import CampaignConfig, FleetCampaign
from repro.simulation.policies import PlanningPolicy, ReapPolicy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=int, default=72,
                        help="length of the study (default: three days)")
    parser.add_argument("--horizon", type=int, default=24,
                        help="planning lookahead in hours")
    args = parser.parse_args()

    points = table2_design_points()
    scenario = HarvestScenario()
    trace = SyntheticSolarModel(seed=21).generate_month(9)
    trace = SolarTrace(trace.hours[: args.hours], name=trace.name)

    policies = [
        PlanningPolicy(points, planner="horizon",
                       horizon_periods=args.horizon, forecast="perfect"),
        PlanningPolicy(points, planner="horizon",
                       horizon_periods=args.horizon, forecast="persistence"),
        PlanningPolicy(points, planner="mpc",
                       horizon_periods=args.horizon, forecast="persistence"),
        PlanningPolicy(points, planner="mpc",
                       horizon_periods=args.horizon, forecast="noisy",
                       forecast_noise=0.3),
        ReapPolicy(points),  # harvest-following baseline
    ]
    config = CampaignConfig(use_battery=True, battery_capacity_j=120.0,
                            battery_initial_j=40.0)
    result = FleetCampaign(scenario, config).run(policies, trace)

    rows = []
    for cell in result.cell_summaries():
        rows.append([
            cell["policy"],
            cell["mean_expected_accuracy"] * 100.0,
            cell["active_hours"],
            cell["energy_j"],
            cell["recognition_rate"] * 100.0,
            cell["final_battery_j"],
        ])
    print(format_table(
        ["policy", "expected acc %", "active h", "energy J",
         "recognition %", "final battery J"],
        rows,
        title=(
            f"Closed-loop REAP with harvest forecasting and a battery "
            f"({len(trace)} hours, {args.horizon}-hour lookahead)"
        ),
    ))

    # How wrong was the persistence forecaster hour by hour?
    harvest = scenario.budget_array(trace)
    matrix = PersistenceForecast().matrix(harvest, horizon=1)
    errors = matrix[:, 0] - harvest
    print(
        f"\nPersistence forecast error over {len(trace)} hours: "
        f"MAE {np.mean(np.abs(errors)):.2f} J, bias {np.mean(errors):+.2f} J."
    )

    best = max(result.cell_summaries(), key=lambda c: c["mean_objective"])
    baseline = result.results()["REAP"]
    print(
        f"{len(trace)}-hour summary: best policy {best['policy']} at mean "
        f"objective {best['mean_objective']:.3f} vs harvest-following REAP "
        f"at {baseline.mean_objective:.3f}."
    )


if __name__ == "__main__":
    main()
