"""Closed-loop operation: forecast the harvest, budget through a battery.

The paper assumes the energy budget of each activity period is handed to
REAP by an energy-allocation layer.  This example builds that layer end to
end for a three-day scenario:

1. a synthetic solar trace is turned into per-hour harvested energy,
2. an EWMA forecaster predicts the coming day's harvest from what it has
   seen so far,
3. a horizon allocator spreads the predicted energy (plus a battery reserve)
   over the next 24 hours, so the device keeps monitoring at night,
4. REAP turns each hourly budget into a design-point schedule, and the
   battery absorbs the difference between the forecast and reality.

It also prints the marginal value of energy for a few representative hours --
the LP sensitivity that tells the allocation layer which hours are starved.

Run with:  python examples/closed_loop_forecasting.py
"""

from __future__ import annotations

from repro import ReapController, ReapProblem, table2_design_points
from repro.analysis import format_table
from repro.core.sensitivity import energy_starvation_level, marginal_value_of_energy
from repro.energy.battery import Battery
from repro.energy.budget import HorizonAverageAllocator
from repro.harvesting import EwmaForecaster, HarvestScenario, SyntheticSolarModel


def main() -> None:
    design_points = table2_design_points()
    scenario = HarvestScenario()
    trace = SyntheticSolarModel(seed=21).generate_days(first_day_of_year=244, num_days=3)
    harvests = scenario.budgets_from_trace(trace)

    battery = Battery(capacity_j=120.0, initial_charge_j=40.0,
                      charge_efficiency=0.9, discharge_efficiency=0.95)
    allocator = HorizonAverageAllocator(battery, horizon_periods=24)
    forecaster = EwmaForecaster(periods_per_day=24, smoothing=0.4)
    controller = ReapController(design_points, alpha=1.0)

    rows = []
    for day in range(3):
        day_slice = slice(day * 24, (day + 1) * 24)
        day_harvest = harvests[day_slice]
        forecast = forecaster.forecast(24)
        budgets = allocator.allocate(forecast)

        for hour, (harvest, budget) in enumerate(zip(day_harvest, budgets)):
            allocation = controller.allocate(budget)
            consumed = min(allocation.energy_j, budget)
            # Settle against the battery: bank surplus harvest, cover deficits.
            if harvest >= consumed:
                battery.charge(harvest - consumed)
            else:
                battery.discharge(consumed - harvest)
            forecaster.observe(harvest)

            if hour in (3, 9, 12, 15, 21):
                problem = ReapProblem(tuple(design_points), energy_budget_j=budget)
                rows.append(
                    [
                        f"d{day}h{hour:02d}",
                        harvest,
                        budget,
                        allocation.expected_accuracy * 100.0,
                        allocation.active_time_s / 60.0,
                        battery.state_of_charge * 100.0,
                        energy_starvation_level(problem),
                        marginal_value_of_energy(problem),
                    ]
                )

    print(format_table(
        ["hour", "harvest J", "budget J", "expected acc %", "active min",
         "battery %", "regime", "dJ/dE (1/J)"],
        rows,
        title="Closed-loop REAP with harvest forecasting and a battery",
    ))

    accuracies = [d.allocation.expected_accuracy for d in controller.decisions]
    active_hours = sum(d.allocation.active_time_s for d in controller.decisions) / 3600.0
    print(
        f"\nThree-day summary: mean expected accuracy {sum(accuracies) / len(accuracies):.1%}, "
        f"active {active_hours:.1f} h of {len(accuracies)} h, "
        f"final battery charge {battery.charge_j:.1f} J."
    )


if __name__ == "__main__":
    main()
