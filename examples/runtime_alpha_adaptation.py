"""Runtime adaptation of the accuracy/active-time preference.

Section 3.3 points out that the importance of accuracy versus active time
(the alpha knob) "may change due to user preferences".  This example plays
out such a day: the wearer starts in an endurance-oriented mode (alpha = 0.5,
keep monitoring as long as possible), switches to a clinician-requested
high-fidelity mode at midday (alpha = 4, favour the accurate design points)
and returns to the balanced default in the evening.

Because REAP re-solves a tiny LP every hour, changing alpha is a one-line
runtime operation on the controller -- no redeployment of the classifier or
the schedule table is needed.

Run with:  python examples/runtime_alpha_adaptation.py
"""

from __future__ import annotations

from repro import ReapController, table2_design_points
from repro.analysis import format_table
from repro.harvesting import HarvestScenario, SyntheticSolarModel


#: (first hour, alpha) schedule of user preferences over the day.
PREFERENCE_SCHEDULE = [
    (0, 0.5),   # overnight / morning: maximise wear time
    (11, 4.0),  # midday: clinician wants high-confidence labels
    (18, 1.0),  # evening: back to balanced expected accuracy
]


def alpha_for_hour(hour: int) -> float:
    """Look up the preference in force at a given hour of the day."""
    current = PREFERENCE_SCHEDULE[0][1]
    for first_hour, alpha in PREFERENCE_SCHEDULE:
        if hour >= first_hour:
            current = alpha
    return current


def main() -> None:
    design_points = table2_design_points()
    controller = ReapController(design_points, alpha=PREFERENCE_SCHEDULE[0][1])

    # One summer day of harvested budgets.
    trace = SyntheticSolarModel(seed=7).generate_days(first_day_of_year=172, num_days=1)
    scenario = HarvestScenario()
    budgets = scenario.budgets_from_trace(trace)

    rows = []
    for hour, budget in enumerate(budgets):
        alpha = alpha_for_hour(hour)
        if alpha != controller.alpha:
            controller.set_alpha(alpha)
        allocation = controller.allocate(budget)
        mix = {k: round(v / 60) for k, v in allocation.as_dict().items() if v > 1}
        rows.append(
            [
                hour,
                alpha,
                budget,
                allocation.expected_accuracy * 100.0,
                allocation.active_time_s / 60.0,
                str(mix) if mix else "(off)",
            ]
        )
    print(format_table(
        ["hour", "alpha", "budget J", "expected acc %", "active min", "mix (min per DP)"],
        rows,
        title="One day with runtime preference changes",
    ))

    accuracies = [decision.allocation.expected_accuracy for decision in controller.decisions]
    active = [decision.allocation.active_time_s for decision in controller.decisions]
    print(
        f"\nDay summary: mean expected accuracy {sum(accuracies) / len(accuracies):.1%}, "
        f"total active time {sum(active) / 3600:.1f} h out of {len(budgets)} h."
    )


if __name__ == "__main__":
    main()
