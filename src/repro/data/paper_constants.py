"""Scalar constants quoted in the REAP paper.

Every constant carries the section or figure of the paper it comes from so
that the calibration targets are traceable.  Units are part of each name
(``_S`` seconds, ``_J`` joules, ``_MJ`` millijoules, ``_W`` watts, ``_MW``
milliwatts, ``_HZ`` hertz).
"""

from __future__ import annotations

from dataclasses import dataclass

# --- Section 3.1: activity period ------------------------------------------
#: Length of one activity period TP over which the energy budget is granted
#: and the optimisation is re-run (Section 3.1: "set to one hour").
ACTIVITY_PERIOD_S: float = 3600.0

# --- Section 4.2 / Table 2: HAR application timing --------------------------
#: Length of one activity window processed by the HAR pipeline (Section 4.2,
#: DP1 description: "the entire activity window of 1.6 s").
ACTIVITY_WINDOW_S: float = 1.6

#: Motion/stretch sensor sampling rate (Section 5.1: "Sensors are sampled at
#: 100 Hz").
SENSOR_SAMPLING_HZ: float = 100.0

#: MCU clock frequency (Section 5.1: "the MCU runs at 47 MHz").
MCU_FREQUENCY_HZ: float = 47.0e6

# --- Section 5.2: energy budget extremes ------------------------------------
#: Minimum energy needed per hour just to keep the harvesting and monitoring
#: circuitry powered (Section 5.2: "the minimum energy required ... is
#: 0.18 J").
MIN_OFF_ENERGY_J: float = 0.18

#: Off-state power implied by the 0.18 J per hour floor.
OFF_STATE_POWER_W: float = MIN_OFF_ENERGY_J / ACTIVITY_PERIOD_S

#: Energy sufficient to run DP1 for the entire hour (Section 5.2 and
#: Figure 4: "Total energy consumption is 9.9 J").
DP1_FULL_HOUR_ENERGY_J: float = 9.9

# --- Section 4.1 / 4.2: data set size ----------------------------------------
#: Number of user subjects in the accuracy study (Section 1 / 4.2).
NUM_USERS: int = 14

#: Total number of labelled activity windows collected (Section 1 / 4.2).
NUM_ACTIVITY_WINDOWS: int = 3553

#: Number of design points implemented on the prototype (Section 4.2).
NUM_DESIGN_POINTS_TOTAL: int = 24

#: Number of Pareto-optimal design points selected for runtime use.
NUM_PARETO_DESIGN_POINTS: int = 5

# --- Section 4.2: offloading comparison --------------------------------------
#: Energy per activity for streaming raw sensor data to a host over BLE.
BLE_RAW_OFFLOAD_ENERGY_MJ: float = 5.5

#: Energy per activity for transmitting only the recognised activity label.
BLE_LABEL_TX_ENERGY_MJ: float = 0.38

# --- Section 1 / 5: headline claims -------------------------------------------
#: "46% higher expected accuracy ... compared to the highest performance DP".
HEADLINE_ACCURACY_GAIN: float = 0.46

#: "66% longer active time compared to the highest performance DP".
HEADLINE_ACTIVE_TIME_GAIN: float = 0.66


@dataclass(frozen=True)
class PaperClaims:
    """Bundle of quantitative claims used by the headline-claims benchmark.

    Attributes mirror the statements made in Sections 1, 5.2 and 5.3 of the
    paper.  ``region1_active_time_gain_vs_dp1`` refers to the "2.3x larger
    active time compared to DP1" annotation of Figure 5(b);
    ``dp4_share_at_5j`` / ``dp5_share_at_5j`` refer to the "REAP utilizes DP4
    42% of the time and DP5 for 58% of the time" example at a 5 J budget.
    """

    accuracy_gain_vs_dp1: float = HEADLINE_ACCURACY_GAIN
    active_time_gain_vs_dp1: float = HEADLINE_ACTIVE_TIME_GAIN
    region1_active_time_gain_vs_dp1: float = 2.3
    dp4_share_at_5j: float = 0.42
    dp5_share_at_5j: float = 0.58
    dp5_full_hour_budget_j: float = 4.3
    dp1_full_hour_budget_j: float = DP1_FULL_HOUR_ENERGY_J
    accuracy_gain_vs_low_power_min: float = 0.22
    accuracy_gain_vs_low_power_max: float = 0.29


__all__ = [
    "ACTIVITY_PERIOD_S",
    "ACTIVITY_WINDOW_S",
    "BLE_LABEL_TX_ENERGY_MJ",
    "BLE_RAW_OFFLOAD_ENERGY_MJ",
    "DP1_FULL_HOUR_ENERGY_J",
    "HEADLINE_ACCURACY_GAIN",
    "HEADLINE_ACTIVE_TIME_GAIN",
    "MCU_FREQUENCY_HZ",
    "MIN_OFF_ENERGY_J",
    "NUM_ACTIVITY_WINDOWS",
    "NUM_DESIGN_POINTS_TOTAL",
    "NUM_PARETO_DESIGN_POINTS",
    "NUM_USERS",
    "OFF_STATE_POWER_W",
    "SENSOR_SAMPLING_HZ",
    "PaperClaims",
]
