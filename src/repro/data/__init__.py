"""Published constants from the REAP paper (DAC 2019).

This subpackage is the single source of truth for every number quoted in the
paper that the reproduction either calibrates against or reports in the
"paper" column of ``EXPERIMENTS.md``:

* :mod:`repro.data.paper_constants` -- scalar constants (activity period,
  off-state power, budget extremes, headline claims, ...).
* :mod:`repro.data.table2` -- the per-design-point characterisation of the
  five Pareto-optimal design points (Table 2 of the paper).

Nothing in here performs computation beyond trivial derivations (for example
converting mW to W); the goal is to keep the paper's numbers in one place so
that the rest of the code base never hard-codes them.
"""

from repro.data.paper_constants import (
    ACTIVITY_PERIOD_S,
    ACTIVITY_WINDOW_S,
    BLE_LABEL_TX_ENERGY_MJ,
    BLE_RAW_OFFLOAD_ENERGY_MJ,
    DP1_FULL_HOUR_ENERGY_J,
    HEADLINE_ACCURACY_GAIN,
    HEADLINE_ACTIVE_TIME_GAIN,
    MCU_FREQUENCY_HZ,
    MIN_OFF_ENERGY_J,
    NUM_ACTIVITY_WINDOWS,
    NUM_DESIGN_POINTS_TOTAL,
    NUM_PARETO_DESIGN_POINTS,
    NUM_USERS,
    OFF_STATE_POWER_W,
    SENSOR_SAMPLING_HZ,
    PaperClaims,
)
from repro.data.table2 import (
    TABLE2_DESIGN_POINTS,
    Table2Row,
    table2_design_points,
    table2_rows,
)

__all__ = [
    "ACTIVITY_PERIOD_S",
    "ACTIVITY_WINDOW_S",
    "BLE_LABEL_TX_ENERGY_MJ",
    "BLE_RAW_OFFLOAD_ENERGY_MJ",
    "DP1_FULL_HOUR_ENERGY_J",
    "HEADLINE_ACCURACY_GAIN",
    "HEADLINE_ACTIVE_TIME_GAIN",
    "MCU_FREQUENCY_HZ",
    "MIN_OFF_ENERGY_J",
    "NUM_ACTIVITY_WINDOWS",
    "NUM_DESIGN_POINTS_TOTAL",
    "NUM_PARETO_DESIGN_POINTS",
    "NUM_USERS",
    "OFF_STATE_POWER_W",
    "SENSOR_SAMPLING_HZ",
    "PaperClaims",
    "TABLE2_DESIGN_POINTS",
    "Table2Row",
    "table2_design_points",
    "table2_rows",
]
