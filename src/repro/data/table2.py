"""Table 2 of the REAP paper: the five Pareto-optimal HAR design points.

The table reports, for each design point, the recognition accuracy measured
over the 14-user study, the per-activity MCU execution-time breakdown, the
MCU and sensor energy per activity, and the resulting average power.

These numbers serve two purposes in the reproduction:

1. They calibrate the analytical energy model in :mod:`repro.energy` so that
   the design points characterised on our synthetic substrate land close to
   the published operating points.
2. They provide the "paper" reference values used by the benchmarks and by
   ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.design_point import DesignPoint, EnergyBreakdown, ExecutionBreakdown
from repro.data.paper_constants import ACTIVITY_WINDOW_S


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 (values exactly as printed in the paper)."""

    dp_number: int
    features: str
    accuracy_percent: float
    accel_features_ms: float
    stretch_features_ms: float
    classifier_ms: float
    total_exec_ms: float
    mcu_energy_mj: float
    sensor_energy_mj: float
    energy_mj: float
    power_mw: float

    @property
    def name(self) -> str:
        """Design point name, e.g. ``"DP1"``."""
        return f"DP{self.dp_number}"

    def to_design_point(self) -> DesignPoint:
        """Convert this row into a :class:`~repro.core.design_point.DesignPoint`."""
        execution = ExecutionBreakdown(
            accel_features_ms=self.accel_features_ms,
            stretch_features_ms=self.stretch_features_ms,
            classifier_ms=self.classifier_ms,
        )
        # The published Energy (mJ) column is MCU + sensor energy; BLE
        # transmission of the label is folded into the MCU figure.
        energy = EnergyBreakdown(
            mcu_mj=self.mcu_energy_mj,
            sensor_mj=self.sensor_energy_mj,
            communication_mj=0.0,
        )
        return DesignPoint(
            name=self.name,
            accuracy=self.accuracy_percent / 100.0,
            power_w=self.power_mw * 1e-3,
            energy_per_activity_j=self.energy_mj * 1e-3,
            activity_period_s=ACTIVITY_WINDOW_S,
            description=self.features,
            execution=execution,
            energy_breakdown=energy,
            metadata={"source": "table2", "dp_number": self.dp_number},
        )


#: The five rows of Table 2, transcribed verbatim from the paper.
TABLE2_ROWS: Tuple[Table2Row, ...] = (
    Table2Row(
        dp_number=1,
        features="Statistical acceleration, 16-FFT stretch",
        accuracy_percent=94.0,
        accel_features_ms=0.83,
        stretch_features_ms=3.83,
        classifier_ms=1.05,
        total_exec_ms=5.71,
        mcu_energy_mj=2.38,
        sensor_energy_mj=2.10,
        energy_mj=4.48,
        power_mw=2.76,
    ),
    Table2Row(
        dp_number=2,
        features="Statistical y-axis accel., 16-FFT stretch",
        accuracy_percent=93.0,
        accel_features_ms=0.27,
        stretch_features_ms=3.83,
        classifier_ms=1.00,
        total_exec_ms=5.10,
        mcu_energy_mj=2.29,
        sensor_energy_mj=1.43,
        energy_mj=3.72,
        power_mw=2.30,
    ),
    Table2Row(
        dp_number=3,
        features="Statistical x- and y-axis accel. (0.8 s), 16-FFT stretch",
        accuracy_percent=92.0,
        accel_features_ms=0.27,
        stretch_features_ms=3.83,
        classifier_ms=0.90,
        total_exec_ms=5.00,
        mcu_energy_mj=2.10,
        sensor_energy_mj=0.84,
        energy_mj=2.94,
        power_mw=1.82,
    ),
    Table2Row(
        dp_number=4,
        features="Statistical y-axis accel. (0.6 s), 16-FFT stretch",
        accuracy_percent=90.0,
        accel_features_ms=0.14,
        stretch_features_ms=3.83,
        classifier_ms=1.00,
        total_exec_ms=4.97,
        mcu_energy_mj=2.09,
        sensor_energy_mj=0.57,
        energy_mj=2.66,
        power_mw=1.64,
    ),
    Table2Row(
        dp_number=5,
        features="16-FFT stretch",
        accuracy_percent=76.0,
        accel_features_ms=0.00,
        stretch_features_ms=3.83,
        classifier_ms=0.88,
        total_exec_ms=4.71,
        mcu_energy_mj=1.85,
        sensor_energy_mj=0.08,
        energy_mj=1.93,
        power_mw=1.20,
    ),
)


def table2_rows() -> List[Table2Row]:
    """Return the Table 2 rows as a new list."""
    return list(TABLE2_ROWS)


def table2_design_points() -> List[DesignPoint]:
    """Return the five published Pareto-optimal design points DP1..DP5."""
    return [row.to_design_point() for row in TABLE2_ROWS]


def table2_by_name() -> Dict[str, Table2Row]:
    """Return the Table 2 rows keyed by design point name (``"DP1"``...)."""
    return {row.name: row for row in TABLE2_ROWS}


#: Convenience constant: the published design points, ready for the optimiser.
TABLE2_DESIGN_POINTS: Tuple[DesignPoint, ...] = tuple(table2_design_points())


__all__ = [
    "TABLE2_DESIGN_POINTS",
    "TABLE2_ROWS",
    "Table2Row",
    "table2_by_name",
    "table2_design_points",
    "table2_rows",
]
