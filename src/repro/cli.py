"""Command-line interface for the REAP reproduction.

Exposes the experiment harness without writing any Python::

    python -m repro list                      # available experiments
    python -m repro run figure4               # regenerate one table/figure
    python -m repro run figure7 --csv out.csv # also write the rows as CSV
    python -m repro allocate --budget 5 --alpha 1   # solve one period
    python -m repro sweep --alpha 2 --points 30     # Figure 5/6 style sweep
    python -m repro sweep --alphas 0.5 1 2 --points 200   # batched alpha grid
    python -m repro run grid --points 200           # budget x alpha grid CSV
    python -m repro fleet --alphas 1 2 --exposures 0.032 0.05   # fleet study
    python -m repro fleet --jobs 4                  # shard the grid across processes
    python -m repro serve --port 8734               # JSON-over-HTTP allocation service

Heavyweight experiments (``table2``, ``figure3``) accept ``--windows`` to
control the size of the synthetic user study they train on.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.experiments import (
    ExperimentResult,
    run_alpha_sensitivity_experiment,
    run_budget_alpha_grid_experiment,
    run_figure3_experiment,
    run_figure4_experiment,
    run_figure5a_experiment,
    run_figure5b_experiment,
    run_figure6_experiment,
    run_figure7_experiment,
    run_fleet_campaign_experiment,
    run_headline_claims_experiment,
    run_offloading_experiment,
    run_pareto_subset_ablation,
    run_pivot_rule_ablation,
    run_plan_experiment,
    run_solver_scaling_experiment,
    run_table2_experiment,
)
from repro.analysis.reporting import format_table
from repro.analysis.sweep import EnergySweep, default_budget_grid
from repro.core.allocator import ReapAllocator
from repro.core.batch import BatchAllocator
from repro.core.kernels import BACKENDS
from repro.core.problem import ReapProblem
from repro.data.table2 import table2_design_points
from repro.har.classifier.train import TrainingConfig
from repro.planning import FORECAST_KINDS, PLANNER_KINDS


#: Registry of named experiments runnable from the command line.  Each entry
#: maps the CLI name to a callable taking the parsed arguments.
EXPERIMENTS: Dict[str, str] = {
    "table2": "Table 2: Pareto design-point characterisation (trains classifiers)",
    "figure3": "Figure 3: 24-point design-space trade-off (trains classifiers)",
    "figure4": "Figure 4: DP1 hourly energy breakdown",
    "figure5a": "Figure 5(a): expected accuracy vs allocated energy",
    "figure5b": "Figure 5(b): active time normalised to REAP",
    "figure6": "Figure 6: normalised objective at alpha=2",
    "figure7": "Figure 7: month-long solar case study",
    "grid": "Budget x alpha grid solved by the vectorized batch engine",
    "claims": "Headline claims (Sections 1 and 5.2)",
    "offloading": "Offloading comparison (Section 4.2)",
    "solver": "Solver-scaling study (Section 3.3)",
    "ablation-subsets": "Ablation: number of runtime design points",
    "ablation-pivot": "Ablation: simplex pivot rule",
    "ablation-alpha": "Ablation: alpha sensitivity of the chosen mix",
}


def _dispatch_experiment(name: str, args: argparse.Namespace) -> ExperimentResult:
    """Run the named experiment with CLI-provided sizes."""
    training = TrainingConfig(max_epochs=args.epochs, patience=max(5, args.epochs // 5))
    if name == "table2":
        return run_table2_experiment(num_windows=args.windows, training_config=training)
    if name == "figure3":
        return run_figure3_experiment(num_windows=args.windows, training_config=training)
    if name == "figure4":
        return run_figure4_experiment()
    if name == "figure5a":
        return run_figure5a_experiment(num_budgets=args.points)
    if name == "figure5b":
        return run_figure5b_experiment(num_budgets=args.points)
    if name == "figure6":
        return run_figure6_experiment(alpha=args.alpha, num_budgets=args.points)
    if name == "figure7":
        return run_figure7_experiment(month=args.month, seed=args.seed)
    if name == "grid":
        return run_budget_alpha_grid_experiment(num_budgets=args.points)
    if name == "claims":
        return run_headline_claims_experiment(num_budgets=max(args.points, 40))
    if name == "offloading":
        return run_offloading_experiment()
    if name == "solver":
        return run_solver_scaling_experiment()
    if name == "ablation-subsets":
        return run_pareto_subset_ablation(num_budgets=args.points)
    if name == "ablation-pivot":
        return run_pivot_rule_ablation(num_budgets=args.points)
    if name == "ablation-alpha":
        return run_alpha_sensitivity_experiment()
    raise KeyError(f"unknown experiment {name!r}")


#: Non-experiment commands, shown by ``repro list`` below the experiments.
COMMANDS: Dict[str, str] = {
    "allocate": "solve a single one-hour allocation",
    "sweep": "objective sweep over budgets (batch or scalar engine)",
    "fleet": "closed-loop fleet study; --planners adds forecast-driven "
             "planning policies, --jobs N shards the grid across "
             "processes, --remote HOST:PORT submits it to a service "
             "(--binary fetches compact binary columns), --backend picks "
             "the numeric kernels (numpy/compiled/float32), --profile "
             "writes per-phase timings to JSON",
    "plan": "single-device horizon study: forecast-driven planning "
            "(horizon-average or MPC) vs harvest-following REAP",
    "serve": "run the JSON-over-HTTP allocation service (micro-batching + "
             "cache + worker pool + versioned /v1 campaign endpoints); "
             "--backend sets the default numeric kernels, columns stream "
             "as NDJSON or binary (?format=binary), --slo-ms sets latency "
             "objectives (/metrics, /trace/<id>, --log-format json for "
             "traced logs), --store journals campaigns durably (restart "
             "resumes unfinished shards), --procs N shares the port "
             "across N processes via SO_REUSEPORT",
    "top": "live refreshing dashboard of a running service: per-process "
           "RPS/p95/utilization rows, cluster SLO burn gauges, active "
           "jobs with shard progress, recent lease steals (--once prints "
           "a single frame)",
}


def _command_list(_: argparse.Namespace) -> int:
    rows = [[name, description] for name, description in EXPERIMENTS.items()]
    print(format_table(["experiment", "description"], rows))
    print()
    print(format_table(
        ["command", "description"],
        [[name, description] for name, description in COMMANDS.items()],
    ))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"run 'python -m repro list' to see the options",
            file=sys.stderr,
        )
        return 2
    result = _dispatch_experiment(args.experiment, args)
    print(result.to_text())
    if args.csv:
        result.to_csv(args.csv)
        print(f"\nrows written to {args.csv}")
    return 0


def _command_allocate(args: argparse.Namespace) -> int:
    points = tuple(table2_design_points())
    problem = ReapProblem(points, energy_budget_j=args.budget, alpha=args.alpha)
    allocation = ReapAllocator().solve(problem)
    rows = [
        [dp.name, dp.accuracy_percent, dp.power_mw, allocation.time_for(dp.name) / 60.0]
        for dp in points
    ]
    rows.append(["off", "-", "-", allocation.off_time_s / 60.0])
    print(format_table(
        ["design point", "accuracy %", "power mW", "minutes"],
        rows,
        title=f"REAP allocation for {args.budget} J at alpha={args.alpha}",
    ))
    print(
        f"\nexpected accuracy {allocation.expected_accuracy:.1%}, "
        f"active time {allocation.active_time_s / 60:.1f} min, "
        f"energy {allocation.energy_j:.2f} J"
    )
    return 0


def _command_fleet_remote(args: argparse.Namespace) -> int:
    """Run the fleet study on a remote allocation service over HTTP."""
    # Imported lazily: local fleet runs never touch the service client.
    from repro.analysis.experiments import fleet_experiment_result
    from repro.service.client import AllocationClient, ServiceError
    from repro.service.requests import CampaignRequest

    host, _, port = args.remote.rpartition(":")
    try:
        port_number = int(port)
    except ValueError:
        print(
            f"--remote expects HOST:PORT, got {args.remote!r}", file=sys.stderr
        )
        return 2
    request = CampaignRequest(
        alphas=tuple(args.alphas),
        baselines=tuple(args.baselines),
        exposure_factors=tuple(args.exposures),
        month=args.month,
        seed=args.seed,
        hours=args.hours,
        use_battery=not args.open_loop,
        planners=tuple(args.planners),
        horizon_periods=args.horizon,
        forecast=args.forecast,
        forecast_noise=args.forecast_noise,
        forecast_seed=args.forecast_seed,
        backend=args.backend,
    )
    client = AllocationClient(host=host or "127.0.0.1", port=port_number)
    try:
        status, fleet_result = client.run_campaign(request, binary=args.binary)
    except (ServiceError, OSError, TimeoutError) as error:
        print(f"remote fleet campaign failed: {error}", file=sys.stderr)
        return 1
    result = fleet_experiment_result(
        fleet_result,
        name=(
            f"Fleet campaign (remote {args.remote}, campaign "
            f"{status.campaign_id}): {len(fleet_result.scenario_labels)} "
            f"scenario(s) x {fleet_result.num_policies} policies over "
            f"{fleet_result.trace_hours} hours"
        ),
        use_battery=not args.open_loop,
    )
    print(result.to_text())
    wire = "binary columnar frames" if args.binary else "chunked NDJSON"
    print(
        f"\n{fleet_result.num_cells} campaign cells simulated remotely; "
        f"columns streamed back as {wire}"
    )
    try:
        stats = client.stats()
    except (ServiceError, OSError, TimeoutError):
        stats = None
    if stats:
        cache = stats.get("cache", {})
        batcher = stats.get("batcher", {})
        pool = stats.get("pool", {})
        batches = int(batcher.get("batches", 0))
        coalescing = (
            int(batcher.get("requests", 0)) / batches if batches else 0.0
        )
        print(
            "service: cache {rate:.1f}% hit rate, batcher {co:.1f}x "
            "coalescing, pool {workers}+{cw} workers busy "
            "{busy:.0f}ms".format(
                rate=100.0 * float(cache.get("hit_rate", 0.0)),
                co=coalescing,
                workers=int(pool.get("workers", 0)),
                cw=int(pool.get("campaign_workers", 0)),
                busy=float(pool.get("busy_ms", 0.0)),
            )
        )
    if args.profile:
        _write_profile(args.profile, dict(status.profile or {}))
    if args.csv:
        result.to_csv(args.csv)
        print(f"rows written to {args.csv}")
    return 0


#: CLI spelling -> run_sharded_campaign's Optional[bool] transport switch.
_SHARED_MEMORY_MODES = {"auto": None, "on": True, "off": False}


def _write_profile(path: str, phases: Dict[str, float]) -> None:
    """Write ``repro fleet --profile`` per-phase timings as JSON."""
    import json

    payload = {
        "phases": {name: float(seconds) for name, seconds in phases.items()},
        "total_s": float(sum(phases.values())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    summary = ", ".join(
        f"{name} {seconds * 1000.0:.1f}ms" for name, seconds in phases.items()
    )
    print(f"phase profile written to {path} ({summary or 'no phases'})")


def _command_fleet(args: argparse.Namespace) -> int:
    if args.planners and args.open_loop:
        print(
            "--planners needs the closed-loop battery to plan against; "
            "drop --open-loop or the planners",
            file=sys.stderr,
        )
        return 2
    if args.remote:
        if args.jobs != 1:
            print(
                "--jobs shards a local run; the remote server picks its own "
                "worker count (drop --jobs or --remote)",
                file=sys.stderr,
            )
            return 2
        return _command_fleet_remote(args)
    if args.binary:
        print(
            "--binary picks the wire format for --remote columns; "
            "local runs never serialise (drop --binary or add --remote)",
            file=sys.stderr,
        )
        return 2
    result = run_fleet_campaign_experiment(
        alphas=args.alphas,
        baselines=args.baselines,
        exposure_factors=args.exposures,
        month=args.month,
        seed=args.seed,
        hours=args.hours,
        use_battery=not args.open_loop,
        jobs=args.jobs,
        planners=args.planners,
        horizon_periods=args.horizon,
        forecast=args.forecast,
        forecast_noise=args.forecast_noise,
        forecast_seed=args.forecast_seed,
        backend=args.backend,
        shared_memory=_SHARED_MEMORY_MODES[args.shared_memory],
    )
    print(result.to_text())
    engine = (
        f"sharded fleet engine ({args.jobs} jobs)" if args.jobs > 1
        else "fleet engine"
    )
    print(f"\n{result.extras['num_cells']} campaign cells simulated by the {engine}")
    if args.profile:
        _write_profile(
            args.profile,
            dict(result.extras["fleet_result"].phase_timings),
        )
    if args.csv:
        result.to_csv(args.csv)
        print(f"rows written to {args.csv}")
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    result = run_plan_experiment(
        planner=args.planner,
        horizon_periods=args.horizon,
        forecasts=args.forecasts,
        forecast_noise=args.forecast_noise,
        forecast_seed=args.forecast_seed,
        alpha=args.alpha,
        exposure_factor=args.exposure,
        month=args.month,
        seed=args.seed,
        hours=args.hours,
        battery_capacity_j=args.battery,
    )
    print(result.to_text())
    print(
        f"\n{result.extras['num_cells']} closed-loop cells simulated by the "
        "planning scan (last row: harvest-following REAP baseline)"
    )
    if args.csv:
        result.to_csv(args.csv)
        print(f"rows written to {args.csv}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    points = tuple(table2_design_points())
    budgets = default_budget_grid(points, num_points=args.points)
    if args.alphas and args.engine == "scalar":
        print(
            "--alphas grids are solved by the batch engine; "
            "drop --engine scalar or use a single --alpha",
            file=sys.stderr,
        )
        return 2
    if args.alphas:
        # Multi-alpha grid: one batched solve over the whole budget x alpha
        # plane, one REAP objective column per alpha.
        grid = BatchAllocator(points).solve_grid(budgets, alphas=args.alphas)
        headers = ["budget_J"] + [f"alpha_{float(a):g}" for a in grid.alphas]
        rows = [
            [float(budget)] + [float(v) for v in grid.objective[:, index]]
            for index, budget in enumerate(grid.budgets_j)
        ]
        title = f"REAP objective grid over {len(args.alphas)} alphas"
    else:
        sweep = EnergySweep(points, alpha=args.alpha, engine=args.engine)
        result = sweep.run(budgets)
        headers = ["budget_J", "REAP"] + result.static_names
        rows = []
        for index, budget in enumerate(result.budgets_j):
            row = [float(budget), result.reap.objective[index]]
            row.extend(
                result.static(name).objective[index] for name in result.static_names
            )
            rows.append(row)
        title = f"Objective J(t) sweep at alpha={args.alpha} ({args.engine} engine)"
    print(format_table(headers, rows, title=title))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="REAP (DAC 2019) reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment name (see 'list')")
    run_parser.add_argument("--csv", default=None, help="also write rows to this CSV file")
    run_parser.add_argument("--windows", type=int, default=1200,
                            help="synthetic study size for table2/figure3")
    run_parser.add_argument("--epochs", type=int, default=60,
                            help="training epochs for table2/figure3")
    run_parser.add_argument("--points", type=int, default=40,
                            help="number of budgets in sweep experiments")
    run_parser.add_argument("--alpha", type=float, default=2.0,
                            help="alpha for figure6")
    run_parser.add_argument("--month", type=int, default=9, help="month for figure7")
    run_parser.add_argument("--seed", type=int, default=2015, help="solar seed for figure7")

    allocate_parser = subparsers.add_parser(
        "allocate", help="solve a single one-hour allocation"
    )
    allocate_parser.add_argument("--budget", type=float, required=True,
                                 help="energy budget in joules")
    allocate_parser.add_argument("--alpha", type=float, default=1.0)

    sweep_parser = subparsers.add_parser("sweep", help="objective sweep over budgets")
    sweep_parser.add_argument("--alpha", type=float, default=1.0)
    sweep_parser.add_argument("--points", type=int, default=25)
    sweep_parser.add_argument(
        "--alphas", type=float, nargs="+", default=None,
        help="solve a budget x alpha grid with the batch engine "
             "(one REAP objective column per alpha; overrides --alpha, "
             "incompatible with --engine scalar)",
    )
    sweep_parser.add_argument(
        "--engine", choices=("auto", "batch", "scalar"), default="auto",
        help="sweep engine: vectorized batch (default) or the scalar reference",
    )

    fleet_parser = subparsers.add_parser(
        "fleet",
        help="closed-loop fleet study: scenarios x policies x alphas in one "
             "vectorized run",
    )
    fleet_parser.add_argument(
        "--alphas", type=float, nargs="+", default=[1.0, 2.0],
        help="alpha values; each gets a REAP policy plus the static baselines",
    )
    fleet_parser.add_argument(
        "--baselines", nargs="*", default=["DP1", "DP3", "DP5"],
        help="static design-point baselines to include",
    )
    fleet_parser.add_argument(
        "--exposures", type=float, nargs="+", default=[0.032],
        help="wearable exposure factors, one harvest scenario per value",
    )
    fleet_parser.add_argument("--month", type=int, default=9,
                              help="calendar month of the synthetic trace")
    fleet_parser.add_argument("--seed", type=int, default=2015,
                              help="solar trace seed")
    fleet_parser.add_argument(
        "--hours", type=int, default=None,
        help="truncate the trace to this many hours (default: whole month)",
    )
    fleet_parser.add_argument(
        "--open-loop", action="store_true",
        help="spend-what-you-harvest budgets instead of the battery scan",
    )
    fleet_parser.add_argument(
        "--planners", nargs="*", choices=PLANNER_KINDS, default=[],
        metavar="PLANNER",
        help="forecast-driven planning policies to add at every alpha "
             f"(closed loop only; choices: {', '.join(PLANNER_KINDS)})",
    )
    fleet_parser.add_argument(
        "--horizon", type=int, default=24,
        help="lookahead window of the planning policies, in periods",
    )
    fleet_parser.add_argument(
        "--forecast", choices=FORECAST_KINDS, default="perfect",
        help="forecast provider feeding the planning policies",
    )
    fleet_parser.add_argument(
        "--forecast-noise", type=float, default=0.2,
        help="noise scale of the noisy-oracle forecast",
    )
    fleet_parser.add_argument(
        "--forecast-seed", type=int, default=7,
        help="RNG seed of the noisy-oracle forecast",
    )
    fleet_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the campaign grid (1: in-process fleet "
             "engine; N: shard via repro.service.shard)",
    )
    fleet_parser.add_argument(
        "--shared-memory", choices=["auto", "on", "off"], default="auto",
        help="worker transport for --jobs N: auto probes /dev/shm and uses "
             "the zero-copy shared-memory arena when available, on requires "
             "it, off forces the pickle round-trip",
    )
    fleet_parser.add_argument(
        "--remote", default=None, metavar="HOST:PORT",
        help="submit the study to a running allocation service instead of "
             "simulating locally (POST /campaign; columns stream back as "
             "chunked NDJSON)",
    )
    fleet_parser.add_argument(
        "--binary", action="store_true",
        help="with --remote: fetch the columns as the compact binary "
             "columnar wire format instead of NDJSON",
    )
    fleet_parser.add_argument(
        "--backend", choices=BACKENDS, default="numpy",
        help="numeric kernels for the solves and scans: numpy (reference), "
             "compiled (Numba-jitted, graceful fallback) or float32",
    )
    fleet_parser.add_argument(
        "--profile", nargs="?", const="profile.json", default=None,
        metavar="PATH",
        help="write per-phase campaign timings (harvest, cell solve, scan "
             "settle, arena pack, merge, ...) as JSON to PATH "
             "(default: profile.json); works locally and with --remote",
    )
    fleet_parser.add_argument("--csv", default=None,
                              help="also write rows to this CSV file")

    plan_parser = subparsers.add_parser(
        "plan",
        help="single-device horizon study: forecast-driven planning vs "
             "harvest-following REAP",
    )
    plan_parser.add_argument(
        "--planner", choices=PLANNER_KINDS, default="horizon",
        help="budget planner: closed-form horizon average or receding-"
             "horizon MPC",
    )
    plan_parser.add_argument(
        "--horizon", type=int, default=24,
        help="lookahead window in periods",
    )
    plan_parser.add_argument(
        "--forecasts", nargs="+", choices=FORECAST_KINDS,
        default=list(FORECAST_KINDS),
        help="forecast providers to compare (one policy per provider)",
    )
    plan_parser.add_argument(
        "--forecast-noise", type=float, default=0.2,
        help="noise scale of the noisy-oracle forecast",
    )
    plan_parser.add_argument(
        "--forecast-seed", type=int, default=7,
        help="RNG seed of the noisy-oracle forecast",
    )
    plan_parser.add_argument("--alpha", type=float, default=1.0)
    plan_parser.add_argument(
        "--exposure", type=float, default=0.032,
        help="wearable exposure factor of the harvest scenario",
    )
    plan_parser.add_argument("--month", type=int, default=9,
                             help="calendar month of the synthetic trace")
    plan_parser.add_argument("--seed", type=int, default=2015,
                             help="solar trace seed")
    plan_parser.add_argument(
        "--hours", type=int, default=None,
        help="truncate the trace to this many hours (default: whole month)",
    )
    plan_parser.add_argument(
        "--battery", type=float, default=60.0,
        help="battery capacity in joules",
    )
    plan_parser.add_argument("--csv", default=None,
                             help="also write rows to this CSV file")

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the allocation service (JSON over HTTP, micro-batched "
             "concurrent solves, LRU result cache)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8734,
        help="TCP port (0 binds an ephemeral port; see --port-file)",
    )
    serve_parser.add_argument(
        "--port-file", default=None,
        help="write the bound port to this file once listening "
             "(for scripts using --port 0)",
    )
    serve_parser.add_argument(
        "--window-ms", type=float, default=2.0,
        help="micro-batching window: how long a request may wait to coalesce",
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=1024,
        help="flush a batch as soon as this many requests are pending",
    )
    serve_parser.add_argument(
        "--cache-size", type=int, default=4096,
        help="LRU result-cache capacity (0 disables caching)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="engine workers: 1 solves inline on the event loop, N fans "
             "batched dispatch groups across a thread pool",
    )
    serve_parser.add_argument(
        "--campaign-workers", type=int, default=None,
        help="process workers for POST /campaign fleet studies "
             "(default: --workers)",
    )
    serve_parser.add_argument(
        "--backend", choices=BACKENDS, default="numpy",
        help="default numeric kernels for requests that don't pick one: "
             "numpy (reference), compiled (Numba-jitted, graceful "
             "fallback) or float32",
    )
    serve_parser.add_argument(
        "--shared-memory", choices=["auto", "on", "off"], default="auto",
        help="worker transport for sharded POST /campaign runs: auto "
             "probes /dev/shm and uses the zero-copy shared-memory arena "
             "when available, on requires it, off forces pickle",
    )
    serve_parser.add_argument(
        "--log-format", choices=["text", "json"], default="text",
        help="request/span log lines: human-readable text or one JSON "
             "object per line (each carries the trace_id)",
    )
    serve_parser.add_argument(
        "--slo-ms", default=None, metavar="SPEC",
        help="per-endpoint latency objectives as KEY=MS pairs, e.g. "
             "'allocate=5,campaign=500'; burn rates show up in /metrics "
             "and /stats (default: allocate=25, campaign=5000)",
    )
    serve_parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="durable campaign store (SQLite journal): submissions are "
             "persisted before they are acked, and on restart unfinished "
             "campaigns resume from their last journaled shard",
    )
    serve_parser.add_argument(
        "--store-sync", choices=["normal", "full"], default="normal",
        help="store durability: normal fsyncs on WAL checkpoints "
             "(survives process kill), full fsyncs every record "
             "(survives power loss)",
    )
    serve_parser.add_argument(
        "--procs", type=int, default=1,
        help="independent server processes sharing the port via "
             "SO_REUSEPORT; above 1 requires --store (the processes "
             "coordinate only through the shared journal)",
    )

    top_parser = subparsers.add_parser(
        "top",
        help="live dashboard of a running service (cluster scope when the "
             "server has a store; falls back to the one answering process)",
    )
    top_parser.add_argument("--host", default="127.0.0.1")
    top_parser.add_argument("--port", type=int, default=8734)
    top_parser.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period in seconds",
    )
    top_parser.add_argument(
        "--once", action="store_true",
        help="print one frame and exit (no screen clearing; for scripts)",
    )

    return parser


def _command_serve(args: argparse.Namespace) -> int:
    # Imported lazily so plain experiment runs never touch the service layer.
    from repro.obs.slo import parse_slo_spec
    from repro.service.frontend import FrontendConfig, run_frontend

    slo_ms = None
    if args.slo_ms:
        try:
            slo_ms = parse_slo_spec(args.slo_ms)
        except ValueError as error:
            print(f"--slo-ms: {error}", file=sys.stderr)
            return 2
    if args.procs < 1:
        print("--procs must be at least 1", file=sys.stderr)
        return 2
    config = FrontendConfig(
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        procs=args.procs,
        store=args.store,
        store_sync=args.store_sync,
        cache_size=args.cache_size,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        workers=args.workers,
        campaign_workers=args.campaign_workers,
        backend=args.backend,
        shared_memory=_SHARED_MEMORY_MODES[args.shared_memory],
        log_format=args.log_format,
        slo_ms=dict(slo_ms) if slo_ms else None,
    )
    return run_frontend(config)


def _command_top(args: argparse.Namespace) -> int:
    # Imported lazily so plain experiment runs never touch the service layer.
    from repro.service.client import AllocationClient, ServiceError, run_top

    client = AllocationClient(host=args.host, port=args.port)
    try:
        return run_top(client, interval_s=args.interval, once=args.once)
    except (ServiceError, OSError, TimeoutError) as error:
        print(f"repro top failed: {error}", file=sys.stderr)
        return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands: Dict[str, Callable[[argparse.Namespace], int]] = {
        "list": _command_list,
        "run": _command_run,
        "allocate": _command_allocate,
        "sweep": _command_sweep,
        "fleet": _command_fleet,
        "plan": _command_plan,
        "serve": _command_serve,
        "top": _command_top,
    }
    if args.command is None:
        parser.print_help()
        return 1
    return commands[args.command](args)


__all__ = ["COMMANDS", "EXPERIMENTS", "build_parser", "main"]
