"""Metrics collected by the trace-driven device simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class PeriodOutcome:
    """What actually happened during one simulated activity period."""

    period_index: int
    energy_budget_j: float
    energy_consumed_j: float
    active_time_s: float
    off_time_s: float
    windows_total: int
    windows_observed: int
    windows_correct: float
    objective_value: float
    expected_accuracy: float
    time_by_design_point: Dict[str, float] = field(default_factory=dict)

    @property
    def observed_fraction(self) -> float:
        """Fraction of the user's activity windows the device observed."""
        if self.windows_total == 0:
            return 0.0
        return self.windows_observed / self.windows_total

    @property
    def recognition_rate(self) -> float:
        """Correctly recognised windows over *all* windows (missed count as wrong).

        This is the realised counterpart of the expected accuracy metric: an
        off device misses activities, so its recognition rate drops even if
        the classifier would have been accurate.
        """
        if self.windows_total == 0:
            return 0.0
        return self.windows_correct / self.windows_total

    @property
    def budget_utilisation(self) -> float:
        """Consumed energy as a fraction of the granted budget."""
        if self.energy_budget_j <= 0:
            return 0.0
        return self.energy_consumed_j / self.energy_budget_j


@dataclass
class CampaignResult:
    """Aggregate result of running one policy over a whole budget trace."""

    policy_name: str
    alpha: float
    outcomes: List[PeriodOutcome] = field(default_factory=list)

    def append(self, outcome: PeriodOutcome) -> None:
        """Record one period's outcome."""
        self.outcomes.append(outcome)

    def __len__(self) -> int:
        return len(self.outcomes)

    # --- aggregates -----------------------------------------------------------------
    @property
    def total_active_time_s(self) -> float:
        """Total active time across the campaign."""
        return float(sum(o.active_time_s for o in self.outcomes))

    @property
    def total_energy_consumed_j(self) -> float:
        """Total energy consumed across the campaign."""
        return float(sum(o.energy_consumed_j for o in self.outcomes))

    @property
    def total_windows_observed(self) -> int:
        """Total activity windows the device observed."""
        return int(sum(o.windows_observed for o in self.outcomes))

    @property
    def total_windows_correct(self) -> float:
        """Total correctly recognised windows."""
        return float(sum(o.windows_correct for o in self.outcomes))

    @property
    def total_windows(self) -> int:
        """Total activity windows that occurred (observed or not)."""
        return int(sum(o.windows_total for o in self.outcomes))

    @property
    def mean_expected_accuracy(self) -> float:
        """Mean per-period expected accuracy."""
        if not self.outcomes:
            return 0.0
        return float(np.mean([o.expected_accuracy for o in self.outcomes]))

    @property
    def mean_objective(self) -> float:
        """Mean per-period objective value at the campaign's alpha."""
        if not self.outcomes:
            return 0.0
        return float(np.mean([o.objective_value for o in self.outcomes]))

    @property
    def overall_recognition_rate(self) -> float:
        """Correct windows over all windows across the whole campaign."""
        total = self.total_windows
        if total == 0:
            return 0.0
        return self.total_windows_correct / total

    def objective_values(self) -> np.ndarray:
        """Per-period objective values."""
        return np.array([o.objective_value for o in self.outcomes])

    def active_times_s(self) -> np.ndarray:
        """Per-period active times."""
        return np.array([o.active_time_s for o in self.outcomes])

    def daily_objective_totals(self, periods_per_day: int = 24) -> np.ndarray:
        """Sum of objective values per day (used for Figure 7 error bars)."""
        values = self.objective_values()
        if values.size == 0:
            return values
        num_days = int(np.ceil(values.size / periods_per_day))
        padded = np.zeros(num_days * periods_per_day)
        padded[: values.size] = values
        return padded.reshape(num_days, periods_per_day).sum(axis=1)

    def summary(self) -> Dict[str, float]:
        """Scalar summary of the campaign (for reports and tests)."""
        return {
            "periods": float(len(self.outcomes)),
            "total_active_time_s": self.total_active_time_s,
            "total_energy_j": self.total_energy_consumed_j,
            "mean_expected_accuracy": self.mean_expected_accuracy,
            "mean_objective": self.mean_objective,
            "overall_recognition_rate": self.overall_recognition_rate,
            "windows_observed": float(self.total_windows_observed),
            "windows_total": float(self.total_windows),
        }


def compare_campaigns(
    reference: CampaignResult,
    baseline: CampaignResult,
    periods_per_day: int = 24,
) -> Dict[str, float]:
    """Normalised comparison of two campaigns (reference / baseline).

    Ratios are computed on per-day objective totals, mirroring how Figure 7
    reports the mean and range of REAP's improvement over each static DP
    across the days of the month.  Days where the baseline total is zero are
    skipped.
    """
    reference_days = reference.daily_objective_totals(periods_per_day)
    baseline_days = baseline.daily_objective_totals(periods_per_day)
    mask = baseline_days > 1e-12
    if not np.any(mask):
        return {"mean_ratio": float("nan"), "min_ratio": float("nan"),
                "max_ratio": float("nan"), "days_compared": 0.0}
    ratios = reference_days[mask] / baseline_days[mask]
    return {
        "mean_ratio": float(ratios.mean()),
        "min_ratio": float(ratios.min()),
        "max_ratio": float(ratios.max()),
        "days_compared": float(ratios.size),
    }


__all__ = ["CampaignResult", "PeriodOutcome", "compare_campaigns"]
