"""Metrics collected by the trace-driven device simulation.

Two representations coexist:

* :class:`PeriodOutcome` -- one object per simulated period, convenient for
  inspection and the scalar reference loop;
* :class:`CampaignColumns` -- the same figures as a struct-of-arrays, which
  is what the vectorized fleet engine produces: a month-long x many-policy
  study stores a handful of arrays per campaign instead of allocating one
  outcome object per hour.

:class:`CampaignResult` accepts either; columnar results materialise their
:class:`PeriodOutcome` list lazily, only when ``.outcomes`` is touched.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Little-endian dtypes accepted by the binary column codec.
BINARY_FLOAT_DTYPES = ("<f8", "<f4")

#: Column layout of the binary frame: (field name, kind) where kind is
#: ``"int"`` (always ``<i8``) or ``"float"`` (the frame's float dtype).
_BINARY_COLUMN_LAYOUT = (
    ("period_index", "int"),
    ("energy_budget_j", "float"),
    ("energy_consumed_j", "float"),
    ("active_time_s", "float"),
    ("off_time_s", "float"),
    ("windows_total", "int"),
    ("windows_observed", "int"),
    ("windows_correct", "float"),
    ("objective_value", "float"),
    ("expected_accuracy", "float"),
)


@dataclass(frozen=True)
class PeriodOutcome:
    """What actually happened during one simulated activity period."""

    period_index: int
    energy_budget_j: float
    energy_consumed_j: float
    active_time_s: float
    off_time_s: float
    windows_total: int
    windows_observed: int
    windows_correct: float
    objective_value: float
    expected_accuracy: float
    time_by_design_point: Dict[str, float] = field(default_factory=dict)

    @property
    def observed_fraction(self) -> float:
        """Fraction of the user's activity windows the device observed."""
        if self.windows_total == 0:
            return 0.0
        return self.windows_observed / self.windows_total

    @property
    def recognition_rate(self) -> float:
        """Correctly recognised windows over *all* windows (missed count as wrong).

        This is the realised counterpart of the expected accuracy metric: an
        off device misses activities, so its recognition rate drops even if
        the classifier would have been accurate.
        """
        if self.windows_total == 0:
            return 0.0
        return self.windows_correct / self.windows_total

    @property
    def budget_utilisation(self) -> float:
        """Consumed energy as a fraction of the granted budget."""
        if self.energy_budget_j <= 0:
            return 0.0
        return self.energy_consumed_j / self.energy_budget_j


@dataclass(frozen=True)
class CampaignColumns:
    """Struct-of-arrays view of a campaign's per-period outcomes.

    Every field mirrors the same-named :class:`PeriodOutcome` attribute with
    one entry per period.  ``times_by_design_point_s`` keeps the per-DP time
    matrix (periods x design points) so :meth:`to_outcomes` can rebuild the
    per-period allocation dictionaries on demand.
    """

    period_index: np.ndarray            #: (H,) int
    energy_budget_j: np.ndarray         #: (H,)
    energy_consumed_j: np.ndarray       #: (H,)
    active_time_s: np.ndarray           #: (H,)
    off_time_s: np.ndarray              #: (H,)
    windows_total: np.ndarray           #: (H,) int
    windows_observed: np.ndarray        #: (H,) int
    windows_correct: np.ndarray         #: (H,)
    objective_value: np.ndarray         #: (H,)
    expected_accuracy: np.ndarray       #: (H,)
    design_point_names: Tuple[str, ...] = ()
    times_by_design_point_s: Optional[np.ndarray] = None  #: (H, N)

    def __len__(self) -> int:
        return int(self.period_index.size)

    @property
    def num_periods(self) -> int:
        """Number of recorded periods H."""
        return len(self)

    def to_outcomes(self) -> List[PeriodOutcome]:
        """Materialise one :class:`PeriodOutcome` per period."""
        outcomes = []
        times = self.times_by_design_point_s
        for row in range(len(self)):
            time_by_dp: Dict[str, float] = {}
            if times is not None:
                for name, t in zip(self.design_point_names, times[row]):
                    if t > 0:
                        time_by_dp[name] = float(t)
            outcomes.append(
                PeriodOutcome(
                    period_index=int(self.period_index[row]),
                    energy_budget_j=float(self.energy_budget_j[row]),
                    energy_consumed_j=float(self.energy_consumed_j[row]),
                    active_time_s=float(self.active_time_s[row]),
                    off_time_s=float(self.off_time_s[row]),
                    windows_total=int(self.windows_total[row]),
                    windows_observed=int(self.windows_observed[row]),
                    windows_correct=float(self.windows_correct[row]),
                    objective_value=float(self.objective_value[row]),
                    expected_accuracy=float(self.expected_accuracy[row]),
                    time_by_design_point=time_by_dp,
                )
            )
        return outcomes

    @classmethod
    def concat(cls, parts: Sequence["CampaignColumns"]) -> "CampaignColumns":
        """Merge period-sharded column bundles back into one campaign.

        ``parts`` are consecutive time slices of one campaign (e.g. produced
        by the sharded runner of :mod:`repro.service.shard`, one slice per
        worker process); they are concatenated along the period axis in the
        given order.  The per-DP time matrix is kept only when every part
        carries one over the same design points -- mixing labelled and
        unlabelled parts would silently misalign :meth:`to_outcomes`.
        """
        if not parts:
            raise ValueError("need at least one column bundle to concatenate")
        if len(parts) == 1:
            return parts[0]
        names = parts[0].design_point_names
        keep_times = all(
            part.design_point_names == names
            and part.times_by_design_point_s is not None
            for part in parts
        )
        return cls(
            period_index=np.concatenate([p.period_index for p in parts]),
            energy_budget_j=np.concatenate([p.energy_budget_j for p in parts]),
            energy_consumed_j=np.concatenate([p.energy_consumed_j for p in parts]),
            active_time_s=np.concatenate([p.active_time_s for p in parts]),
            off_time_s=np.concatenate([p.off_time_s for p in parts]),
            windows_total=np.concatenate([p.windows_total for p in parts]),
            windows_observed=np.concatenate([p.windows_observed for p in parts]),
            windows_correct=np.concatenate([p.windows_correct for p in parts]),
            objective_value=np.concatenate([p.objective_value for p in parts]),
            expected_accuracy=np.concatenate([p.expected_accuracy for p in parts]),
            design_point_names=names if keep_times else (),
            times_by_design_point_s=(
                np.concatenate([p.times_by_design_point_s for p in parts])
                if keep_times
                else None
            ),
        )

    # --- JSON codec -------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """Encode as a JSON-ready dictionary (the campaign wire format).

        Python's ``json`` serialises floats with shortest round-trip repr,
        so the arrays survive the wire bit-exactly -- the remote-campaign
        parity guarantee (1e-9 against the local run) rests on this.
        """
        payload: Dict[str, object] = {
            "period_index": [int(v) for v in self.period_index],
            "energy_budget_j": [float(v) for v in self.energy_budget_j],
            "energy_consumed_j": [float(v) for v in self.energy_consumed_j],
            "active_time_s": [float(v) for v in self.active_time_s],
            "off_time_s": [float(v) for v in self.off_time_s],
            "windows_total": [int(v) for v in self.windows_total],
            "windows_observed": [int(v) for v in self.windows_observed],
            "windows_correct": [float(v) for v in self.windows_correct],
            "objective_value": [float(v) for v in self.objective_value],
            "expected_accuracy": [float(v) for v in self.expected_accuracy],
        }
        if self.times_by_design_point_s is not None:
            payload["design_point_names"] = list(self.design_point_names)
            payload["times_by_design_point_s"] = [
                [float(v) for v in row] for row in self.times_by_design_point_s
            ]
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "CampaignColumns":
        """Decode the wire format produced by :meth:`to_json_dict`."""
        times = payload.get("times_by_design_point_s")
        return cls(
            period_index=np.asarray(payload["period_index"], dtype=int),
            energy_budget_j=np.asarray(payload["energy_budget_j"], dtype=float),
            energy_consumed_j=np.asarray(
                payload["energy_consumed_j"], dtype=float
            ),
            active_time_s=np.asarray(payload["active_time_s"], dtype=float),
            off_time_s=np.asarray(payload["off_time_s"], dtype=float),
            windows_total=np.asarray(payload["windows_total"], dtype=int),
            windows_observed=np.asarray(payload["windows_observed"], dtype=int),
            windows_correct=np.asarray(payload["windows_correct"], dtype=float),
            objective_value=np.asarray(payload["objective_value"], dtype=float),
            expected_accuracy=np.asarray(
                payload["expected_accuracy"], dtype=float
            ),
            design_point_names=tuple(payload.get("design_point_names", ())),
            times_by_design_point_s=(
                None if times is None
                else np.asarray(times, dtype=float).reshape(
                    len(payload["period_index"]), -1
                )
            ),
        )

    # --- binary codec -----------------------------------------------------------
    def payload_nbytes(self, dtype: str = "<f8") -> int:
        """Size of the uncompressed binary column payload, in bytes.

        This is what the raw codec puts on the wire after the header, and
        what the shared-memory arena maps per cell -- the IPC accounting
        figure :mod:`benchmarks.bench_shard` compares against pickles.
        """
        float_size = int(np.dtype(dtype).itemsize)
        int_columns = sum(1 for _, kind in _BINARY_COLUMN_LAYOUT if kind == "int")
        float_columns = len(_BINARY_COLUMN_LAYOUT) - int_columns
        per_period = int_columns * 8 + float_columns * float_size
        if self.times_by_design_point_s is not None:
            per_period += len(self.design_point_names) * float_size
        return len(self) * per_period

    def _column_buffers(self, dtype: str):
        """Yield each column's wire buffer in frame order.

        Columns already stored contiguously at the wire dtype -- notably
        the shared-memory arena's zero-copy views -- are yielded as
        memoryviews over their existing storage; anything else is cast and
        copied once.
        """
        def wire_buffer(array: np.ndarray, wire_dtype: str):
            array = np.asarray(array)
            if array.dtype == np.dtype(wire_dtype) and array.flags.c_contiguous:
                return memoryview(array).cast("B")
            return np.ascontiguousarray(array, dtype=wire_dtype).tobytes()

        for name, kind in _BINARY_COLUMN_LAYOUT:
            yield wire_buffer(getattr(self, name), "<i8" if kind == "int" else dtype)
        times = self.times_by_design_point_s
        if times is not None:
            yield wire_buffer(times, dtype)

    def to_bytes_chunks(self, dtype: str = "<f8", compress: bool = True):
        """Yield buffers that concatenate to the :meth:`to_bytes` frame.

        The raw codec streams the header followed by per-column
        memoryviews with no intermediate copy; the zlib codec necessarily
        materialises one compressed payload.  Callers that hold the chunks
        (rather than joining them) must keep the columns alive.
        """
        if dtype not in BINARY_FLOAT_DTYPES:
            raise ValueError(
                f"unsupported binary dtype {dtype!r}; "
                f"expected one of {BINARY_FLOAT_DTYPES}"
            )
        header: Dict[str, object] = {
            "version": 1,
            "dtype": dtype,
            "codec": "zlib" if compress else "raw",
            "num_periods": len(self),
        }
        if self.times_by_design_point_s is not None:
            header["design_point_names"] = list(self.design_point_names)
        header_blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
        yield struct.pack("<Q", len(header_blob))
        yield header_blob
        if compress:
            yield zlib.compress(b"".join(self._column_buffers(dtype)), 6)
        else:
            yield from self._column_buffers(dtype)

    def to_bytes(self, dtype: str = "<f8", compress: bool = True) -> bytes:
        """Encode as one self-describing binary frame.

        Layout: a little-endian ``uint64`` header length, a UTF-8 JSON
        header (dtype, codec, period count, design point names), then the
        raw column buffers back to back in :data:`_BINARY_COLUMN_LAYOUT`
        order -- integers as ``<i8``, floats as ``dtype`` -- followed by
        the optional per-DP time matrix.  With ``compress`` (the default)
        the concatenated column buffers travel zlib-deflated, declared as
        ``"codec": "zlib"`` in the header; zlib is deterministic, so the
        frame still round-trips byte-exactly through :meth:`from_bytes`.
        ``"<f8"`` is lossless; ``"<f4"`` halves the float payload at
        ~1e-7 relative precision.
        """
        return b"".join(self.to_bytes_chunks(dtype, compress))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CampaignColumns":
        """Decode a frame produced by :meth:`to_bytes`.

        Raises :class:`ValueError` on truncated or malformed frames.  All
        float columns come back as float64 regardless of the wire dtype.
        """
        if len(blob) < 8:
            raise ValueError("binary columns frame truncated: missing header length")
        (header_len,) = struct.unpack_from("<Q", blob, 0)
        if len(blob) < 8 + header_len:
            raise ValueError("binary columns frame truncated: incomplete header")
        try:
            header = json.loads(blob[8:8 + header_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"malformed binary columns header: {error}") from error
        if not isinstance(header, dict):
            raise ValueError("malformed binary columns header: not an object")
        version = header.get("version")
        if version != 1:
            raise ValueError(f"unsupported binary columns version {version!r}")
        dtype = header.get("dtype")
        if dtype not in BINARY_FLOAT_DTYPES:
            raise ValueError(f"unsupported binary dtype {dtype!r} in header")
        codec = header.get("codec", "raw")
        if codec not in ("raw", "zlib"):
            raise ValueError(f"unsupported binary codec {codec!r} in header")
        num_periods = int(header.get("num_periods", -1))
        if num_periods < 0:
            raise ValueError("malformed binary columns header: bad num_periods")
        payload = blob[8 + header_len:]
        if codec == "zlib":
            try:
                payload = zlib.decompress(payload)
            except zlib.error as error:
                raise ValueError(
                    f"binary columns frame truncated or corrupt: {error}"
                ) from error
        offset = 0

        def take(wire_dtype: str, count: int) -> np.ndarray:
            nonlocal offset
            nbytes = np.dtype(wire_dtype).itemsize * count
            if len(payload) < offset + nbytes:
                raise ValueError(
                    "binary columns frame truncated: "
                    f"expected {nbytes} bytes at payload offset {offset}"
                )
            array = np.frombuffer(
                payload, dtype=wire_dtype, count=count, offset=offset
            )
            offset += nbytes
            return array

        fields: Dict[str, np.ndarray] = {}
        for name, kind in _BINARY_COLUMN_LAYOUT:
            if kind == "int":
                fields[name] = take("<i8", num_periods).astype(int)
            else:
                fields[name] = take(dtype, num_periods).astype(float)
        names = tuple(header.get("design_point_names", ()))
        times: Optional[np.ndarray] = None
        if names:
            flat = take(dtype, num_periods * len(names)).astype(float)
            times = flat.reshape(num_periods, len(names))
        if offset != len(payload):
            raise ValueError(
                f"binary columns frame has {len(payload) - offset} trailing bytes"
            )
        return cls(
            design_point_names=names,
            times_by_design_point_s=times,
            **fields,
        )

    @classmethod
    def from_outcomes(cls, outcomes: Sequence[PeriodOutcome]) -> "CampaignColumns":
        """Pack a list of outcomes into columns (per-DP times are dropped)."""
        return cls(
            period_index=np.array([o.period_index for o in outcomes], dtype=int),
            energy_budget_j=np.array([o.energy_budget_j for o in outcomes]),
            energy_consumed_j=np.array([o.energy_consumed_j for o in outcomes]),
            active_time_s=np.array([o.active_time_s for o in outcomes]),
            off_time_s=np.array([o.off_time_s for o in outcomes]),
            windows_total=np.array([o.windows_total for o in outcomes], dtype=int),
            windows_observed=np.array(
                [o.windows_observed for o in outcomes], dtype=int
            ),
            windows_correct=np.array([o.windows_correct for o in outcomes]),
            objective_value=np.array([o.objective_value for o in outcomes]),
            expected_accuracy=np.array([o.expected_accuracy for o in outcomes]),
        )


class CampaignResult:
    """Aggregate result of running one policy over a whole budget trace.

    Holds either an appendable list of :class:`PeriodOutcome` objects (the
    scalar reference path) or a :class:`CampaignColumns` bundle (the fleet
    path); aggregates are computed from whichever is present.  Accessing
    :attr:`outcomes` on a columnar result materialises the objects lazily.
    """

    def __init__(
        self,
        policy_name: str,
        alpha: float,
        outcomes: Optional[Sequence[PeriodOutcome]] = None,
        columns: Optional[CampaignColumns] = None,
        battery_charge_j: Optional[np.ndarray] = None,
    ) -> None:
        if outcomes is not None and columns is not None:
            raise ValueError("provide either outcomes or columns, not both")
        self.policy_name = policy_name
        self.alpha = alpha
        self.columns = columns
        #: Battery state-of-charge trajectory (periods + 1 entries) for
        #: closed-loop campaigns; None for open-loop runs.
        self.battery_charge_j = (
            None if battery_charge_j is None
            else np.asarray(battery_charge_j, dtype=float)
        )
        self._outcomes: Optional[List[PeriodOutcome]] = (
            list(outcomes) if outcomes is not None
            else ([] if columns is None else None)
        )

    @classmethod
    def from_columns(
        cls,
        policy_name: str,
        alpha: float,
        columns: CampaignColumns,
        battery_charge_j: Optional[np.ndarray] = None,
    ) -> "CampaignResult":
        """Wrap a columnar outcome bundle produced by the fleet engine."""
        return cls(
            policy_name,
            alpha,
            columns=columns,
            battery_charge_j=battery_charge_j,
        )

    @property
    def outcomes(self) -> List[PeriodOutcome]:
        """Per-period outcomes (materialised on first access when columnar)."""
        if self._outcomes is None:
            assert self.columns is not None
            self._outcomes = self.columns.to_outcomes()
        return self._outcomes

    def append(self, outcome: PeriodOutcome) -> None:
        """Record one period's outcome (list-based results only)."""
        if self.columns is not None:
            raise ValueError("columnar campaign results are read-only")
        assert self._outcomes is not None
        self._outcomes.append(outcome)

    def __len__(self) -> int:
        if self.columns is not None:
            return len(self.columns)
        return len(self.outcomes)

    def __repr__(self) -> str:
        return (
            f"CampaignResult(policy_name={self.policy_name!r}, "
            f"alpha={self.alpha!r}, periods={len(self)}, "
            f"columnar={self.columns is not None})"
        )

    # --- aggregates -----------------------------------------------------------------
    @property
    def total_active_time_s(self) -> float:
        """Total active time across the campaign."""
        if self.columns is not None:
            return float(self.columns.active_time_s.sum())
        return float(sum(o.active_time_s for o in self.outcomes))

    @property
    def total_energy_consumed_j(self) -> float:
        """Total energy consumed across the campaign."""
        if self.columns is not None:
            return float(self.columns.energy_consumed_j.sum())
        return float(sum(o.energy_consumed_j for o in self.outcomes))

    @property
    def total_windows_observed(self) -> int:
        """Total activity windows the device observed."""
        if self.columns is not None:
            return int(self.columns.windows_observed.sum())
        return int(sum(o.windows_observed for o in self.outcomes))

    @property
    def total_windows_correct(self) -> float:
        """Total correctly recognised windows."""
        if self.columns is not None:
            return float(self.columns.windows_correct.sum())
        return float(sum(o.windows_correct for o in self.outcomes))

    @property
    def total_windows(self) -> int:
        """Total activity windows that occurred (observed or not)."""
        if self.columns is not None:
            return int(self.columns.windows_total.sum())
        return int(sum(o.windows_total for o in self.outcomes))

    @property
    def mean_expected_accuracy(self) -> float:
        """Mean per-period expected accuracy."""
        if len(self) == 0:
            return 0.0
        if self.columns is not None:
            return float(self.columns.expected_accuracy.mean())
        return float(np.mean([o.expected_accuracy for o in self.outcomes]))

    @property
    def mean_objective(self) -> float:
        """Mean per-period objective value at the campaign's alpha."""
        if len(self) == 0:
            return 0.0
        if self.columns is not None:
            return float(self.columns.objective_value.mean())
        return float(np.mean([o.objective_value for o in self.outcomes]))

    @property
    def overall_recognition_rate(self) -> float:
        """Correct windows over all windows across the whole campaign."""
        total = self.total_windows
        if total == 0:
            return 0.0
        return self.total_windows_correct / total

    def objective_values(self) -> np.ndarray:
        """Per-period objective values."""
        if self.columns is not None:
            return np.array(self.columns.objective_value)
        return np.array([o.objective_value for o in self.outcomes])

    def active_times_s(self) -> np.ndarray:
        """Per-period active times."""
        if self.columns is not None:
            return np.array(self.columns.active_time_s)
        return np.array([o.active_time_s for o in self.outcomes])

    def daily_objective_totals(self, periods_per_day: int = 24) -> np.ndarray:
        """Sum of objective values per day (used for Figure 7 error bars)."""
        values = self.objective_values()
        if values.size == 0:
            return values
        num_days = int(np.ceil(values.size / periods_per_day))
        padded = np.zeros(num_days * periods_per_day)
        padded[: values.size] = values
        return padded.reshape(num_days, periods_per_day).sum(axis=1)

    def summary(self) -> Dict[str, float]:
        """Scalar summary of the campaign (for reports and tests)."""
        return {
            "periods": float(len(self)),
            "total_active_time_s": self.total_active_time_s,
            "total_energy_j": self.total_energy_consumed_j,
            "mean_expected_accuracy": self.mean_expected_accuracy,
            "mean_objective": self.mean_objective,
            "overall_recognition_rate": self.overall_recognition_rate,
            "windows_observed": float(self.total_windows_observed),
            "windows_total": float(self.total_windows),
        }


def compare_campaigns(
    reference: CampaignResult,
    baseline: CampaignResult,
    periods_per_day: int = 24,
) -> Dict[str, float]:
    """Normalised comparison of two campaigns (reference / baseline).

    Ratios are computed on per-day objective totals, mirroring how Figure 7
    reports the mean and range of REAP's improvement over each static DP
    across the days of the month.  Days where the baseline total is zero are
    skipped.
    """
    reference_days = reference.daily_objective_totals(periods_per_day)
    baseline_days = baseline.daily_objective_totals(periods_per_day)
    mask = baseline_days > 1e-12
    if not np.any(mask):
        return {"mean_ratio": float("nan"), "min_ratio": float("nan"),
                "max_ratio": float("nan"), "days_compared": 0.0}
    ratios = reference_days[mask] / baseline_days[mask]
    return {
        "mean_ratio": float(ratios.mean()),
        "min_ratio": float(ratios.min()),
        "max_ratio": float(ratios.max()),
        "days_compared": float(ratios.size),
    }


__all__ = [
    "BINARY_FLOAT_DTYPES",
    "CampaignColumns",
    "CampaignResult",
    "PeriodOutcome",
    "compare_campaigns",
]
