"""Trace-driven IoT device simulator.

Executes one activity period of a :class:`~repro.core.schedule.TimeAllocation`
against a stream of user activities: the device processes activity windows at
whatever design point the schedule assigns, each processed window is
recognised correctly with that design point's accuracy, windows falling into
the off time are missed, and the energy meter integrates the consumption.

Two recognition modes are supported:

* ``"expected"`` (default) -- each observed window contributes its design
  point's accuracy to the correct-window count (deterministic, matches the
  expected-accuracy analysis of Section 5.2);
* ``"sampled"`` -- correctness is drawn per window from a Bernoulli with the
  design point's accuracy (used to study run-to-run variability).

Two execution paths produce identical numbers: :meth:`DeviceSimulator.run_period`
steps one period at a time (the scalar reference), while
:meth:`DeviceSimulator.run_periods_batch` consumes the raw per-DP time
matrices of :class:`~repro.core.batch.BatchArrays` and accounts a whole
campaign in a handful of array operations (the fleet path of
:mod:`repro.simulation.fleet`).  In sampled mode the batch path draws its
Bernoulli counts in the same order as the scalar loop, so the two paths
consume the seeded RNG stream identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.batch import BatchArrays
from repro.core.schedule import TimeAllocation
from repro.data.paper_constants import ACTIVITY_WINDOW_S
from repro.simulation.metrics import CampaignColumns, PeriodOutcome

#: Fallback activity-window length when a schedule carries no design points
#: (all design points share the paper's 1.6 s window; see Section 4.2).
DEFAULT_WINDOW_S: float = ACTIVITY_WINDOW_S


def window_length_s(design_points: Sequence) -> float:
    """Activity-window length implied by a schedule's design points.

    The schedule's nominal window is the first design point's activity
    period; an empty design-point set falls back to the paper's 1.6 s
    window (:data:`DEFAULT_WINDOW_S`).
    """
    return design_points[0].activity_period_s if design_points else DEFAULT_WINDOW_S


@dataclass(frozen=True)
class DeviceConfig:
    """Configuration of the device simulator."""

    #: How recognition correctness is accounted: "expected" or "sampled".
    recognition_mode: str = "expected"
    #: Seed for the sampled mode.
    seed: int = 99

    def __post_init__(self) -> None:
        if self.recognition_mode not in ("expected", "sampled"):
            raise ValueError(
                "recognition_mode must be 'expected' or 'sampled', got "
                f"{self.recognition_mode!r}"
            )


class DeviceSimulator:
    """Simulates the wearable device executing per-period schedules."""

    def __init__(self, config: DeviceConfig = DeviceConfig()) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    def reset(self) -> None:
        """Reset the internal RNG (sampled mode) to its seeded state."""
        self._rng = np.random.default_rng(self.config.seed)

    # -----------------------------------------------------------------------------
    def run_period(
        self,
        allocation: TimeAllocation,
        period_index: int = 0,
        energy_budget_j: Optional[float] = None,
    ) -> PeriodOutcome:
        """Execute one activity period under ``allocation``.

        The activity stream is implicit: the user performs back-to-back
        activity windows for the whole period, so the number of windows that
        *occur* is ``period_s / window_s`` and the number the device
        *observes* is determined by the active time of each design point.
        """
        windows_total = 0
        windows_observed = 0
        windows_correct = 0.0
        time_by_dp: Dict[str, float] = {}

        # Total windows occurring in the period, using the schedule's nominal
        # window length.
        window_s = window_length_s(allocation.design_points)
        windows_total = int(round(allocation.period_s / window_s))

        for dp, active_time in zip(allocation.design_points, allocation.times_s):
            if active_time <= 0:
                continue
            time_by_dp[dp.name] = active_time
            observed = int(active_time / dp.activity_period_s)
            windows_observed += observed
            if self.config.recognition_mode == "expected":
                windows_correct += observed * dp.accuracy
            else:
                windows_correct += float(
                    self._rng.binomial(observed, dp.accuracy)
                )

        windows_observed = min(windows_observed, windows_total)
        windows_correct = min(windows_correct, float(windows_observed))

        budget = (
            energy_budget_j if energy_budget_j is not None
            else (allocation.budget_j or allocation.energy_j)
        )
        consumed = allocation.energy_j
        if not allocation.budget_feasible:
            # The budget could not even cover the standby draw: the device
            # browns out and can only consume what was actually granted.
            consumed = min(consumed, budget)

        return PeriodOutcome(
            period_index=period_index,
            energy_budget_j=budget,
            energy_consumed_j=consumed,
            active_time_s=allocation.active_time_s,
            off_time_s=allocation.off_time_s,
            windows_total=windows_total,
            windows_observed=windows_observed,
            windows_correct=windows_correct,
            objective_value=allocation.objective,
            expected_accuracy=allocation.expected_accuracy,
            time_by_design_point=time_by_dp,
        )

    def run_periods(
        self,
        allocations: Sequence[TimeAllocation],
        budgets_j: Optional[Sequence[float]] = None,
    ) -> List[PeriodOutcome]:
        """Execute a sequence of periods and return their outcomes."""
        if budgets_j is not None and len(budgets_j) != len(allocations):
            raise ValueError(
                f"{len(budgets_j)} budgets provided for {len(allocations)} allocations"
            )
        outcomes = []
        for index, allocation in enumerate(allocations):
            budget = budgets_j[index] if budgets_j is not None else None
            outcomes.append(self.run_period(allocation, index, budget))
        return outcomes

    def run_periods_batch(
        self,
        arrays: BatchArrays,
        budgets_j: Optional[Sequence[float]] = None,
        start_index: int = 0,
    ) -> CampaignColumns:
        """Execute a whole campaign of periods from raw allocation arrays.

        Array counterpart of :meth:`run_periods`: consumes the per-DP time
        matrix of a :class:`~repro.core.batch.BatchArrays` bundle (one row
        per period) and returns the outcomes as columnar arrays.  The window
        accounting, brown-out rule and -- in sampled mode -- the order of
        the Bernoulli draws replicate the scalar loop exactly.
        """
        times = arrays.times_s                                    # (H, N)
        num_periods = times.shape[0]
        design_points = arrays.design_points
        window_s = window_length_s(design_points)
        windows_total = int(round(arrays.period_s / window_s))

        dp_windows = np.array([dp.activity_period_s for dp in design_points])
        accuracies = np.array([dp.accuracy for dp in design_points])
        observed_by_dp = (times / dp_windows[None, :]).astype(np.int64)
        observed = observed_by_dp.sum(axis=1)

        if self.config.recognition_mode == "expected":
            correct = observed_by_dp @ accuracies
        else:
            # One flattened draw in period-major, DP-minor order -- the same
            # order (and therefore the same RNG stream) as the scalar loop,
            # which skips design points with no active time.
            active = times > 0
            draws = self._rng.binomial(
                observed_by_dp[active],
                np.broadcast_to(accuracies, times.shape)[active],
            )
            correct_by_dp = np.zeros(times.shape)
            correct_by_dp[active] = draws
            correct = correct_by_dp.sum(axis=1)

        observed = np.minimum(observed, windows_total)
        correct = np.minimum(correct, observed.astype(float))

        budgets = (
            np.asarray(arrays.budgets_j, dtype=float)
            if budgets_j is None
            else np.asarray(budgets_j, dtype=float)
        )
        if budgets.size != num_periods:
            raise ValueError(
                f"{budgets.size} budgets provided for {num_periods} periods"
            )
        # Brown-out rule: below the off-state floor the device can only
        # consume what was actually granted.
        consumed = np.where(
            arrays.feasible,
            arrays.energy_j,
            np.minimum(arrays.energy_j, budgets),
        )
        return CampaignColumns(
            period_index=np.arange(start_index, start_index + num_periods),
            energy_budget_j=budgets,
            energy_consumed_j=consumed,
            active_time_s=np.array(arrays.active_time_s),
            off_time_s=np.array(arrays.off_time_s),
            windows_total=np.full(num_periods, windows_total, dtype=int),
            windows_observed=observed,
            windows_correct=correct,
            objective_value=np.array(arrays.objective),
            expected_accuracy=np.array(arrays.expected_accuracy),
            design_point_names=tuple(dp.name for dp in design_points),
            times_by_design_point_s=np.array(times),
        )


__all__ = ["DEFAULT_WINDOW_S", "DeviceConfig", "DeviceSimulator", "window_length_s"]
