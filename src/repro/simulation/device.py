"""Trace-driven IoT device simulator.

Executes one activity period of a :class:`~repro.core.schedule.TimeAllocation`
against a stream of user activities: the device processes activity windows at
whatever design point the schedule assigns, each processed window is
recognised correctly with that design point's accuracy, windows falling into
the off time are missed, and the energy meter integrates the consumption.

Two recognition modes are supported:

* ``"expected"`` (default) -- each observed window contributes its design
  point's accuracy to the correct-window count (deterministic, matches the
  expected-accuracy analysis of Section 5.2);
* ``"sampled"`` -- correctness is drawn per window from a Bernoulli with the
  design point's accuracy (used to study run-to-run variability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.schedule import TimeAllocation
from repro.simulation.metrics import PeriodOutcome


@dataclass(frozen=True)
class DeviceConfig:
    """Configuration of the device simulator."""

    #: How recognition correctness is accounted: "expected" or "sampled".
    recognition_mode: str = "expected"
    #: Seed for the sampled mode.
    seed: int = 99

    def __post_init__(self) -> None:
        if self.recognition_mode not in ("expected", "sampled"):
            raise ValueError(
                "recognition_mode must be 'expected' or 'sampled', got "
                f"{self.recognition_mode!r}"
            )


class DeviceSimulator:
    """Simulates the wearable device executing per-period schedules."""

    def __init__(self, config: DeviceConfig = DeviceConfig()) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    def reset(self) -> None:
        """Reset the internal RNG (sampled mode) to its seeded state."""
        self._rng = np.random.default_rng(self.config.seed)

    # -----------------------------------------------------------------------------
    def run_period(
        self,
        allocation: TimeAllocation,
        period_index: int = 0,
        energy_budget_j: Optional[float] = None,
    ) -> PeriodOutcome:
        """Execute one activity period under ``allocation``.

        The activity stream is implicit: the user performs back-to-back
        activity windows for the whole period, so the number of windows that
        *occur* is ``period_s / window_s`` and the number the device
        *observes* is determined by the active time of each design point.
        """
        windows_total = 0
        windows_observed = 0
        windows_correct = 0.0
        time_by_dp: Dict[str, float] = {}

        # Total windows occurring in the period, using the schedule's nominal
        # window length (all design points share the 1.6 s window).
        window_s = (
            allocation.design_points[0].activity_period_s
            if allocation.design_points
            else 1.6
        )
        windows_total = int(round(allocation.period_s / window_s))

        for dp, active_time in zip(allocation.design_points, allocation.times_s):
            if active_time <= 0:
                continue
            time_by_dp[dp.name] = active_time
            observed = int(active_time / dp.activity_period_s)
            windows_observed += observed
            if self.config.recognition_mode == "expected":
                windows_correct += observed * dp.accuracy
            else:
                windows_correct += float(
                    self._rng.binomial(observed, dp.accuracy)
                )

        windows_observed = min(windows_observed, windows_total)
        windows_correct = min(windows_correct, float(windows_observed))

        budget = (
            energy_budget_j if energy_budget_j is not None
            else (allocation.budget_j or allocation.energy_j)
        )
        consumed = allocation.energy_j
        if not allocation.budget_feasible:
            # The budget could not even cover the standby draw: the device
            # browns out and can only consume what was actually granted.
            consumed = min(consumed, budget)

        return PeriodOutcome(
            period_index=period_index,
            energy_budget_j=budget,
            energy_consumed_j=consumed,
            active_time_s=allocation.active_time_s,
            off_time_s=allocation.off_time_s,
            windows_total=windows_total,
            windows_observed=windows_observed,
            windows_correct=windows_correct,
            objective_value=allocation.objective,
            expected_accuracy=allocation.expected_accuracy,
            time_by_design_point=time_by_dp,
        )

    def run_periods(
        self,
        allocations: Sequence[TimeAllocation],
        budgets_j: Optional[Sequence[float]] = None,
    ) -> List[PeriodOutcome]:
        """Execute a sequence of periods and return their outcomes."""
        if budgets_j is not None and len(budgets_j) != len(allocations):
            raise ValueError(
                f"{len(budgets_j)} budgets provided for {len(allocations)} allocations"
            )
        outcomes = []
        for index, allocation in enumerate(allocations):
            budget = budgets_j[index] if budgets_j is not None else None
            outcomes.append(self.run_period(allocation, index, budget))
        return outcomes


__all__ = ["DeviceConfig", "DeviceSimulator"]
