"""Trace-driven simulation of the energy-harvesting wearable device.

* :mod:`repro.simulation.policies` -- REAP, static and duty-cycling runtime
  policies behind a common interface,
* :mod:`repro.simulation.device` -- the device simulator that executes a
  period's schedule against the user's activity stream,
* :mod:`repro.simulation.simulator` -- the campaign runner that connects a
  solar trace, the budget layer, a policy and the device,
* :mod:`repro.simulation.fleet` -- the vectorized fleet engine that runs
  whole (scenario x policy x alpha) grids of campaigns as array programs,
* :mod:`repro.simulation.metrics` -- per-period and campaign-level metrics.
"""

from repro.simulation.device import DeviceConfig, DeviceSimulator
from repro.simulation.fleet import (
    CampaignConfig,
    FleetCampaign,
    FleetResult,
    policy_supports_fleet,
)
from repro.simulation.metrics import (
    CampaignColumns,
    CampaignResult,
    PeriodOutcome,
    compare_campaigns,
)
from repro.simulation.policies import (
    OnOffDutyCyclePolicy,
    OraclePolicy,
    Policy,
    ReapPolicy,
    StaticPolicy,
    default_policy_suite,
)
from repro.simulation.simulator import HarvestingCampaign

__all__ = [
    "CampaignColumns",
    "CampaignConfig",
    "CampaignResult",
    "DeviceConfig",
    "DeviceSimulator",
    "FleetCampaign",
    "FleetResult",
    "HarvestingCampaign",
    "OnOffDutyCyclePolicy",
    "OraclePolicy",
    "PeriodOutcome",
    "Policy",
    "ReapPolicy",
    "StaticPolicy",
    "compare_campaigns",
    "policy_supports_fleet",
    "default_policy_suite",
]
