"""End-to-end harvesting campaign simulation.

Ties the substrates together: a solar trace is converted into per-period
energy budgets (open-loop harvest-following or closed-loop through a battery
and an energy allocator), a policy turns each budget into a schedule, and the
device simulator executes the schedule.  This is the machinery behind the
month-long case study of Section 5.4.

Two engines implement the same semantics:

* ``engine="fleet"`` (default) -- campaigns run through the vectorized
  :class:`~repro.simulation.fleet.FleetCampaign` runtime: budgets for the
  whole trace come from one lockstep battery scan (closed loop) or the
  harvest vector (open loop), allocations from one batched solve per
  policy, and outcomes land in columnar
  :class:`~repro.simulation.metrics.CampaignColumns` arrays.
* ``engine="scalar"`` -- the original hour-by-hour Python loop
  (``grant -> allocate -> run_period -> settle``), kept as the cross-checked
  reference implementation; the equivalence suite asserts both engines
  agree to 1e-9.

Policies whose allocations cannot be expressed through the batch engine
(for example a :class:`~repro.simulation.policies.ReapPolicy` with a custom
allocator configuration) silently fall back to the scalar loop even under
``engine="fleet"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.schedule import TimeAllocation
from repro.energy.battery import Battery
from repro.energy.budget import HarvestFollowingAllocator
from repro.harvesting.solar_cell import HarvestScenario
from repro.harvesting.traces import SolarTrace
from repro.simulation.device import DeviceSimulator
from repro.simulation.fleet import (
    CampaignConfig,
    FleetCampaign,
    policy_supports_fleet,
)
from repro.simulation.metrics import CampaignResult, PeriodOutcome
from repro.simulation.policies import PlanningPolicy, Policy

#: Campaign engines selectable on :class:`HarvestingCampaign`.
ENGINES = ("fleet", "scalar")


class HarvestingCampaign:
    """Runs policies against a harvest trace and collects the outcomes."""

    def __init__(
        self,
        scenario: HarvestScenario,
        config: Optional[CampaignConfig] = None,
        engine: str = "fleet",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.scenario = scenario
        self.config = config or CampaignConfig()
        self.engine = engine

    # -----------------------------------------------------------------------------
    def budgets_for_trace(self, trace: SolarTrace) -> List[float]:
        """Open-loop per-hour budgets implied by the trace (no battery)."""
        return self.scenario.budgets_from_trace(trace)

    def run(self, policy: Policy, trace: SolarTrace) -> CampaignResult:
        """Run ``policy`` over every hour of ``trace``."""
        if self.engine == "fleet" and policy_supports_fleet(
            policy, self.config.use_battery
        ):
            fleet = FleetCampaign(self.scenario, self.config)
            return fleet.run([policy], trace).result(0)
        return self._run_scalar(policy, trace)

    def run_many(
        self, policies: Sequence[Policy], trace: SolarTrace
    ) -> Dict[str, CampaignResult]:
        """Run several policies over the same trace (same budgets for all).

        Under the fleet engine every supported policy shares one vectorized
        run (closed-loop cells share the lockstep battery scan); unsupported
        policies fall back to the scalar loop.  The returned mapping
        preserves the input policy order.
        """
        policies = list(policies)
        if self.engine != "fleet":
            return {policy.name: self._run_scalar(policy, trace) for policy in policies}
        supported = [
            policy
            for policy in policies
            if policy_supports_fleet(policy, self.config.use_battery)
        ]
        fleet_by_policy: Dict[int, CampaignResult] = {}
        if supported:
            fleet = FleetCampaign(self.scenario, self.config).run(supported, trace)
            fleet_by_policy = {
                id(policy): fleet.result(index)
                for index, policy in enumerate(supported)
            }
        # Match results to policy *objects*, not names, so an unsupported
        # policy never inherits a same-named supported policy's result; the
        # returned mapping keeps run_many's usual later-wins name collapse.
        results: Dict[str, CampaignResult] = {}
        for policy in policies:
            result = fleet_by_policy.get(id(policy))
            if result is None:
                result = self._run_scalar(policy, trace)
            results[policy.name] = result
        return results

    # --- scalar reference loop ---------------------------------------------------
    def _run_scalar(self, policy: Policy, trace: SolarTrace) -> CampaignResult:
        """Hour-by-hour reference implementation (both budget modes)."""
        device = DeviceSimulator(self.config.device)
        policy.reset()
        battery_history: Optional[np.ndarray] = None
        if self.config.use_battery:
            outcomes, battery_history = self._run_with_battery(policy, trace, device)
        else:
            outcomes = self._run_open_loop(policy, trace, device)
        return CampaignResult(
            policy_name=policy.name,
            alpha=policy.alpha,
            outcomes=outcomes,
            battery_charge_j=battery_history,
        )

    def _run_open_loop(
        self, policy: Policy, trace: SolarTrace, device: DeviceSimulator
    ) -> List[PeriodOutcome]:
        budgets = self.budgets_for_trace(trace)
        # One batched call per campaign: policies with budget-independent
        # periods (REAP, static, oracle) solve the whole trace vectorized.
        allocations: List[TimeAllocation] = policy.allocate_many(budgets)
        return device.run_periods(allocations, budgets)

    def _run_with_battery(
        self, policy: Policy, trace: SolarTrace, device: DeviceSimulator
    ) -> Tuple[List[PeriodOutcome], np.ndarray]:
        # The scenario's battery overrides (per-device variants in fleet
        # studies) take precedence over the shared campaign defaults, so the
        # scalar reference stays bit-compatible with the fleet engine.
        capacity = (
            self.scenario.battery_capacity_j
            if self.scenario.battery_capacity_j is not None
            else self.config.battery_capacity_j
        )
        initial = (
            self.scenario.battery_initial_j
            if self.scenario.battery_initial_j is not None
            else self.config.battery_initial_j
        )
        if isinstance(policy, PlanningPolicy):
            # Forecast-driven budgets: the planning reference loop owns the
            # whole grant -> allocate -> run_period -> settle cycle.
            from repro.planning.reference import run_planning_scalar

            harvest = np.array([
                self.scenario.harvested_energy_j(hour.ghi_w_per_m2)
                for hour in trace
            ])
            return run_planning_scalar(
                policy,
                harvest,
                capacity_j=capacity,
                initial_charge_j=initial,
                target_soc=self.config.battery_target_soc,
                max_draw_j=self.config.battery_max_draw_j,
                device=device,
            )
        battery = Battery(capacity_j=capacity, initial_charge_j=initial)
        allocator = HarvestFollowingAllocator(
            battery,
            target_soc=self.config.battery_target_soc,
            max_battery_draw_j=self.config.battery_max_draw_j,
        )
        outcomes: List[PeriodOutcome] = []
        for index, hour in enumerate(trace):
            harvest = self.scenario.harvested_energy_j(hour.ghi_w_per_m2)
            budget = allocator.grant(harvest)
            allocation = policy.allocate(budget)
            outcome = device.run_period(allocation, index, budget)
            allocator.settle(harvest, outcome.energy_consumed_j)
            outcomes.append(outcome)
        return outcomes, np.array(battery.history)


__all__ = ["CampaignConfig", "ENGINES", "HarvestingCampaign"]
