"""End-to-end harvesting campaign simulation.

Ties the substrates together: a solar trace is converted into per-period
energy budgets (open-loop harvest-following or closed-loop through a battery
and an energy allocator), a policy turns each budget into a schedule, and the
device simulator executes the schedule.  This is the machinery behind the
month-long case study of Section 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.schedule import TimeAllocation
from repro.energy.battery import Battery
from repro.energy.budget import HarvestFollowingAllocator
from repro.harvesting.solar_cell import HarvestScenario
from repro.harvesting.traces import SolarTrace
from repro.simulation.device import DeviceConfig, DeviceSimulator
from repro.simulation.metrics import CampaignResult, PeriodOutcome
from repro.simulation.policies import Policy


@dataclass
class CampaignConfig:
    """Configuration of a harvesting campaign simulation."""

    #: When True, budgets flow through a battery-backed energy allocator; the
    #: unspent part of each budget is banked and shortfalls draw the battery.
    use_battery: bool = False
    #: Battery capacity in joules (only used when ``use_battery``).
    battery_capacity_j: float = 60.0
    #: Initial battery charge in joules (negative means half full).
    battery_initial_j: float = -1.0
    #: Battery state-of-charge reserve: charge above this level is released
    #: to the load (so day-time surplus funds night-time operation), charge
    #: below it is retained.
    battery_target_soc: float = 0.35
    #: Maximum battery contribution to a single period's budget, in joules.
    battery_max_draw_j: float = 5.0
    #: Device simulation settings.
    device: DeviceConfig = DeviceConfig()


class HarvestingCampaign:
    """Runs one policy against a harvest trace and collects the outcomes."""

    def __init__(
        self,
        scenario: HarvestScenario,
        config: Optional[CampaignConfig] = None,
    ) -> None:
        self.scenario = scenario
        self.config = config or CampaignConfig()

    # -----------------------------------------------------------------------------
    def budgets_for_trace(self, trace: SolarTrace) -> List[float]:
        """Open-loop per-hour budgets implied by the trace (no battery)."""
        return self.scenario.budgets_from_trace(trace)

    def run(self, policy: Policy, trace: SolarTrace) -> CampaignResult:
        """Run ``policy`` over every hour of ``trace``."""
        device = DeviceSimulator(self.config.device)
        policy.reset()
        result = CampaignResult(policy_name=policy.name, alpha=policy.alpha)

        if self.config.use_battery:
            outcomes = self._run_with_battery(policy, trace, device)
        else:
            outcomes = self._run_open_loop(policy, trace, device)

        for outcome in outcomes:
            result.append(outcome)
        return result

    def run_many(
        self, policies: Sequence[Policy], trace: SolarTrace
    ) -> Dict[str, CampaignResult]:
        """Run several policies over the same trace (same budgets for all)."""
        return {policy.name: self.run(policy, trace) for policy in policies}

    # -----------------------------------------------------------------------------
    def _run_open_loop(
        self, policy: Policy, trace: SolarTrace, device: DeviceSimulator
    ) -> List[PeriodOutcome]:
        budgets = self.budgets_for_trace(trace)
        # One batched call per campaign: policies with budget-independent
        # periods (REAP, static, oracle) solve the whole trace vectorized.
        allocations: List[TimeAllocation] = policy.allocate_many(budgets)
        return device.run_periods(allocations, budgets)

    def _run_with_battery(
        self, policy: Policy, trace: SolarTrace, device: DeviceSimulator
    ) -> List[PeriodOutcome]:
        battery = Battery(
            capacity_j=self.config.battery_capacity_j,
            initial_charge_j=self.config.battery_initial_j,
        )
        allocator = HarvestFollowingAllocator(
            battery,
            target_soc=self.config.battery_target_soc,
            max_battery_draw_j=self.config.battery_max_draw_j,
        )
        outcomes: List[PeriodOutcome] = []
        for index, hour in enumerate(trace):
            harvest = self.scenario.harvested_energy_j(hour.ghi_w_per_m2)
            budget = allocator.grant(harvest)
            allocation = policy.allocate(budget)
            outcome = device.run_period(allocation, index, budget)
            allocator.settle(harvest, outcome.energy_consumed_j)
            outcomes.append(outcome)
        return outcomes


__all__ = ["CampaignConfig", "HarvestingCampaign"]
