"""Runtime policies compared in the evaluation.

A *policy* decides, at the start of every activity period, how the period's
energy budget is spent across the available design points.  The evaluation
compares:

* :class:`ReapPolicy` -- the paper's contribution: solve the allocation LP.
* :class:`StaticPolicy` -- run one fixed design point until the budget runs
  out (the DP1..DP5 baselines of Figures 5-7).
* :class:`OnOffDutyCyclePolicy` -- the related-work baseline (Kansal-style
  duty cycling): the device only knows the *highest-accuracy* operating
  point and an off state, and picks the duty cycle that fits the budget.
  Functionally this coincides with the static policy for the chosen DP, but
  it is kept separate because it models a device with no notion of multiple
  design points.
* :class:`OraclePolicy` -- solves the same problem as REAP with the exact
  vertex-enumeration solver; used to sanity-check the runtime solver inside
  simulations.

All policies expose the same ``allocate(budget) -> TimeAllocation``
interface so the simulator can swap them freely.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.core import kernels
from repro.core.allocator import AllocatorConfig, ReapAllocator
from repro.core.analytic import solve_analytic
from repro.core.batch import BatchAllocator, BatchArrays, ConsumptionCurve
from repro.core.design_point import DesignPoint, validate_design_points
from repro.core.objective import validate_alpha
from repro.core.problem import ReapProblem, static_allocation
from repro.core.schedule import TimeAllocation
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W
from repro.planning.forecasts import (
    ForecastProvider,
    make_forecast_provider,
    validate_forecast_kind,
)
from repro.planning.horizon import (
    HorizonAverageAllocator,
    HorizonPlanner,
    MpcPlanner,
    validate_planner_kind,
)


class Policy(abc.ABC):
    """Base class for runtime energy-spending policies.

    ``backend`` selects the numeric backend of the policy's lazily built
    batch engine (``"numpy"``, ``"compiled"`` or ``"float32"``; see
    :mod:`repro.core.kernels`) -- campaigns thread one backend choice
    through every policy, battery scan and planner they build.
    """

    def __init__(
        self,
        design_points: Sequence[DesignPoint],
        alpha: float = 1.0,
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
        backend: str = "numpy",
    ) -> None:
        validate_design_points(design_points)
        self.design_points = tuple(design_points)
        self.alpha = validate_alpha(alpha)
        self.period_s = period_s
        self.off_power_w = off_power_w
        self.backend = kernels.validate_backend(backend)

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short policy name used in reports."""

    @abc.abstractmethod
    def allocate(self, energy_budget_j: float) -> TimeAllocation:
        """Decide how to spend one period's energy budget."""

    def allocate_many(self, budgets_j: Sequence[float]) -> List[TimeAllocation]:
        """Allocate one period per budget (a whole trace at once).

        The base implementation simply loops over :meth:`allocate`; policies
        whose decisions are independent across periods override this with the
        vectorized batch engine so month-long campaigns avoid one LP solve
        per hour.
        """
        return [self.allocate(budget) for budget in budgets_j]

    def allocate_arrays(self, budgets_j: Sequence[float]) -> BatchArrays:
        """Raw-array allocations for a whole budget vector (fleet fast path).

        The base implementation materialises :meth:`allocate_many` and packs
        the result, so *any* policy can feed the vectorized device
        accounting; policies backed by the batch engine override this with a
        pure array solve.
        """
        budgets = np.atleast_1d(np.asarray(budgets_j, dtype=float))
        allocations = self.allocate_many([float(b) for b in budgets])
        return BatchArrays(
            design_points=self.design_points,
            budgets_j=budgets,
            alpha=self.alpha,
            times_s=np.array([a.times_s for a in allocations]),
            feasible=np.array([a.budget_feasible for a in allocations]),
            objective=np.array([a.objective for a in allocations]),
            expected_accuracy=np.array([a.expected_accuracy for a in allocations]),
            active_time_s=np.array([a.active_time_s for a in allocations]),
            energy_j=np.array([a.energy_j for a in allocations]),
            period_s=self.period_s,
            off_power_w=self.off_power_w,
        )

    def consumption_curve(self) -> ConsumptionCurve:
        """Period consumption as a piecewise-linear function of the budget.

        Needed by the closed-loop fleet engine, whose battery scan evaluates
        consumption without solving per-period allocations.  Policies that
        cannot provide a closed form raise ``NotImplementedError``; the
        campaign then falls back to the scalar reference loop for them.
        The curve is built once per policy and cached (policies treat their
        parameters as fixed, like the shared batch engine).
        """
        curve = getattr(self, "_curve", None)
        if curve is None:
            curve = self._build_consumption_curve()
            self._curve = curve
        return curve

    def _build_consumption_curve(self) -> ConsumptionCurve:
        """Construct the curve (overridden by batch-engine-backed policies)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not provide a closed-form "
            "consumption-of-budget curve"
        )

    def reset(self) -> None:
        """Clear any internal state between campaigns (default: nothing)."""

    def __getstate__(self):
        """Pickle without the transient engine/curve bindings.

        The batch engine (solve tables, vertex structure) and the cached
        consumption curve are derived entirely from the policy's
        parameters; shipping them to worker processes would bloat every
        campaign context, and the receiving process rebinds through the
        shared-engine registry anyway.
        """
        state = dict(self.__dict__)
        state.pop("_batch", None)
        state.pop("_curve", None)
        return state

    def _batch_engine(self) -> BatchAllocator:
        """Shared (lazily bound) batch engine over this policy's parameters.

        Bound through :meth:`BatchAllocator.shared`, so every policy in
        the process with the same engine key -- all the alphas of a sweep,
        all the cells a warm campaign worker runs -- reuses one vertex
        structure, one set of solve tables and one consumption curve per
        alpha.  The binding is also re-established after unpickling
        (workers receive policies without the transient ``_batch``
        attribute), which is exactly when sharing pays off.
        """
        engine = getattr(self, "_batch", None)
        if engine is None:
            engine = BatchAllocator.shared(
                self.design_points,
                period_s=self.period_s,
                off_power_w=self.off_power_w,
                backend=self.backend,
            )
            self._batch = engine
        return engine

    def build_problem(self, energy_budget_j: float) -> ReapProblem:
        """Build the optimisation problem describing one period."""
        return ReapProblem(
            design_points=self.design_points,
            energy_budget_j=energy_budget_j,
            period_s=self.period_s,
            alpha=self.alpha,
            off_power_w=self.off_power_w,
        )


class ReapPolicy(Policy):
    """The REAP runtime: optimal multi-design-point allocation."""

    def __init__(
        self,
        design_points: Sequence[DesignPoint],
        alpha: float = 1.0,
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
        allocator: Optional[ReapAllocator] = None,
        backend: str = "numpy",
    ) -> None:
        super().__init__(design_points, alpha, period_s, off_power_w, backend=backend)
        self.allocator = allocator or ReapAllocator(AllocatorConfig())

    @property
    def name(self) -> str:
        return "REAP"

    def allocate(self, energy_budget_j: float) -> TimeAllocation:
        return self.allocator.solve(self.build_problem(energy_budget_j))

    def _batchable(self) -> bool:
        """Whether this policy's allocator semantics match the batch engine."""
        config = self.allocator.config
        return not (
            config.formulation == "full"
            or config.cross_check
            or not config.clip_infeasible
        )

    def allocate_many(self, budgets_j: Sequence[float]) -> List[TimeAllocation]:
        if not self._batchable():
            # Keep the exact scalar semantics the caller asked for (including
            # raising BudgetTooSmallError when clip_infeasible is disabled).
            return super().allocate_many(budgets_j)
        return self._batch_engine().solve_allocations(budgets_j, alpha=self.alpha)

    def allocate_arrays(self, budgets_j: Sequence[float]) -> BatchArrays:
        if not self._batchable():
            return super().allocate_arrays(budgets_j)
        return self._batch_engine().solve_arrays(budgets_j, alpha=self.alpha)

    def _build_consumption_curve(self) -> ConsumptionCurve:
        if not self._batchable():
            raise NotImplementedError(
                "custom allocator configurations keep the scalar campaign path"
            )
        return self._batch_engine().consumption_curve(alpha=self.alpha)


class OraclePolicy(Policy):
    """Exact (vertex-enumeration) solution of the REAP problem."""

    @property
    def name(self) -> str:
        return "Oracle"

    def allocate(self, energy_budget_j: float) -> TimeAllocation:
        return solve_analytic(self.build_problem(energy_budget_j))

    def allocate_many(self, budgets_j: Sequence[float]) -> List[TimeAllocation]:
        # The batch engine *is* the vectorized vertex enumeration.
        return self._batch_engine().solve_allocations(budgets_j, alpha=self.alpha)

    def allocate_arrays(self, budgets_j: Sequence[float]) -> BatchArrays:
        return self._batch_engine().solve_arrays(budgets_j, alpha=self.alpha)

    def _build_consumption_curve(self) -> ConsumptionCurve:
        return self._batch_engine().consumption_curve(alpha=self.alpha)


class StaticPolicy(Policy):
    """Always run one fixed design point; turn off when the budget runs out."""

    def __init__(
        self,
        design_points: Sequence[DesignPoint],
        static_name: str,
        alpha: float = 1.0,
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
        backend: str = "numpy",
    ) -> None:
        super().__init__(design_points, alpha, period_s, off_power_w, backend=backend)
        names = [dp.name for dp in self.design_points]
        if static_name not in names:
            raise KeyError(f"unknown design point {static_name!r}; have {names}")
        self.static_name = static_name

    @property
    def name(self) -> str:
        return f"Static-{self.static_name}"

    def allocate(self, energy_budget_j: float) -> TimeAllocation:
        return static_allocation(self.build_problem(energy_budget_j), self.static_name)

    def allocate_many(self, budgets_j: Sequence[float]) -> List[TimeAllocation]:
        return self._batch_engine().static_allocations(
            self.static_name, budgets_j, alpha=self.alpha
        )

    def allocate_arrays(self, budgets_j: Sequence[float]) -> BatchArrays:
        return self._batch_engine().static_arrays(
            self.static_name, budgets_j, alpha=self.alpha
        )

    def _build_consumption_curve(self) -> ConsumptionCurve:
        return self._batch_engine().static_consumption_curve(
            self.static_name, alpha=self.alpha
        )


class OnOffDutyCyclePolicy(Policy):
    """Related-work baseline: duty-cycle a single operating point.

    Models prior energy-management schemes that "choose between on and off
    power states" (Section 2): the device runs its single operating point for
    a duty-cycled fraction of the period chosen so the period's energy budget
    is met exactly, with no awareness of alternative design points.
    """

    def __init__(
        self,
        design_points: Sequence[DesignPoint],
        operating_point: Optional[str] = None,
        alpha: float = 1.0,
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
        backend: str = "numpy",
    ) -> None:
        super().__init__(design_points, alpha, period_s, off_power_w, backend=backend)
        if operating_point is None:
            # Default to the highest-accuracy point, as prior work ships the
            # most capable configuration it can build.
            operating_point = max(self.design_points, key=lambda dp: dp.accuracy).name
        names = [dp.name for dp in self.design_points]
        if operating_point not in names:
            raise KeyError(f"unknown design point {operating_point!r}; have {names}")
        self.operating_point = operating_point

    @property
    def name(self) -> str:
        return f"DutyCycle-{self.operating_point}"

    def allocate(self, energy_budget_j: float) -> TimeAllocation:
        return static_allocation(
            self.build_problem(energy_budget_j), self.operating_point
        )

    def allocate_many(self, budgets_j: Sequence[float]) -> List[TimeAllocation]:
        return self._batch_engine().static_allocations(
            self.operating_point, budgets_j, alpha=self.alpha
        )

    def allocate_arrays(self, budgets_j: Sequence[float]) -> BatchArrays:
        return self._batch_engine().static_arrays(
            self.operating_point, budgets_j, alpha=self.alpha
        )

    def _build_consumption_curve(self) -> ConsumptionCurve:
        return self._batch_engine().static_consumption_curve(
            self.operating_point, alpha=self.alpha
        )

    def duty_cycle(self, energy_budget_j: float) -> float:
        """The on-fraction chosen for the given budget (for reports)."""
        return self.allocate(energy_budget_j).active_fraction


class PlanningPolicy(ReapPolicy):
    """Forecast-driven REAP: budgets come from a horizon plan, not the harvest.

    In closed-loop (battery-backed) campaigns this policy's budgets are
    produced by the :mod:`repro.planning` subsystem instead of the
    harvest-following allocator: a forecast provider predicts the next
    ``horizon_periods`` of harvest and a horizon planner (the closed-form
    :class:`~repro.planning.horizon.HorizonAverageAllocator` or the
    receding-horizon :class:`~repro.planning.horizon.MpcPlanner`) turns
    each lookahead window plus the battery state into the period's budget.
    The allocation of each granted budget is plain REAP.  The fleet engine
    steps planning cells through the vectorized
    :class:`~repro.planning.scan.PlanScan`; the scalar engine runs
    :func:`repro.planning.reference.run_planning_scalar`.  Open-loop
    campaigns have no battery to plan against, so there this policy
    behaves exactly like :class:`ReapPolicy`.

    Parameters
    ----------
    planner:
        ``"horizon"`` (mean-forecast allocation) or ``"mpc"``
        (receding-horizon LP re-solving).
    horizon_periods:
        Lookahead window length W in activity periods.
    forecast:
        Forecast provider: ``"perfect"``, ``"persistence"`` or ``"noisy"``.
    forecast_noise / forecast_seed:
        Noise scale and RNG seed of the noisy-oracle provider (ignored by
        the others; the seed makes noisy runs bit-reproducible).
    mpc_passes / mpc_candidates:
        Grid-refinement depth and width of the MPC budget search.
    """

    def __init__(
        self,
        design_points: Sequence[DesignPoint],
        planner: str = "horizon",
        horizon_periods: int = 24,
        forecast: str = "perfect",
        forecast_noise: float = 0.2,
        forecast_seed: int = 7,
        mpc_passes: int = 3,
        mpc_candidates: int = 16,
        alpha: float = 1.0,
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
        backend: str = "numpy",
    ) -> None:
        # Planning needs the closed-form consumption curve and the batched
        # raw-array solves, so the default (batchable) allocator is fixed.
        super().__init__(design_points, alpha, period_s, off_power_w, backend=backend)
        self.planner = validate_planner_kind(planner)
        if horizon_periods < 1:
            raise ValueError(
                f"horizon must be >= 1 period, got {horizon_periods}"
            )
        self.horizon_periods = int(horizon_periods)
        self.forecast = validate_forecast_kind(forecast)
        if forecast_noise < 0:
            raise ValueError(
                f"forecast noise must be non-negative, got {forecast_noise}"
            )
        self.forecast_noise = float(forecast_noise)
        self.forecast_seed = int(forecast_seed)
        if mpc_passes < 1:
            raise ValueError(f"mpc_passes must be >= 1, got {mpc_passes}")
        if mpc_candidates < 3:
            raise ValueError(
                f"mpc_candidates must be >= 3, got {mpc_candidates}"
            )
        self.mpc_passes = int(mpc_passes)
        self.mpc_candidates = int(mpc_candidates)

    @property
    def name(self) -> str:
        label = "MPC" if self.planner == "mpc" else "Horizon"
        return f"{label}{self.horizon_periods}-{self.forecast}"

    @property
    def planner_key(self) -> tuple:
        """Grouping key: policies with equal keys share one plan scan."""
        key: tuple = (self.planner, self.horizon_periods)
        if self.planner == "mpc":
            key += (
                self.mpc_passes,
                self.mpc_candidates,
                float(self._batch_engine().max_useful_energy_j),
            )
        return key

    def build_planner(self) -> HorizonPlanner:
        """Materialise this policy's horizon planner."""
        if self.planner == "mpc":
            return MpcPlanner(
                self.horizon_periods,
                max_budget_j=self._batch_engine().max_useful_energy_j,
                passes=self.mpc_passes,
                candidates=self.mpc_candidates,
                backend=self.backend,
            )
        return HorizonAverageAllocator(self.horizon_periods, backend=self.backend)

    def forecast_provider(self) -> ForecastProvider:
        """Materialise this policy's forecast provider."""
        return make_forecast_provider(
            self.forecast,
            noise_std=self.forecast_noise,
            seed=self.forecast_seed,
        )


def default_policy_suite(
    design_points: Sequence[DesignPoint],
    alpha: float = 1.0,
    period_s: float = ACTIVITY_PERIOD_S,
    off_power_w: float = OFF_STATE_POWER_W,
    backend: str = "numpy",
) -> list:
    """REAP plus one static policy per design point (the Figure 5/6 line-up)."""
    policies: list = [
        ReapPolicy(
            design_points,
            alpha=alpha,
            period_s=period_s,
            off_power_w=off_power_w,
            backend=backend,
        )
    ]
    for dp in design_points:
        policies.append(
            StaticPolicy(
                design_points,
                dp.name,
                alpha=alpha,
                period_s=period_s,
                off_power_w=off_power_w,
                backend=backend,
            )
        )
    return policies


__all__ = [
    "OnOffDutyCyclePolicy",
    "OraclePolicy",
    "PlanningPolicy",
    "Policy",
    "ReapPolicy",
    "StaticPolicy",
    "default_policy_suite",
]
