"""Fleet campaign engine: whole grids of campaigns as array programs.

This module is the vectorized runtime behind
:class:`~repro.simulation.simulator.HarvestingCampaign`.  Where the scalar
reference steps one policy through one trace hour by hour
(``grant -> allocate -> run_period -> settle``), :class:`FleetCampaign`
simulates a whole grid of (scenario x policy x alpha) cells against a trace
in three vectorized stages:

1. **Budgets.**  Open-loop budgets are the per-scenario harvest vectors.
   Closed-loop budgets come from :class:`~repro.energy.fleet.BatteryScan`:
   one battery-charge vector covering every fleet cell, stepped per period
   in lockstep, with each policy's period consumption evaluated through its
   piecewise-linear :class:`~repro.core.batch.ConsumptionCurve` instead of
   a per-period LP solve.
2. **Allocations.**  Each cell's full budget column is solved in one
   :meth:`~repro.simulation.policies.Policy.allocate_arrays` call (the
   batch engine's raw-array path).
3. **Accounting.**  :meth:`~repro.simulation.device.DeviceSimulator.run_periods_batch`
   turns the per-DP time matrices into columnar campaign outcomes,
   reproducing the scalar window/energy/recognition accounting (including
   the sampled-mode RNG stream) exactly.

The scalar loop remains in :mod:`repro.simulation.simulator` as the
cross-checked reference; the equivalence suite asserts agreement to 1e-9 on
budgets, consumed energy, battery trajectories and recognition counts.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.core.batch import ConsumptionCurveError, StackedConsumptionCurves
from repro.energy.fleet import BatteryScan, BatteryScanResult
from repro.obs.profiling import PhaseProfiler
from repro.harvesting.solar_cell import HarvestScenario
from repro.harvesting.traces import SolarTrace
from repro.planning.scan import PlanScan
from repro.simulation.device import DeviceConfig, DeviceSimulator
from repro.simulation.metrics import (
    BINARY_FLOAT_DTYPES,
    CampaignColumns,
    CampaignResult,
)
from repro.simulation.policies import PlanningPolicy, Policy

#: Leading magic of the binary campaign wire format (see
#: :meth:`FleetResult.to_binary_frames`).
CAMPAIGN_BINARY_MAGIC = b"REAPCOL1"


def _binary_frame(blob: bytes) -> bytes:
    """One length-prefixed wire frame: little-endian uint64 size + payload."""
    return struct.pack("<Q", len(blob)) + blob


def _read_binary_frame(blob: bytes, offset: int, what: str) -> tuple:
    """Pop one length-prefixed frame; raises ValueError when truncated."""
    if len(blob) < offset + 8:
        raise ValueError(f"binary campaign stream truncated: missing {what} size")
    (size,) = struct.unpack_from("<Q", blob, offset)
    offset += 8
    if len(blob) < offset + size:
        raise ValueError(
            f"binary campaign stream truncated: {what} needs {size} bytes, "
            f"{len(blob) - offset} left"
        )
    return blob[offset:offset + size], offset + size


@dataclass
class CampaignConfig:
    """Configuration of a harvesting campaign simulation."""

    #: When True, budgets flow through a battery-backed energy allocator; the
    #: unspent part of each budget is banked and shortfalls draw the battery.
    use_battery: bool = False
    #: Battery capacity in joules (only used when ``use_battery``).
    battery_capacity_j: float = 60.0
    #: Initial battery charge in joules (negative means half full).
    battery_initial_j: float = -1.0
    #: Battery state-of-charge reserve: charge above this level is released
    #: to the load (so day-time surplus funds night-time operation), charge
    #: below it is retained.
    battery_target_soc: float = 0.35
    #: Maximum battery contribution to a single period's budget, in joules.
    battery_max_draw_j: float = 5.0
    #: Device simulation settings.
    device: DeviceConfig = field(default_factory=DeviceConfig)
    #: Numeric backend for the closed-loop scans: ``"numpy"`` (reference),
    #: ``"compiled"`` (Numba-jitted with graceful fallback) or ``"float32"``.
    #: Policies carry their own backend for the allocation stage (see
    #: :class:`~repro.simulation.policies.Policy`); this knob covers the
    #: battery/plan scans the campaign itself runs.
    backend: str = "numpy"


def policy_supports_fleet(policy: Policy, use_battery: bool) -> bool:
    """Whether the fleet engine can run ``policy`` end to end.

    Open-loop campaigns work for every policy (the array path falls back to
    the policy's own scalar allocator when needed); closed-loop campaigns
    additionally require a closed-form consumption curve for the battery
    scan.
    """
    if not use_battery:
        return True
    try:
        policy.consumption_curve()
    except (NotImplementedError, ConsumptionCurveError):
        return False
    return True


class FleetResult:
    """Results of one fleet run: a (scenario x policy) grid of campaigns."""

    def __init__(
        self,
        scenario_labels: Sequence[str],
        policies: Optional[Sequence[Policy]] = None,
        grid: Sequence[Sequence[CampaignResult]] = (),
        scan: Optional[BatteryScanResult] = None,
        trace_hours: int = 0,
        policy_names: Optional[Sequence[str]] = None,
        alphas: Optional[Sequence[float]] = None,
    ) -> None:
        self.scenario_labels = list(scenario_labels)
        if policies is not None:
            self.policy_names = [policy.name for policy in policies]
            self.alphas = [policy.alpha for policy in policies]
        else:
            # Reconstructed results (e.g. streamed back from the service)
            # carry names and alphas directly, no Policy objects in sight.
            if policy_names is None or alphas is None:
                raise ValueError(
                    "need either policies or (policy_names, alphas)"
                )
            self.policy_names = list(policy_names)
            self.alphas = [float(alpha) for alpha in alphas]
        self._grid = [list(row) for row in grid]
        #: Battery trajectories of the underlying scan (closed loop only).
        self.scan = scan
        self.trace_hours = trace_hours
        #: Wall-clock seconds per pipeline phase (harvest, scan_settle,
        #: cell_solve, merge, ...), filled in by :meth:`FleetCampaign.run`
        #: and the sharded runner; empty when nothing instrumented it.
        #: Deliberately not part of :meth:`meta_payload` -- the wire format
        #: is unchanged; the service ships it via ``CampaignResponse``.
        self.phase_timings: Dict[str, float] = {}
        #: Shared-memory blocks whose views back the grid's columns (see
        #: :meth:`adopt_arena`); empty for results that own their arrays.
        self._arena_blocks: List[Any] = []

    # --- arena lifecycle --------------------------------------------------------
    def adopt_arena(self, blocks: Iterable[Any]) -> None:
        """Take ownership of the shared-memory blocks backing this grid.

        The sharded runner's zero-copy path builds cell columns as NumPy
        views over :class:`~repro.service.arena.ArenaBlock` mappings; the
        result must keep those mappings alive for as long as its arrays
        are used, and :meth:`release` them when the result is dropped
        (e.g. ``DELETE /campaign/<id>``).
        """
        self._arena_blocks.extend(blocks)

    def release(self) -> None:
        """Release any adopted shared-memory blocks (idempotent).

        Blocks are already unlinked (names freed at attach time); this
        closes the parent's mappings so the pages themselves return to the
        OS.  Views still referencing a mapping defer the close to garbage
        collection -- see :meth:`repro.service.arena.ArenaBlock.close`.
        """
        blocks, self._arena_blocks = self._arena_blocks, []
        for block in blocks:
            block.close()

    @property
    def num_scenarios(self) -> int:
        """Number of swept harvest scenarios S."""
        return len(self.scenario_labels)

    @property
    def num_policies(self) -> int:
        """Number of swept policies P."""
        return len(self.policy_names)

    @property
    def num_cells(self) -> int:
        """Total number of simulated campaigns (S x P)."""
        return self.num_scenarios * self.num_policies

    def result(
        self, policy: Union[int, str], scenario_index: int = 0
    ) -> CampaignResult:
        """Campaign result of one cell, by policy index or name.

        Name lookup refuses ambiguous fleets (the same policy name at
        several alphas); address those cells by index instead.
        """
        if isinstance(policy, str):
            if self.policy_names.count(policy) > 1:
                raise ValueError(
                    f"policy name {policy!r} appears "
                    f"{self.policy_names.count(policy)} times in this fleet; "
                    "use the policy index"
                )
            policy = self.policy_names.index(policy)
        return self._grid[scenario_index][policy]

    def results(self, scenario_index: int = 0) -> Dict[str, CampaignResult]:
        """One scenario row as a name-keyed mapping (like ``run_many``).

        Mirrors ``HarvestingCampaign.run_many`` semantics, including its
        collapse of duplicate policy names (later entries win); use
        :meth:`result` with indices for fleets that repeat names.
        """
        return {
            name: result
            for name, result in zip(
                self.policy_names, self._grid[scenario_index]
            )
        }

    def __iter__(self):
        for scenario_index, row in enumerate(self._grid):
            for policy_index, result in enumerate(row):
                yield scenario_index, policy_index, result

    def cell_summaries(self) -> List[Dict[str, Any]]:
        """Scalar per-cell summaries (one dict per grid cell, grid order).

        This is the ``GET /campaign/<id>`` summary payload and the row
        source for fleet report tables; the full per-period columns travel
        separately via :meth:`cell_payloads`.
        """
        summaries = []
        for scenario_index, policy_index, result in self:
            battery = result.battery_charge_j
            summaries.append({
                "scenario": self.scenario_labels[scenario_index],
                "policy": result.policy_name,
                "alpha": float(result.alpha),
                "periods": len(result),
                "mean_objective": result.mean_objective,
                "mean_expected_accuracy": result.mean_expected_accuracy,
                "active_hours": result.total_active_time_s / 3600.0,
                "energy_j": result.total_energy_consumed_j,
                "recognition_rate": result.overall_recognition_rate,
                "final_battery_j": (
                    None if battery is None else float(battery[-1])
                ),
            })
        return summaries

    # --- wire codec -------------------------------------------------------------
    def meta_payload(self) -> Dict[str, Any]:
        """Grid-shape header of the campaign wire format."""
        return {
            "scenario_labels": list(self.scenario_labels),
            "policy_names": list(self.policy_names),
            "alphas": [float(alpha) for alpha in self.alphas],
            "trace_hours": int(self.trace_hours),
        }

    def cell_payloads(self) -> Iterator[Dict[str, Any]]:
        """One JSON-ready payload per (scenario, policy) cell, in grid order.

        This is what the service streams back for
        ``GET /campaign/<id>/columns``: each payload carries the cell's
        :class:`~repro.simulation.metrics.CampaignColumns` (list-based
        results are packed into columns first) plus its battery
        trajectory, losslessly.
        """
        for scenario_index, policy_index, result in self:
            columns = result.columns
            if columns is None:
                columns = CampaignColumns.from_outcomes(result.outcomes)
            battery = result.battery_charge_j
            yield {
                "scenario_index": scenario_index,
                "policy_index": policy_index,
                "policy_name": result.policy_name,
                "alpha": float(result.alpha),
                "columns": columns.to_json_dict(),
                "battery_charge_j": (
                    None if battery is None else [float(v) for v in battery]
                ),
            }

    def to_binary_frames(
        self, dtype: str = "<f8", compress: bool = True
    ) -> Iterator[bytes]:
        """Stream the campaign as the binary columnar wire format.

        Yields, in order: the :data:`CAMPAIGN_BINARY_MAGIC` bytes, one
        length-prefixed JSON meta frame (grid shape plus ``dtype``,
        ``codec`` and ``num_cells``), then per grid cell a length-prefixed
        JSON cell header, a length-prefixed
        :meth:`CampaignColumns.to_bytes` frame and -- when the cell
        carries a battery trajectory -- one ``<f8`` frame (zlib-deflated
        when ``compress``, which is the default).  At float64 the stream
        decodes to a grid byte-exactly equal to the NDJSON codec's;
        ``"<f4"`` halves the float payload for lossy transport.

        The raw codec (``compress=False``) is zero-copy: column frames
        are yielded as memoryview slices of the cells' existing buffers
        (for arena-backed results, the shared-memory pages themselves),
        so consumers must either write each chunk out immediately or copy
        it -- and must not outlive :meth:`release`.
        """

        def chunk_nbytes(chunk) -> int:
            # memoryview __len__ counts elements, not bytes; the column
            # chunks are cast to "B" already but don't rely on it.
            return chunk.nbytes if isinstance(chunk, memoryview) else len(chunk)

        if dtype not in BINARY_FLOAT_DTYPES:
            raise ValueError(
                f"unsupported binary dtype {dtype!r}; "
                f"expected one of {BINARY_FLOAT_DTYPES}"
            )
        yield CAMPAIGN_BINARY_MAGIC
        meta = dict(self.meta_payload())
        meta["dtype"] = dtype
        meta["codec"] = "zlib" if compress else "raw"
        meta["num_cells"] = self.num_cells
        yield _binary_frame(json.dumps(meta, separators=(",", ":")).encode("utf-8"))
        for scenario_index, policy_index, result in self:
            columns = result.columns
            if columns is None:
                columns = CampaignColumns.from_outcomes(result.outcomes)
            battery = result.battery_charge_j
            header = {
                "scenario_index": scenario_index,
                "policy_index": policy_index,
                "policy_name": result.policy_name,
                "alpha": float(result.alpha),
                "has_battery": battery is not None,
                "battery_len": 0 if battery is None else int(battery.size),
            }
            yield _binary_frame(
                json.dumps(header, separators=(",", ":")).encode("utf-8")
            )
            column_chunks = list(columns.to_bytes_chunks(dtype, compress=compress))
            yield struct.pack(
                "<Q", sum(chunk_nbytes(chunk) for chunk in column_chunks)
            )
            yield from column_chunks
            if battery is not None:
                if compress:
                    blob = np.ascontiguousarray(battery, dtype="<f8").tobytes()
                    yield _binary_frame(zlib.compress(blob, 6))
                elif (
                    battery.dtype == np.dtype("<f8")
                    and battery.flags.c_contiguous
                ):
                    yield struct.pack("<Q", battery.nbytes)
                    yield memoryview(battery).cast("B")
                else:
                    yield _binary_frame(
                        np.ascontiguousarray(battery, dtype="<f8").tobytes()
                    )

    @classmethod
    def from_binary(cls, blob: bytes) -> "FleetResult":
        """Decode one buffered :meth:`to_binary_frames` stream.

        Raises :class:`ValueError` on a bad magic, truncated frames or a
        cell count that disagrees with the meta frame.
        """
        magic = blob[: len(CAMPAIGN_BINARY_MAGIC)]
        if magic != CAMPAIGN_BINARY_MAGIC:
            raise ValueError(
                f"binary campaign stream has bad magic {magic!r}; "
                f"expected {CAMPAIGN_BINARY_MAGIC!r}"
            )
        offset = len(CAMPAIGN_BINARY_MAGIC)
        meta_blob, offset = _read_binary_frame(blob, offset, "meta frame")
        try:
            meta = json.loads(meta_blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"malformed binary meta frame: {error}") from error
        num_cells = int(meta.get("num_cells", -1))
        if num_cells < 0:
            raise ValueError("malformed binary meta frame: bad num_cells")
        codec = meta.get("codec", "raw")
        if codec not in ("raw", "zlib"):
            raise ValueError(f"unsupported binary codec {codec!r} in meta frame")
        cells: List[Dict[str, Any]] = []
        for index in range(num_cells):
            head_blob, offset = _read_binary_frame(
                blob, offset, f"cell {index} header"
            )
            try:
                head = json.loads(head_blob.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ValueError(
                    f"malformed binary cell header {index}: {error}"
                ) from error
            columns_blob, offset = _read_binary_frame(
                blob, offset, f"cell {index} columns"
            )
            columns = CampaignColumns.from_bytes(columns_blob)
            battery = None
            if head.get("has_battery"):
                battery_blob, offset = _read_binary_frame(
                    blob, offset, f"cell {index} battery"
                )
                if codec == "zlib":
                    try:
                        battery_blob = zlib.decompress(battery_blob)
                    except zlib.error as error:
                        raise ValueError(
                            f"binary cell {index} battery frame truncated "
                            f"or corrupt: {error}"
                        ) from error
                expected = int(head.get("battery_len", 0)) * 8
                if len(battery_blob) != expected:
                    raise ValueError(
                        f"binary cell {index} battery frame has "
                        f"{len(battery_blob)} bytes, expected {expected}"
                    )
                battery = np.frombuffer(battery_blob, dtype="<f8").astype(float)
            cells.append({
                "scenario_index": int(head["scenario_index"]),
                "policy_index": int(head["policy_index"]),
                "policy_name": str(head["policy_name"]),
                "alpha": float(head["alpha"]),
                "columns": columns,
                "battery_charge_j": battery,
            })
        if offset != len(blob):
            raise ValueError(
                f"binary campaign stream has {len(blob) - offset} trailing bytes"
            )
        labels = list(meta["scenario_labels"])
        names = list(meta["policy_names"])
        grid: List[List[Optional[CampaignResult]]] = [
            [None] * len(names) for _ in labels
        ]
        for payload in cells:
            grid[payload["scenario_index"]][payload["policy_index"]] = (
                CampaignResult.from_columns(
                    payload["policy_name"],
                    payload["alpha"],
                    payload["columns"],
                    battery_charge_j=payload["battery_charge_j"],
                )
            )
        missing = [
            (scenario_index, policy_index)
            for scenario_index, row in enumerate(grid)
            for policy_index, value in enumerate(row)
            if value is None
        ]
        if missing:
            raise ValueError(f"binary campaign stream left cells unfilled: {missing}")
        return cls(
            scenario_labels=labels,
            grid=grid,
            scan=None,
            trace_hours=int(meta["trace_hours"]),
            policy_names=names,
            alphas=[float(alpha) for alpha in meta["alphas"]],
        )

    @classmethod
    def from_payloads(
        cls, meta: Dict[str, Any], cells: Iterable[Dict[str, Any]]
    ) -> "FleetResult":
        """Rebuild a result from :meth:`meta_payload` + :meth:`cell_payloads`.

        The reconstructed grid matches the original to floating-point
        round-off (the codec is lossless); :attr:`scan` is ``None`` --
        battery trajectories live on the cell results.
        """
        labels = list(meta["scenario_labels"])
        names = list(meta["policy_names"])
        grid: List[List[Optional[CampaignResult]]] = [
            [None] * len(names) for _ in labels
        ]
        for payload in cells:
            battery = payload.get("battery_charge_j")
            cell = CampaignResult.from_columns(
                str(payload["policy_name"]),
                float(payload["alpha"]),
                CampaignColumns.from_json_dict(payload["columns"]),
                battery_charge_j=(
                    None if battery is None else np.asarray(battery, dtype=float)
                ),
            )
            grid[int(payload["scenario_index"])][
                int(payload["policy_index"])
            ] = cell
        missing = [
            (scenario_index, policy_index)
            for scenario_index, row in enumerate(grid)
            for policy_index, value in enumerate(row)
            if value is None
        ]
        if missing:  # a partial stream must not masquerade as a full grid
            raise ValueError(f"campaign stream left cells unfilled: {missing}")
        return cls(
            scenario_labels=labels,
            grid=grid,
            scan=None,
            trace_hours=int(meta["trace_hours"]),
            policy_names=names,
            alphas=[float(alpha) for alpha in meta["alphas"]],
        )


class FleetCampaign:
    """Runs grids of (scenario x policy) campaigns through the array engine.

    Parameters
    ----------
    scenarios:
        One :class:`HarvestScenario` or a sequence of scenario variants
        (e.g. different wearable exposure factors); every policy runs
        against every scenario.
    config:
        Campaign settings shared by all cells (battery, device simulation).
    scenario_labels:
        Optional display names for the scenario axis.
    """

    def __init__(
        self,
        scenarios: Union[HarvestScenario, Sequence[HarvestScenario]],
        config: Optional[CampaignConfig] = None,
        scenario_labels: Optional[Sequence[str]] = None,
    ) -> None:
        if isinstance(scenarios, HarvestScenario):
            scenarios = [scenarios]
        if not scenarios:
            raise ValueError("need at least one harvest scenario")
        self.scenarios = list(scenarios)
        self.config = config or CampaignConfig()
        if scenario_labels is None:
            scenario_labels = [f"S{index}" for index in range(len(self.scenarios))]
        if len(scenario_labels) != len(self.scenarios):
            raise ValueError(
                f"{len(scenario_labels)} labels for {len(self.scenarios)} scenarios"
            )
        self.scenario_labels = list(scenario_labels)

    # -----------------------------------------------------------------------------
    def _harvest_matrix(self, trace: SolarTrace) -> np.ndarray:
        """(H, S) harvested energy per period for every scenario."""
        columns = [
            [scenario.harvested_energy_j(hour.ghi_w_per_m2) for hour in trace]
            for scenario in self.scenarios
        ]
        return np.array(columns).T

    def _battery_fleet(self, policies: Sequence[Policy]) -> BatteryScan:
        """One battery-state vector covering every (scenario, policy) cell.

        Device order is scenario-major: ``d = s * P + p``.  Scenarios may
        carry their own battery (capacity, initial charge); the
        per-scenario values spread across that scenario's policy cells.
        """
        num_scenarios = len(self.scenarios)
        num_policies = len(policies)
        capacity = np.repeat(
            [
                scenario.battery_capacity_j
                if scenario.battery_capacity_j is not None
                else self.config.battery_capacity_j
                for scenario in self.scenarios
            ],
            num_policies,
        )
        initial = np.repeat(
            [
                scenario.battery_initial_j
                if scenario.battery_initial_j is not None
                else self.config.battery_initial_j
                for scenario in self.scenarios
            ],
            num_policies,
        )
        return BatteryScan(
            num_devices=num_scenarios * num_policies,
            capacity_j=capacity,
            initial_charge_j=initial,
            target_soc=self.config.battery_target_soc,
            max_draw_j=self.config.battery_max_draw_j,
            backend=self.config.backend,
        )

    def _battery_scan(
        self, policies: Sequence[Policy], harvest: np.ndarray
    ) -> BatteryScanResult:
        """Run the lockstep battery scan over every (scenario, policy) cell."""
        curves = [policy.consumption_curve() for policy in policies]
        stacked = StackedConsumptionCurves(curves * len(self.scenarios))
        per_device_harvest = np.repeat(harvest, len(policies), axis=1)
        return self._battery_fleet(policies).run(per_device_harvest, stacked)

    def _plan_scan(
        self, policies: Sequence[PlanningPolicy], harvest: np.ndarray
    ) -> BatteryScanResult:
        """Run one lockstep planning scan over a same-planner policy group.

        All policies in the group share one planner configuration
        (:attr:`PlanningPolicy.planner_key`); forecasts may differ per
        cell -- they are data, stacked into one (H, W, D) tensor.
        """
        num_policies = len(policies)
        horizon = policies[0].horizon_periods
        curves = [policy.consumption_curve() for policy in policies]
        stacked = StackedConsumptionCurves(curves * len(self.scenarios))
        num_periods = harvest.shape[0]
        num_devices = len(self.scenarios) * num_policies
        forecast = np.empty((num_periods, horizon, num_devices))
        for scenario_index in range(len(self.scenarios)):
            column = harvest[:, scenario_index]
            for policy_index, policy in enumerate(policies):
                device = scenario_index * num_policies + policy_index
                forecast[:, :, device] = policy.forecast_provider().matrix(
                    column, horizon
                )
        per_device_harvest = np.repeat(harvest, num_policies, axis=1)
        scan = PlanScan(policies[0].build_planner(), self._battery_fleet(policies))
        return scan.run(per_device_harvest, forecast, stacked)

    def run(
        self,
        policies: Sequence[Policy],
        trace: SolarTrace,
        profiler: Optional[PhaseProfiler] = None,
    ) -> FleetResult:
        """Simulate every (scenario, policy) cell over ``trace``.

        ``profiler`` accumulates per-phase wall-clock seconds (a private
        one is used when omitted); the breakdown lands on the returned
        result's :attr:`FleetResult.phase_timings` either way, so
        ``repro fleet --profile`` and the service's per-phase histograms
        cost one ``perf_counter`` pair per phase, not a flag.
        """
        policies = list(policies)
        if not policies:
            raise ValueError("need at least one policy")
        if profiler is None:
            profiler = PhaseProfiler()
        with profiler.phase("harvest"):
            harvest = self._harvest_matrix(trace)                  # (H, S)

        # Closed-loop budgets: harvest-following cells share one lockstep
        # battery scan; forecast-driven (planning) cells run one PlanScan
        # per planner group.  cell_traces maps (scenario, policy) to that
        # cell's (budgets, battery trajectory).
        scan: Optional[BatteryScanResult] = None
        cell_traces: Dict[tuple, tuple] = {}
        if self.config.use_battery:
            with profiler.phase("scan_settle"):
                base = [
                    (index, policy)
                    for index, policy in enumerate(policies)
                    if not isinstance(policy, PlanningPolicy)
                ]
                groups: Dict[tuple, List[tuple]] = {}
                for index, policy in enumerate(policies):
                    if isinstance(policy, PlanningPolicy):
                        groups.setdefault(policy.planner_key, []).append(
                            (index, policy)
                        )
                if base:
                    base_scan = self._battery_scan(
                        [p for _, p in base], harvest
                    )
                    if not groups:
                        scan = base_scan  # whole-fleet scan, as before
                    self._record_cell_traces(cell_traces, base, base_scan)
                for members in groups.values():
                    group_scan = self._plan_scan(
                        [p for _, p in members], harvest
                    )
                    self._record_cell_traces(cell_traces, members, group_scan)

        grid: List[List[CampaignResult]] = []
        with profiler.phase("cell_solve"):
            for scenario_index in range(len(self.scenarios)):
                row: List[CampaignResult] = []
                for policy_index, policy in enumerate(policies):
                    if self.config.use_battery:
                        budgets, battery = cell_traces[
                            (scenario_index, policy_index)
                        ]
                    else:
                        budgets = harvest[:, scenario_index]
                        battery = None
                    policy.reset()
                    arrays = policy.allocate_arrays(budgets)
                    simulator = DeviceSimulator(self.config.device)
                    columns = simulator.run_periods_batch(arrays, budgets)
                    row.append(
                        CampaignResult.from_columns(
                            policy.name,
                            policy.alpha,
                            columns,
                            battery_charge_j=battery,
                        )
                    )
                grid.append(row)
        with profiler.phase("merge"):
            result = FleetResult(
                scenario_labels=self.scenario_labels,
                policies=policies,
                grid=grid,
                scan=scan,
                trace_hours=len(trace),
            )
        result.phase_timings = profiler.as_dict()
        return result

    def _record_cell_traces(
        self,
        cell_traces: Dict[tuple, tuple],
        members: Sequence[tuple],
        scan: BatteryScanResult,
    ) -> None:
        """Map a sub-fleet scan's device columns back to grid cells.

        ``members`` is the scan's policy axis as (grid policy index,
        policy) pairs; the scan's device order is scenario-major over that
        axis.
        """
        width = len(members)
        for scenario_index in range(len(self.scenarios)):
            for column, (policy_index, _) in enumerate(members):
                device = scenario_index * width + column
                cell_traces[(scenario_index, policy_index)] = (
                    scan.budgets_j[:, device],
                    scan.charge_j[:, device],
                )


__all__ = [
    "CAMPAIGN_BINARY_MAGIC",
    "CampaignConfig",
    "FleetCampaign",
    "FleetResult",
    "policy_supports_fleet",
]
