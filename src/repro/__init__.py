"""repro: reproduction of REAP (DAC 2019).

REAP is a runtime energy-accuracy optimisation framework for energy
harvesting IoT devices.  This package reproduces the paper end-to-end in
Python: the allocation LP and its on-device simplex solver, the human
activity recognition (HAR) application with its 24 design points, the energy
and harvesting models, a trace-driven device simulator and the experiment
harness that regenerates every table and figure of the evaluation.

Quickstart
----------
>>> from repro import ReapController, table2_design_points
>>> controller = ReapController(table2_design_points(), alpha=1.0)
>>> allocation = controller.allocate(energy_budget_j=5.0)
>>> sorted(name for name, t in allocation.as_dict().items() if t > 0)
['DP4', 'DP5']
"""

from repro.core import (
    AllocationSeries,
    AllocatorConfig,
    BatchAllocator,
    BatchGridResult,
    DesignPoint,
    LPStatus,
    LinearProgram,
    PivotRule,
    ReapAllocator,
    ReapController,
    ReapProblem,
    SimplexSolver,
    StaticController,
    TimeAllocation,
    pareto_front,
    simplex_max_leq,
    solve_analytic,
    static_allocation,
)
from repro.data import (
    ACTIVITY_PERIOD_S,
    OFF_STATE_POWER_W,
    PaperClaims,
    table2_design_points,
)

__version__ = "1.0.0"

__all__ = [
    "ACTIVITY_PERIOD_S",
    "AllocationSeries",
    "AllocatorConfig",
    "BatchAllocator",
    "BatchGridResult",
    "DesignPoint",
    "LPStatus",
    "LinearProgram",
    "OFF_STATE_POWER_W",
    "PaperClaims",
    "PivotRule",
    "ReapAllocator",
    "ReapController",
    "ReapProblem",
    "SimplexSolver",
    "StaticController",
    "TimeAllocation",
    "__version__",
    "pareto_front",
    "simplex_max_leq",
    "solve_analytic",
    "static_allocation",
    "table2_design_points",
]
