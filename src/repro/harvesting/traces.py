"""Solar irradiance trace containers and loaders.

The paper drives its month-long case study with global horizontal irradiance
(GHI) measured by the NREL Solar Radiation Research Laboratory in Golden,
Colorado.  We cannot ship that data, so the reproduction uses the synthetic
generator in :mod:`repro.harvesting.solar` by default; this module defines
the trace container both paths produce and a loader for NREL-style CSV
exports so the real data can be dropped in when available.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TraceHour:
    """One hour of a solar trace."""

    day_of_year: int
    hour_of_day: int
    ghi_w_per_m2: float

    def __post_init__(self) -> None:
        if not 1 <= self.day_of_year <= 366:
            raise ValueError(f"day_of_year must be in [1, 366], got {self.day_of_year}")
        if not 0 <= self.hour_of_day <= 23:
            raise ValueError(f"hour_of_day must be in [0, 23], got {self.hour_of_day}")
        if self.ghi_w_per_m2 < 0:
            raise ValueError(f"irradiance must be non-negative, got {self.ghi_w_per_m2}")

    @property
    def label(self) -> str:
        """Readable hour label, e.g. ``"d245h13"``."""
        return f"d{self.day_of_year:03d}h{self.hour_of_day:02d}"


class SolarTrace:
    """A sequence of hourly irradiance values."""

    def __init__(self, hours: Sequence[TraceHour], name: str = "") -> None:
        if not hours:
            raise ValueError("trace must contain at least one hour")
        self.hours: List[TraceHour] = list(hours)
        self.name = name

    def __len__(self) -> int:
        return len(self.hours)

    def __iter__(self) -> Iterator[TraceHour]:
        return iter(self.hours)

    def __getitem__(self, index: int) -> TraceHour:
        return self.hours[index]

    # --- views --------------------------------------------------------------------
    @property
    def ghi(self) -> np.ndarray:
        """Irradiance values as an array (W/m^2)."""
        return np.array([hour.ghi_w_per_m2 for hour in self.hours])

    @property
    def labels(self) -> List[str]:
        """Hour labels aligned with :attr:`ghi`."""
        return [hour.label for hour in self.hours]

    @property
    def num_days(self) -> int:
        """Number of distinct days covered by the trace."""
        return len({hour.day_of_year for hour in self.hours})

    def daily_totals(self) -> List[Tuple[int, float]]:
        """Sum of irradiance per day (day_of_year, Wh/m^2 equivalent)."""
        totals: dict = {}
        for hour in self.hours:
            totals[hour.day_of_year] = totals.get(hour.day_of_year, 0.0) + hour.ghi_w_per_m2
        return sorted(totals.items())

    def slice_days(self, first_day: int, last_day: int) -> "SolarTrace":
        """Return the sub-trace covering ``first_day`` .. ``last_day`` inclusive."""
        if first_day > last_day:
            raise ValueError("first_day must not exceed last_day")
        selected = [h for h in self.hours if first_day <= h.day_of_year <= last_day]
        if not selected:
            raise ValueError(
                f"no hours between day {first_day} and day {last_day} in this trace"
            )
        return SolarTrace(selected, name=f"{self.name}[d{first_day}-d{last_day}]")

    def daytime_hours(self, threshold_w_per_m2: float = 1.0) -> "SolarTrace":
        """Return only the hours with irradiance above ``threshold_w_per_m2``."""
        selected = [h for h in self.hours if h.ghi_w_per_m2 > threshold_w_per_m2]
        if not selected:
            raise ValueError("trace has no daytime hours above the threshold")
        return SolarTrace(selected, name=f"{self.name}[day]")

    # --- construction ---------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        days: Sequence[int],
        hours: Sequence[int],
        ghi: Sequence[float],
        name: str = "",
    ) -> "SolarTrace":
        """Build a trace from parallel arrays."""
        if not (len(days) == len(hours) == len(ghi)):
            raise ValueError("days, hours and ghi must have the same length")
        trace_hours = [
            TraceHour(int(d), int(h), max(0.0, float(g)))
            for d, h, g in zip(days, hours, ghi)
        ]
        return cls(trace_hours, name=name)


def load_nrel_csv(
    path: str,
    day_column: str = "DOY",
    hour_column: str = "HOUR",
    ghi_column: str = "GHI",
    name: Optional[str] = None,
) -> SolarTrace:
    """Load an hourly NREL-style CSV export.

    The expected format is one row per hour with integer day-of-year and
    hour-of-day columns and a GHI column in W/m^2.  Rows with missing or
    negative GHI (sensor glitches are reported as negative values in the raw
    BMS exports) are clamped to zero.
    """
    trace_hours: List[TraceHour] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"{path} has no CSV header")
        for column in (day_column, hour_column, ghi_column):
            if column not in reader.fieldnames:
                raise ValueError(
                    f"{path} is missing column {column!r}; found {reader.fieldnames}"
                )
        for row in reader:
            raw_ghi = row[ghi_column].strip()
            ghi = float(raw_ghi) if raw_ghi else 0.0
            trace_hours.append(
                TraceHour(
                    day_of_year=int(float(row[day_column])),
                    hour_of_day=int(float(row[hour_column])) % 24,
                    ghi_w_per_m2=max(0.0, ghi),
                )
            )
    if not trace_hours:
        raise ValueError(f"{path} contains no data rows")
    return SolarTrace(trace_hours, name=name or path)


__all__ = ["SolarTrace", "TraceHour", "load_nrel_csv"]
