"""Synthetic solar irradiance generator.

Stands in for the NREL Solar Radiation Research Laboratory measurements the
paper uses (Golden, Colorado, 2015-2018).  The generator combines:

* a clear-sky model -- solar declination and elevation for the site's
  latitude and the Haurwitz clear-sky global horizontal irradiance; and
* a cloud process -- a per-day clearness index drawn from a three-state
  (clear / partly cloudy / overcast) mixture with hour-to-hour fluctuation,
  driven by a seeded RNG so traces are reproducible.

The result is an hourly GHI trace with the diurnal and day-to-day structure
the evaluation needs: strong clear days, weak overcast days, zero harvest at
night.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.harvesting.traces import SolarTrace, TraceHour

#: Latitude of the NREL Solar Radiation Research Laboratory (Golden, CO).
GOLDEN_COLORADO_LATITUDE_DEG: float = 39.74

#: Day-of-year for the first day of each month (non-leap year).
_MONTH_START_DOY = {
    1: 1, 2: 32, 3: 60, 4: 91, 5: 121, 6: 152,
    7: 182, 8: 213, 9: 244, 10: 274, 11: 305, 12: 335,
}
_MONTH_LENGTHS = {
    1: 31, 2: 28, 3: 31, 4: 30, 5: 31, 6: 30,
    7: 31, 8: 31, 9: 30, 10: 31, 11: 30, 12: 31,
}


def solar_declination_rad(day_of_year: int) -> float:
    """Solar declination angle for a given day of the year (Cooper's formula)."""
    if not 1 <= day_of_year <= 366:
        raise ValueError(f"day_of_year must be in [1, 366], got {day_of_year}")
    return math.radians(23.45) * math.sin(2.0 * math.pi * (284 + day_of_year) / 365.0)


def solar_elevation_rad(
    day_of_year: int,
    hour_of_day: float,
    latitude_deg: float = GOLDEN_COLORADO_LATITUDE_DEG,
) -> float:
    """Solar elevation angle (radians) at local solar time ``hour_of_day``."""
    if not 0.0 <= hour_of_day < 24.0:
        raise ValueError(f"hour_of_day must be in [0, 24), got {hour_of_day}")
    latitude = math.radians(latitude_deg)
    declination = solar_declination_rad(day_of_year)
    hour_angle = math.radians(15.0 * (hour_of_day - 12.0))
    sin_elevation = (
        math.sin(latitude) * math.sin(declination)
        + math.cos(latitude) * math.cos(declination) * math.cos(hour_angle)
    )
    return math.asin(max(-1.0, min(1.0, sin_elevation)))


def clear_sky_ghi(
    day_of_year: int,
    hour_of_day: float,
    latitude_deg: float = GOLDEN_COLORADO_LATITUDE_DEG,
) -> float:
    """Haurwitz clear-sky global horizontal irradiance in W/m^2."""
    elevation = solar_elevation_rad(day_of_year, hour_of_day, latitude_deg)
    sin_elevation = math.sin(elevation)
    if sin_elevation <= 0.0:
        return 0.0
    return 1098.0 * sin_elevation * math.exp(-0.057 / sin_elevation)


@dataclass(frozen=True)
class CloudModel:
    """Three-state daily cloud mixture with intra-day fluctuation.

    Each day is classified as clear, partly cloudy or overcast with the given
    probabilities; the day draws a base clearness index from the matching
    range, and every hour multiplies it by a bounded random fluctuation.
    """

    p_clear: float = 0.55
    p_partly: float = 0.30
    clear_range: Tuple[float, float] = (0.75, 0.95)
    partly_range: Tuple[float, float] = (0.40, 0.70)
    overcast_range: Tuple[float, float] = (0.08, 0.35)
    hourly_jitter: float = 0.12

    def __post_init__(self) -> None:
        if not 0 <= self.p_clear <= 1 or not 0 <= self.p_partly <= 1:
            raise ValueError("state probabilities must be in [0, 1]")
        if self.p_clear + self.p_partly > 1.0 + 1e-9:
            raise ValueError("p_clear + p_partly must not exceed 1")
        if not 0 <= self.hourly_jitter < 1:
            raise ValueError("hourly_jitter must be in [0, 1)")

    def sample_day_clearness(self, rng: np.random.Generator) -> float:
        """Draw the base clearness index for one day."""
        state = rng.uniform()
        if state < self.p_clear:
            low, high = self.clear_range
        elif state < self.p_clear + self.p_partly:
            low, high = self.partly_range
        else:
            low, high = self.overcast_range
        return float(rng.uniform(low, high))

    def hourly_clearness(
        self, base: float, num_hours: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-hour clearness values around the daily base."""
        jitter = rng.uniform(1.0 - self.hourly_jitter, 1.0 + self.hourly_jitter, num_hours)
        return np.clip(base * jitter, 0.0, 1.0)


@dataclass(frozen=True)
class SyntheticSolarModel:
    """Generates reproducible synthetic hourly GHI traces."""

    latitude_deg: float = GOLDEN_COLORADO_LATITUDE_DEG
    clouds: CloudModel = CloudModel()
    seed: int = 2015

    def generate_days(
        self,
        first_day_of_year: int,
        num_days: int,
        seed: Optional[int] = None,
    ) -> SolarTrace:
        """Generate ``num_days`` consecutive days starting at ``first_day_of_year``."""
        if num_days < 1:
            raise ValueError(f"num_days must be >= 1, got {num_days}")
        rng = np.random.default_rng(self.seed if seed is None else seed)
        hours: List[TraceHour] = []
        for offset in range(num_days):
            day = (first_day_of_year - 1 + offset) % 365 + 1
            base = self.clouds.sample_day_clearness(rng)
            clearness = self.clouds.hourly_clearness(base, 24, rng)
            for hour in range(24):
                ghi = clear_sky_ghi(day, hour + 0.5, self.latitude_deg) * clearness[hour]
                hours.append(TraceHour(day, hour, float(max(0.0, ghi))))
        return SolarTrace(hours, name=f"synthetic-d{first_day_of_year}x{num_days}")

    def generate_month(self, month: int, seed: Optional[int] = None) -> SolarTrace:
        """Generate a full calendar month (non-leap year day numbering)."""
        if month not in _MONTH_START_DOY:
            raise ValueError(f"month must be in 1..12, got {month}")
        trace = self.generate_days(
            _MONTH_START_DOY[month], _MONTH_LENGTHS[month], seed=seed
        )
        return SolarTrace(list(trace), name=f"synthetic-month{month:02d}")

    def generate_september(self, seed: Optional[int] = None) -> SolarTrace:
        """The month used in Figure 7 of the paper (September)."""
        return self.generate_month(9, seed=seed)


__all__ = [
    "CloudModel",
    "GOLDEN_COLORADO_LATITUDE_DEG",
    "SyntheticSolarModel",
    "clear_sky_ghi",
    "solar_declination_rad",
    "solar_elevation_rad",
]
