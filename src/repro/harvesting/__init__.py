"""Energy-harvesting substrate: solar traces, solar cell and budgets.

* :mod:`repro.harvesting.traces` -- hourly irradiance trace container and an
  NREL-style CSV loader,
* :mod:`repro.harvesting.solar` -- a synthetic clear-sky + cloud irradiance
  generator standing in for the NREL SRRL measurements,
* :mod:`repro.harvesting.solar_cell` -- the flexible solar cell model that
  converts irradiance into the hourly energy budgets REAP consumes.
"""

from repro.harvesting.forecast import (
    ClearSkyScaledForecaster,
    EwmaForecaster,
    HarvestForecaster,
    PersistenceForecaster,
    forecast_error,
)
from repro.harvesting.solar import (
    CloudModel,
    GOLDEN_COLORADO_LATITUDE_DEG,
    SyntheticSolarModel,
    clear_sky_ghi,
    solar_declination_rad,
    solar_elevation_rad,
)
from repro.harvesting.solar_cell import (
    HarvestScenario,
    SolarCellModel,
    summarize_budgets,
)
from repro.harvesting.traces import SolarTrace, TraceHour, load_nrel_csv

__all__ = [
    "ClearSkyScaledForecaster",
    "CloudModel",
    "EwmaForecaster",
    "GOLDEN_COLORADO_LATITUDE_DEG",
    "HarvestForecaster",
    "HarvestScenario",
    "PersistenceForecaster",
    "SolarCellModel",
    "SolarTrace",
    "SyntheticSolarModel",
    "TraceHour",
    "clear_sky_ghi",
    "forecast_error",
    "load_nrel_csv",
    "solar_declination_rad",
    "solar_elevation_rad",
    "summarize_budgets",
]
