"""Harvested-energy forecasting.

The energy-allocation layer (Section 3.2: "Energy budget Eb ... is determined
by energy allocation techniques using the expected amount of harvested
energy") needs an estimate of how much energy the next periods will harvest.
This module provides the three classic lightweight forecasters used by the
energy-harvesting literature the paper builds on:

* :class:`PersistenceForecaster` -- tomorrow's hour looks like today's same
  hour (a 24-period seasonal persistence model);
* :class:`EwmaForecaster` -- the EWMA-per-slot estimator popularised by
  Kansal et al. for solar harvesting;
* :class:`ClearSkyScaledForecaster` -- scale the deterministic clear-sky
  profile by a recursively estimated clearness index.

All forecasters share the same tiny interface: ``observe`` the energy
actually harvested in the current period, ``forecast`` the next period (or a
whole horizon), so they can be composed with
:class:`repro.energy.budget.HorizonAverageAllocator` for closed-loop
campaigns.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.harvesting.solar import clear_sky_ghi
from repro.harvesting.solar_cell import HarvestScenario


class HarvestForecaster(abc.ABC):
    """Base class for per-period harvested-energy forecasters."""

    def __init__(self, periods_per_day: int = 24) -> None:
        if periods_per_day < 1:
            raise ValueError(f"periods_per_day must be >= 1, got {periods_per_day}")
        self.periods_per_day = periods_per_day
        self._period_index = 0

    @property
    def current_slot(self) -> int:
        """Slot (hour of day) of the next period to be observed."""
        return self._period_index % self.periods_per_day

    @abc.abstractmethod
    def forecast(self, horizon: int = 1) -> List[float]:
        """Forecast harvested energy (J) for the next ``horizon`` periods."""

    def observe(self, harvested_j: float) -> None:
        """Record the energy actually harvested in the current period."""
        if harvested_j < 0:
            raise ValueError(f"harvested energy must be non-negative, got {harvested_j}")
        self._update(harvested_j)
        self._period_index += 1

    @abc.abstractmethod
    def _update(self, harvested_j: float) -> None:
        """Incorporate one observation (slot = :attr:`current_slot`)."""

    # --- convenience ---------------------------------------------------------------
    def run(self, harvest_trace_j: Sequence[float]) -> List[float]:
        """One-step-ahead forecasts over a whole trace.

        Returns ``forecast[i]`` = the prediction for period ``i`` made before
        observing it; useful for computing forecast errors in tests and
        ablations.
        """
        predictions: List[float] = []
        for actual in harvest_trace_j:
            predictions.append(self.forecast(1)[0])
            self.observe(float(actual))
        return predictions


class PersistenceForecaster(HarvestForecaster):
    """Seasonal persistence: predict the value observed one day ago."""

    def __init__(self, periods_per_day: int = 24, initial_j: float = 0.0) -> None:
        super().__init__(periods_per_day)
        if initial_j < 0:
            raise ValueError("initial forecast must be non-negative")
        self._last_day = [float(initial_j)] * periods_per_day

    def forecast(self, horizon: int = 1) -> List[float]:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        return [
            self._last_day[(self._period_index + offset) % self.periods_per_day]
            for offset in range(horizon)
        ]

    def _update(self, harvested_j: float) -> None:
        self._last_day[self.current_slot] = float(harvested_j)


class EwmaForecaster(HarvestForecaster):
    """Per-slot exponentially weighted moving average (Kansal et al. style)."""

    def __init__(
        self,
        periods_per_day: int = 24,
        smoothing: float = 0.5,
        initial_j: float = 0.0,
    ) -> None:
        super().__init__(periods_per_day)
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if initial_j < 0:
            raise ValueError("initial forecast must be non-negative")
        self.smoothing = smoothing
        self._estimate = [float(initial_j)] * periods_per_day

    def forecast(self, horizon: int = 1) -> List[float]:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        return [
            self._estimate[(self._period_index + offset) % self.periods_per_day]
            for offset in range(horizon)
        ]

    def _update(self, harvested_j: float) -> None:
        slot = self.current_slot
        self._estimate[slot] = (
            self.smoothing * harvested_j + (1.0 - self.smoothing) * self._estimate[slot]
        )


class ClearSkyScaledForecaster(HarvestForecaster):
    """Scale the deterministic clear-sky harvest by an estimated clearness.

    The clear-sky harvest profile for the device's solar cell is computed
    once per day-of-year; the ratio of observed to clear-sky harvest is
    tracked with an EWMA and applied to future clear-sky values.  Night
    periods (zero clear-sky harvest) do not update the clearness estimate.
    """

    def __init__(
        self,
        scenario: Optional[HarvestScenario] = None,
        day_of_year: int = 244,
        periods_per_day: int = 24,
        smoothing: float = 0.3,
        initial_clearness: float = 0.7,
    ) -> None:
        super().__init__(periods_per_day)
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if not 0.0 <= initial_clearness <= 1.0:
            raise ValueError("initial clearness must be in [0, 1]")
        self.scenario = scenario or HarvestScenario()
        self.day_of_year = day_of_year
        self.smoothing = smoothing
        self.clearness = initial_clearness

    def clear_sky_harvest_j(self, slot: int) -> float:
        """Clear-sky harvested energy for a given hour-of-day slot."""
        hours_per_slot = 24.0 / self.periods_per_day
        hour = (slot + 0.5) * hours_per_slot
        ghi = clear_sky_ghi(self.day_of_year, hour % 24.0)
        return self.scenario.harvested_energy_j(ghi)

    def forecast(self, horizon: int = 1) -> List[float]:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        predictions = []
        for offset in range(horizon):
            slot = (self._period_index + offset) % self.periods_per_day
            predictions.append(self.clearness * self.clear_sky_harvest_j(slot))
        return predictions

    def _update(self, harvested_j: float) -> None:
        ceiling = self.clear_sky_harvest_j(self.current_slot)
        if ceiling <= 1e-12:
            return
        observed_clearness = min(1.0, harvested_j / ceiling)
        self.clearness = (
            self.smoothing * observed_clearness + (1.0 - self.smoothing) * self.clearness
        )


def forecast_error(
    forecaster: HarvestForecaster,
    harvest_trace_j: Sequence[float],
) -> dict:
    """Mean absolute / RMS one-step forecast error over a trace."""
    actual = np.asarray(list(harvest_trace_j), dtype=float)
    if actual.size == 0:
        raise ValueError("harvest trace is empty")
    predicted = np.asarray(forecaster.run(actual), dtype=float)
    errors = predicted - actual
    return {
        "mae_j": float(np.mean(np.abs(errors))),
        "rmse_j": float(np.sqrt(np.mean(errors ** 2))),
        "bias_j": float(np.mean(errors)),
        "num_periods": int(actual.size),
    }


__all__ = [
    "ClearSkyScaledForecaster",
    "EwmaForecaster",
    "HarvestForecaster",
    "PersistenceForecaster",
    "forecast_error",
]
