"""Flexible solar cell model and hourly energy-budget computation.

The prototype harvests with a FlexSolarCells SP3-37 flexible panel.  The
model converts irradiance into electrical power through the cell area,
conversion efficiency and a *wearable exposure factor* that accounts for
non-optimal orientation, body shadowing and clothing coverage.  The default
exposure factor is calibrated so that a clear September noon hour yields a
budget slightly above the 9.9 J needed to run DP1 continuously -- the same
operating range the paper sweeps in its evaluation (0.18 J to ~10 J per
hour).  This calibration choice is documented in ``DESIGN.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.data.paper_constants import ACTIVITY_PERIOD_S
from repro.energy.harvester import HarvestingCircuit
from repro.harvesting.traces import SolarTrace


@dataclass(frozen=True)
class SolarCellModel:
    """Irradiance-to-power model of the flexible solar cell."""

    #: Active cell area in m^2 (SP3-37: roughly 37 mm x 64 mm).
    area_m2: float = 0.00237
    #: Photovoltaic conversion efficiency of the flexible (amorphous) cell.
    efficiency: float = 0.06
    #: Wearable exposure derating: orientation, body shadowing, time indoors.
    exposure_factor: float = 0.032

    def __post_init__(self) -> None:
        if self.area_m2 <= 0:
            raise ValueError(f"cell area must be positive, got {self.area_m2}")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if not 0 < self.exposure_factor <= 1:
            raise ValueError(
                f"exposure factor must be in (0, 1], got {self.exposure_factor}"
            )

    def output_power_w(self, ghi_w_per_m2: float) -> float:
        """Electrical power produced by the cell at the given irradiance."""
        if ghi_w_per_m2 < 0:
            raise ValueError(f"irradiance must be non-negative, got {ghi_w_per_m2}")
        return ghi_w_per_m2 * self.area_m2 * self.efficiency * self.exposure_factor

    def hourly_energy_j(self, ghi_w_per_m2: float, hours: float = 1.0) -> float:
        """Electrical energy produced over ``hours`` at constant irradiance."""
        if hours < 0:
            raise ValueError(f"hours must be non-negative, got {hours}")
        return self.output_power_w(ghi_w_per_m2) * hours * 3600.0


@dataclass(frozen=True)
class HarvestScenario:
    """Solar cell plus harvesting circuit: irradiance trace -> usable budgets.

    A scenario describes one *device variant* of a fleet study: its harvest
    front-end and, optionally, its energy store.  The battery overrides are
    ``None`` by default (campaigns then use the shared
    :class:`~repro.simulation.fleet.CampaignConfig` values); setting them
    gives every cell of that scenario its own capacity / initial charge --
    the fleet engine broadcasts them straight into the per-device arrays of
    :class:`~repro.energy.fleet.BatteryScan`.
    """

    cell: SolarCellModel = field(default_factory=SolarCellModel)
    circuit: HarvestingCircuit = field(default_factory=HarvestingCircuit)
    period_s: float = ACTIVITY_PERIOD_S
    #: Per-scenario battery capacity in joules (None: campaign default).
    battery_capacity_j: Optional[float] = None
    #: Per-scenario initial charge in joules (None: campaign default;
    #: negative means half full, as in :class:`~repro.energy.battery.Battery`).
    battery_initial_j: Optional[float] = None

    def __post_init__(self) -> None:
        if self.battery_capacity_j is not None and self.battery_capacity_j <= 0:
            raise ValueError(
                f"battery capacity must be positive, got {self.battery_capacity_j}"
            )

    def harvested_energy_j(self, ghi_w_per_m2: float) -> float:
        """Usable harvested energy for one activity period at the given GHI."""
        raw = self.cell.output_power_w(ghi_w_per_m2) * self.period_s
        return self.circuit.harvested_energy_j(raw)

    def budgets_from_trace(self, trace: SolarTrace) -> List[float]:
        """Per-hour usable energy budgets for every hour of ``trace``.

        This is the open-loop "spend what you harvest" budget used by the
        Figure 7 case study; the closed-loop battery-backed variant lives in
        :mod:`repro.energy.budget`.
        """
        return [self.harvested_energy_j(hour.ghi_w_per_m2) for hour in trace]

    def budget_array(self, trace: SolarTrace) -> np.ndarray:
        """Same as :meth:`budgets_from_trace` but as an array."""
        return np.array(self.budgets_from_trace(trace))


def summarize_budgets(budgets: Sequence[float]) -> dict:
    """Summary statistics of a budget trace (used by reports and tests)."""
    array = np.asarray(list(budgets), dtype=float)
    if array.size == 0:
        raise ValueError("budget sequence is empty")
    return {
        "num_periods": int(array.size),
        "total_j": float(array.sum()),
        "mean_j": float(array.mean()),
        "max_j": float(array.max()),
        "min_j": float(array.min()),
        "hours_above_dp1_j": int(np.count_nonzero(array >= 9.9)),
        "hours_below_floor_j": int(np.count_nonzero(array < 0.18)),
    }


__all__ = ["HarvestScenario", "SolarCellModel", "summarize_budgets"]
