"""Configuration knobs of the HAR design space (Figure 2 of the paper).

A design point is produced by choosing, independently:

* which accelerometer axes are sampled (all three, x+y, y only, or none),
* for what fraction of the activity window the accelerometer stays on
  (100%, 75%, 50% or 40%),
* which features are computed from the accelerometer (statistical or DWT)
  and from the stretch sensor (16-point FFT or statistical), and
* the structure of the neural-network classifier (number of hidden units;
  the paper quotes 4x12x7, 4x8x7 and 4x7 structures).

This module defines the plain configuration dataclasses shared by the
feature pipeline (:mod:`repro.har.features.pipeline`), the energy model
(:mod:`repro.energy.power_model`) and the design-space enumeration
(:mod:`repro.har.design_space`).  It intentionally has no dependencies other
than the standard library so every subsystem can import it freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


#: Valid accelerometer axis subsets (Figure 2, "Accel. axes" knob).
ACCEL_AXIS_CHOICES: Tuple[Tuple[str, ...], ...] = (
    ("x", "y", "z"),
    ("x", "y"),
    ("y",),
    (),
)

#: Valid sensing-period fractions (Figure 2, "Sensing period (%)" knob).
SENSING_FRACTION_CHOICES: Tuple[float, ...] = (1.0, 0.75, 0.5, 0.4)

#: Valid accelerometer feature families.
ACCEL_FEATURE_CHOICES: Tuple[str, ...] = ("statistical", "dwt", "none")

#: Valid stretch-sensor feature families.
STRETCH_FEATURE_CHOICES: Tuple[str, ...] = ("fft16", "statistical", "none")

#: Valid hidden-layer structures (empty tuple means a single-layer softmax,
#: i.e. the 4x7 structure of Figure 2).
HIDDEN_LAYER_CHOICES: Tuple[Tuple[int, ...], ...] = ((12,), (8,), ())


@dataclass(frozen=True)
class FeatureConfig:
    """Which signals are sampled and which features are computed.

    Parameters
    ----------
    accel_axes:
        Accelerometer axes to sample, subset of ``("x", "y", "z")``.  Empty
        means the accelerometer is switched off entirely.
    sensing_fraction:
        Fraction of the activity window during which the accelerometer is
        on (the passive stretch sensor always samples the full window).
    accel_features:
        Feature family computed from the accelerometer: ``"statistical"``,
        ``"dwt"`` or ``"none"``.
    stretch_features:
        Feature family computed from the stretch sensor: ``"fft16"``,
        ``"statistical"`` or ``"none"``.
    """

    accel_axes: Tuple[str, ...] = ("x", "y", "z")
    sensing_fraction: float = 1.0
    accel_features: str = "statistical"
    stretch_features: str = "fft16"

    def __post_init__(self) -> None:
        axes = tuple(a.lower() for a in self.accel_axes)
        object.__setattr__(self, "accel_axes", axes)
        for axis in axes:
            if axis not in ("x", "y", "z"):
                raise ValueError(f"unknown accelerometer axis {axis!r}")
        if len(set(axes)) != len(axes):
            raise ValueError(f"duplicate accelerometer axes in {axes!r}")
        if not 0.0 < self.sensing_fraction <= 1.0:
            raise ValueError(
                f"sensing_fraction must be in (0, 1], got {self.sensing_fraction}"
            )
        if self.accel_features not in ACCEL_FEATURE_CHOICES:
            raise ValueError(
                f"accel_features must be one of {ACCEL_FEATURE_CHOICES}, "
                f"got {self.accel_features!r}"
            )
        if self.stretch_features not in STRETCH_FEATURE_CHOICES:
            raise ValueError(
                f"stretch_features must be one of {STRETCH_FEATURE_CHOICES}, "
                f"got {self.stretch_features!r}"
            )
        if not axes and self.accel_features != "none":
            object.__setattr__(self, "accel_features", "none")
        if axes and self.accel_features == "none":
            raise ValueError(
                "accelerometer axes are enabled but accel_features is 'none'"
            )
        if self.accel_features == "none" and self.stretch_features == "none":
            raise ValueError("at least one sensor must contribute features")

    @property
    def uses_accelerometer(self) -> bool:
        """True when at least one accelerometer axis is sampled."""
        return bool(self.accel_axes)

    @property
    def uses_stretch(self) -> bool:
        """True when the stretch sensor contributes features."""
        return self.stretch_features != "none"

    @property
    def num_accel_axes(self) -> int:
        """Number of active accelerometer axes."""
        return len(self.accel_axes)

    def describe(self) -> str:
        """Short human-readable description (used in Table 2 style reports)."""
        parts = []
        if self.uses_accelerometer:
            axes = "".join(a.upper() for a in self.accel_axes)
            feature = "DWT" if self.accel_features == "dwt" else "Statistical"
            window = ""
            if self.sensing_fraction < 1.0:
                window = f" ({self.sensing_fraction:.0%} window)"
            parts.append(f"{feature} {axes}-axis accel.{window}")
        if self.uses_stretch:
            if self.stretch_features == "fft16":
                parts.append("16-FFT stretch")
            else:
                parts.append("Statistical stretch")
        return ", ".join(parts)


@dataclass(frozen=True)
class HARConfig:
    """Full design-point configuration: features plus classifier structure."""

    features: FeatureConfig = field(default_factory=FeatureConfig)
    hidden_layers: Tuple[int, ...] = (12,)

    def __post_init__(self) -> None:
        hidden = tuple(int(h) for h in self.hidden_layers)
        object.__setattr__(self, "hidden_layers", hidden)
        for width in hidden:
            if width < 1:
                raise ValueError(f"hidden layer width must be >= 1, got {width}")

    @property
    def classifier_structure(self) -> str:
        """Classifier structure string in the paper's NxMxK notation.

        The input width is resolved at training time, so it is rendered as
        ``"in"`` here; for example ``"in x 12 x 7"``.
        """
        parts = ["in"] + [str(h) for h in self.hidden_layers] + ["7"]
        return "x".join(parts)

    def describe(self) -> str:
        """Human-readable one-line description of the full configuration."""
        return f"{self.features.describe()} | NN {self.classifier_structure}"


__all__ = [
    "ACCEL_AXIS_CHOICES",
    "ACCEL_FEATURE_CHOICES",
    "FeatureConfig",
    "HARConfig",
    "HIDDEN_LAYER_CHOICES",
    "SENSING_FRACTION_CHOICES",
    "STRETCH_FEATURE_CHOICES",
]
