"""The 24-point HAR design space and its characterisation (Section 4.2).

The paper explores 24 concrete design points obtained by combining the
sensor, feature and classifier knobs of Figure 2, measures the accuracy of
each on the 14-user study and its power on the prototype, and keeps the five
Pareto-optimal points (Table 2) for runtime use.

This module provides:

* :data:`DESIGN_SPACE_SPECS` -- the 24 named configurations (the five
  Table 2 configurations appear under their DP1..DP5 names);
* :class:`DesignSpaceExplorer` -- trains a classifier per configuration on a
  (synthetic) study dataset, evaluates its test accuracy, runs the analytical
  energy model and emits :class:`~repro.core.design_point.DesignPoint`
  objects ready for the optimiser;
* :func:`pareto_design_points` -- the Pareto filtering step that reduces the
  explored space to the runtime design-point set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.design_point import DesignPoint
from repro.core.pareto import pareto_front

if TYPE_CHECKING:  # imported lazily at runtime to avoid a circular import
    from repro.energy.power_model import (
        DesignPointCharacterization,
        DesignPointEnergyModel,
    )
from repro.har.classifier.metrics import accuracy_score
from repro.har.classifier.nn import MLPClassifier, MLPConfig
from repro.har.classifier.train import Trainer, TrainingConfig
from repro.har.config import FeatureConfig, HARConfig
from repro.har.features.pipeline import FeatureExtractor, standardize
from repro.har.windows import DatasetSplit, HARDataset


def _spec(
    name: str,
    axes: Tuple[str, ...],
    fraction: float,
    accel_features: str,
    stretch_features: str,
    hidden: Tuple[int, ...],
) -> Tuple[str, HARConfig]:
    """Helper to build one named design-space entry."""
    features = FeatureConfig(
        accel_axes=axes,
        sensing_fraction=fraction,
        accel_features=accel_features,
        stretch_features=stretch_features,
    )
    return name, HARConfig(features=features, hidden_layers=hidden)


#: The 24 design-point configurations explored in Section 4.2.  The first
#: five match the Table 2 descriptions; the remainder sweep the rest of the
#: Figure 2 knob grid (DWT features, 75% sensing, statistical stretch
#: features, shallower classifiers, ...), several of which end up dominated
#: exactly as in Figure 3.
DESIGN_SPACE_SPECS: Tuple[Tuple[str, HARConfig], ...] = (
    # --- the five Table 2 configurations -----------------------------------
    _spec("DP1", ("x", "y", "z"), 1.0, "statistical", "fft16", (12,)),
    _spec("DP2", ("y",), 1.0, "statistical", "fft16", (12,)),
    _spec("DP3", ("x", "y"), 0.5, "statistical", "fft16", (8,)),
    _spec("DP4", ("y",), 0.4, "statistical", "fft16", (8,)),
    _spec("DP5", (), 1.0, "none", "fft16", (8,)),
    # --- DWT-based accelerometer features (more compute, similar accuracy) --
    _spec("C06", ("x", "y", "z"), 1.0, "dwt", "fft16", (12,)),
    _spec("C07", ("x", "y"), 1.0, "dwt", "fft16", (12,)),
    _spec("C08", ("y",), 1.0, "dwt", "fft16", (8,)),
    # --- intermediate sensing periods ----------------------------------------
    _spec("C09", ("x", "y", "z"), 0.75, "statistical", "fft16", (12,)),
    _spec("C10", ("x", "y"), 0.75, "statistical", "fft16", (12,)),
    _spec("C11", ("y",), 0.75, "statistical", "fft16", (8,)),
    _spec("C12", ("x", "y", "z"), 0.5, "statistical", "fft16", (12,)),
    _spec("C13", ("x", "y", "z"), 0.4, "statistical", "fft16", (8,)),
    _spec("C14", ("x", "y"), 0.4, "statistical", "fft16", (8,)),
    # --- cheaper stretch features ----------------------------------------------
    _spec("C15", ("x", "y", "z"), 1.0, "statistical", "statistical", (12,)),
    _spec("C16", ("y",), 1.0, "statistical", "statistical", (8,)),
    _spec("C17", ("y",), 0.5, "statistical", "statistical", (8,)),
    _spec("C18", (), 1.0, "none", "statistical", (8,)),
    # --- shallower classifiers ---------------------------------------------------
    _spec("C19", ("x", "y", "z"), 1.0, "statistical", "fft16", ()),
    _spec("C20", ("y",), 1.0, "statistical", "fft16", ()),
    _spec("C21", (), 1.0, "none", "fft16", ()),
    # --- accelerometer-only variants ---------------------------------------------
    _spec("C22", ("x", "y", "z"), 1.0, "statistical", "none", (12,)),
    _spec("C23", ("y",), 1.0, "statistical", "none", (8,)),
    _spec("C24", ("x", "y", "z"), 0.5, "dwt", "fft16", (8,)),
)

#: Names of the five Pareto-optimal design points used at runtime.
PARETO_DESIGN_POINT_NAMES: Tuple[str, ...] = ("DP1", "DP2", "DP3", "DP4", "DP5")


@dataclass(frozen=True)
class CharacterizedDesignPoint:
    """Accuracy + energy characterisation of one design-space configuration."""

    name: str
    config: HARConfig
    test_accuracy: float
    validation_accuracy: float
    characterization: DesignPointCharacterization
    num_features: int

    def to_design_point(self) -> DesignPoint:
        """Convert into the optimiser-facing :class:`DesignPoint`."""
        return DesignPoint(
            name=self.name,
            accuracy=self.test_accuracy,
            power_w=self.characterization.average_power_w,
            energy_per_activity_j=self.characterization.total_energy_mj * 1e-3,
            activity_period_s=self.characterization.window_s,
            description=self.config.describe(),
            execution=self.characterization.execution,
            energy_breakdown=self.characterization.energy,
            metadata={
                "num_features": self.num_features,
                "hidden_layers": self.config.hidden_layers,
                "validation_accuracy": self.validation_accuracy,
            },
        )


class DesignSpaceExplorer:
    """Characterises design-space configurations on a study dataset."""

    def __init__(
        self,
        dataset: HARDataset,
        energy_model: Optional["DesignPointEnergyModel"] = None,
        training_config: Optional[TrainingConfig] = None,
        split: Optional[DatasetSplit] = None,
        split_seed: int = 7,
    ) -> None:
        # Imported here rather than at module scope: the energy models consume
        # the HAR configuration dataclasses, so importing them at the top of
        # this module would create a package-level import cycle.
        from repro.energy.power_model import DesignPointEnergyModel

        self.dataset = dataset
        self.energy_model = energy_model or DesignPointEnergyModel()
        self.training_config = training_config or TrainingConfig()
        self.split = split or dataset.split(seed=split_seed)

    # -----------------------------------------------------------------------------
    def characterize(self, name: str, config: HARConfig) -> CharacterizedDesignPoint:
        """Characterise one configuration: train, test, and model its energy."""
        extractor = FeatureExtractor(config.features)
        matrix = extractor.extract_dataset(self.dataset)

        train = matrix.subset(self.split.train_indices)
        validation = matrix.subset(self.split.validation_indices)
        test = matrix.subset(self.split.test_indices)
        train_x, val_x, test_x = standardize(
            train.features, validation.features, test.features
        )

        model = MLPClassifier(
            MLPConfig(
                input_dim=matrix.num_features,
                hidden_layers=config.hidden_layers,
                seed=self.training_config.seed,
            )
        )
        trainer = Trainer(self.training_config)
        trainer.fit(model, train_x, train.labels, val_x, validation.labels)

        validation_accuracy = accuracy_score(
            validation.labels, model.predict(val_x)
        )
        test_accuracy = accuracy_score(test.labels, model.predict(test_x))
        characterization = self.energy_model.characterize(
            config, num_features=matrix.num_features
        )
        return CharacterizedDesignPoint(
            name=name,
            config=config,
            test_accuracy=test_accuracy,
            validation_accuracy=validation_accuracy,
            characterization=characterization,
            num_features=matrix.num_features,
        )

    def characterize_all(
        self,
        specs: Sequence[Tuple[str, HARConfig]] = DESIGN_SPACE_SPECS,
    ) -> List[CharacterizedDesignPoint]:
        """Characterise every configuration in ``specs`` (24 by default)."""
        return [self.characterize(name, config) for name, config in specs]

    def design_points(
        self,
        specs: Sequence[Tuple[str, HARConfig]] = DESIGN_SPACE_SPECS,
    ) -> List[DesignPoint]:
        """Characterise ``specs`` and return optimiser-ready design points."""
        return [item.to_design_point() for item in self.characterize_all(specs)]


def pareto_design_points(
    design_points: Sequence[DesignPoint],
    max_points: Optional[int] = None,
) -> List[DesignPoint]:
    """Select the Pareto-optimal subset of a characterised design space.

    ``max_points`` optionally caps the number of returned points (the paper
    keeps five); the cap keeps the extreme points and maximises power spread.
    """
    front = pareto_front(design_points)
    if max_points is None or len(front) <= max_points:
        return front
    from repro.core.pareto import select_pareto_subset

    return select_pareto_subset(design_points, max_points)


def table2_specs() -> List[Tuple[str, HARConfig]]:
    """The five Table 2 configurations only (cheaper to characterise)."""
    wanted = set(PARETO_DESIGN_POINT_NAMES)
    return [(name, config) for name, config in DESIGN_SPACE_SPECS if name in wanted]


__all__ = [
    "CharacterizedDesignPoint",
    "DESIGN_SPACE_SPECS",
    "DesignSpaceExplorer",
    "PARETO_DESIGN_POINT_NAMES",
    "pareto_design_points",
    "table2_specs",
]
