"""Synthetic user population for the HAR accuracy study.

The paper evaluates classifier accuracy with data from 14 users.  We do not
have that data, so we model a *population* of users whose motion signatures
differ in the ways that matter for the energy-accuracy trade-off:

* gait frequency and step amplitude (walking / jumping dynamics),
* posture angles when sitting, standing, driving and lying down,
* stretch-sensor gain and resting offset (sensor placement varies between
  users),
* sensor noise levels (how firmly the device is strapped on).

Each :class:`UserProfile` is a small bag of parameters consumed by the signal
synthesiser in :mod:`repro.har.sensors`.  The population is generated from a
seeded RNG so the whole study is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.paper_constants import NUM_USERS


@dataclass(frozen=True)
class UserProfile:
    """Per-user signal generation parameters.

    All accelerations are expressed in units of g (9.81 m/s^2); the stretch
    sensor is modelled in normalised arbitrary units in roughly ``[0, 1]``.
    """

    user_id: int
    #: Walking cadence in Hz (steps per second of one leg).
    gait_frequency_hz: float
    #: Peak-to-peak acceleration amplitude while walking, in g.
    walk_amplitude_g: float
    #: Jumping frequency in Hz.
    jump_frequency_hz: float
    #: Peak acceleration amplitude while jumping, in g.
    jump_amplitude_g: float
    #: Thigh inclination from vertical when sitting, in radians.
    sit_angle_rad: float
    #: Thigh inclination from vertical when standing, in radians.
    stand_angle_rad: float
    #: Torso/thigh inclination when lying down, in radians.
    lie_angle_rad: float
    #: Vibration amplitude while driving, in g.
    drive_vibration_g: float
    #: Multiplicative gain of the stretch sensor.
    stretch_gain: float
    #: Resting offset of the stretch sensor.
    stretch_offset: float
    #: Standard deviation of accelerometer measurement noise, in g.
    accel_noise_g: float
    #: Standard deviation of stretch sensor measurement noise.
    stretch_noise: float
    #: Arbitrary per-user metadata.
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ValueError(f"user_id must be non-negative, got {self.user_id}")
        if self.gait_frequency_hz <= 0 or self.jump_frequency_hz <= 0:
            raise ValueError("gait and jump frequencies must be positive")
        if self.accel_noise_g < 0 or self.stretch_noise < 0:
            raise ValueError("noise levels must be non-negative")

    @property
    def name(self) -> str:
        """Readable identifier such as ``"user03"``."""
        return f"user{self.user_id:02d}"


#: Population-level means and spreads used to draw user profiles.  The
#: numbers are loosely based on published gait literature (walking cadence
#: 1.6-2.1 Hz, vertical acceleration 0.3-0.8 g) and chosen so that the
#: resulting design-point accuracies land near the Table 2 values.
_POPULATION_RANGES = {
    "gait_frequency_hz": (1.5, 2.3),
    "walk_amplitude_g": (0.25, 0.75),
    "jump_frequency_hz": (2.0, 3.2),
    "jump_amplitude_g": (1.1, 2.5),
    "sit_angle_rad": (1.15, 1.55),
    "stand_angle_rad": (0.0, 0.30),
    "lie_angle_rad": (1.30, 1.60),
    "drive_vibration_g": (0.03, 0.12),
    "stretch_gain": (0.65, 1.35),
    "stretch_offset": (0.03, 0.28),
    "accel_noise_g": (0.05, 0.16),
    "stretch_noise": (0.04, 0.12),
}


def generate_user(user_id: int, rng: np.random.Generator) -> UserProfile:
    """Draw a single user profile from the population distribution."""
    params = {}
    for key, (low, high) in _POPULATION_RANGES.items():
        params[key] = float(rng.uniform(low, high))
    return UserProfile(user_id=user_id, **params)


def generate_population(
    num_users: int = NUM_USERS,
    seed: int = 2019,
    rng: Optional[np.random.Generator] = None,
) -> List[UserProfile]:
    """Generate a reproducible population of user profiles.

    Parameters
    ----------
    num_users:
        Number of users (14 in the paper).
    seed:
        Seed used when ``rng`` is not supplied.
    rng:
        Optional pre-constructed generator (takes precedence over ``seed``).
    """
    if num_users < 1:
        raise ValueError(f"num_users must be at least 1, got {num_users}")
    generator = rng if rng is not None else np.random.default_rng(seed)
    return [generate_user(user_id, generator) for user_id in range(num_users)]


__all__ = ["UserProfile", "generate_population", "generate_user"]
