"""Synthetic user-study generation.

The paper collects 3553 labelled activity windows from 14 users.  This module
assembles the equivalent synthetic dataset: it draws a user population
(:mod:`repro.har.users`), synthesises per-window sensor signals
(:mod:`repro.har.sensors`) and packages everything as a
:class:`~repro.har.windows.HARDataset`.

The default configuration matches the study size (14 users, about 3553
windows, roughly balanced across the six activities plus transitions) but is
fully parameterisable so the tests can use small datasets and the ablations
can explore different study sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.data.paper_constants import NUM_ACTIVITY_WINDOWS, NUM_USERS
from repro.har.activities import (
    ALL_ACTIVITIES,
    Activity,
    ActivityTransitionModel,
    DEFAULT_ACTIVITY_PREVALENCE,
)
from repro.har.sensors import (
    AccelerometerSynthesizer,
    SensorSpec,
    StretchSensorSynthesizer,
)
from repro.har.users import UserProfile, generate_population
from repro.har.windows import HARDataset, SensorWindow


#: Share of the labelled study windows assigned to each activity.  The study
#: protocol has every user perform every activity, so the distribution is
#: roughly balanced with fewer transition windows.
DEFAULT_STUDY_MIX: Dict[Activity, float] = {
    Activity.SIT: 0.17,
    Activity.STAND: 0.16,
    Activity.WALK: 0.17,
    Activity.JUMP: 0.12,
    Activity.DRIVE: 0.14,
    Activity.LIE_DOWN: 0.14,
    Activity.TRANSITION: 0.10,
}


@dataclass(frozen=True)
class StudyConfig:
    """Configuration of the synthetic user study.

    Parameters
    ----------
    num_users:
        Number of participants (14 in the paper).
    num_windows:
        Total number of labelled windows across all users (3553 in the paper).
    seed:
        Master seed; the user population and every window derive their own
        seeded RNG stream from it, so the study is fully reproducible.
    sensor_spec:
        Window length and sampling rate.
    activity_mix:
        Fraction of windows per activity class.
    """

    num_users: int = NUM_USERS
    num_windows: int = NUM_ACTIVITY_WINDOWS
    seed: int = 2019
    sensor_spec: SensorSpec = SensorSpec()
    activity_mix: Mapping[Activity, float] = field(
        default_factory=lambda: dict(DEFAULT_STUDY_MIX)
    )

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ValueError(f"num_users must be >= 1, got {self.num_users}")
        if self.num_windows < len(ALL_ACTIVITIES):
            raise ValueError(
                f"num_windows must cover every class at least once, "
                f"got {self.num_windows}"
            )
        total = sum(self.activity_mix.get(a, 0.0) for a in ALL_ACTIVITIES)
        if total <= 0:
            raise ValueError("activity_mix must have positive total mass")


def _windows_per_class(config: StudyConfig) -> Dict[Activity, int]:
    """Distribute the total window count across classes (largest remainder)."""
    total_mass = sum(config.activity_mix.get(a, 0.0) for a in ALL_ACTIVITIES)
    exact = {
        a: config.num_windows * config.activity_mix.get(a, 0.0) / total_mass
        for a in ALL_ACTIVITIES
    }
    counts = {a: int(np.floor(v)) for a, v in exact.items()}
    remainder = config.num_windows - sum(counts.values())
    # Assign the leftover windows to the classes with the largest fractional
    # parts so the total is exact.
    by_fraction = sorted(
        ALL_ACTIVITIES, key=lambda a: exact[a] - counts[a], reverse=True
    )
    for a in by_fraction[:remainder]:
        counts[a] += 1
    # Every class gets at least one window.
    for a in ALL_ACTIVITIES:
        if counts[a] == 0:
            donor = max(counts, key=counts.get)
            counts[donor] -= 1
            counts[a] = 1
    return counts


class StudyGenerator:
    """Generates the synthetic HAR user study."""

    def __init__(self, config: StudyConfig = StudyConfig()) -> None:
        self.config = config
        self.accel_synth = AccelerometerSynthesizer(config.sensor_spec)
        self.stretch_synth = StretchSensorSynthesizer(config.sensor_spec)

    def generate_users(self) -> List[UserProfile]:
        """Generate the user population for this study."""
        return generate_population(self.config.num_users, seed=self.config.seed)

    def generate_window(
        self,
        activity: Activity,
        user: UserProfile,
        rng: np.random.Generator,
    ) -> SensorWindow:
        """Synthesise a single labelled window for ``user`` doing ``activity``."""
        accel = self.accel_synth.synthesize(activity, user, rng)
        stretch = self.stretch_synth.synthesize(activity, user, rng)
        return SensorWindow(
            accel=accel,
            stretch=stretch,
            activity=activity,
            user_id=user.user_id,
            spec=self.config.sensor_spec,
        )

    def generate_dataset(self) -> HARDataset:
        """Generate the full study dataset.

        Windows are distributed round-robin across users so every user
        contributes a comparable number of windows of every class, mimicking
        the per-user collection protocol of the paper.
        """
        users = self.generate_users()
        rng = np.random.default_rng(self.config.seed + 1)
        per_class = _windows_per_class(self.config)

        windows: List[SensorWindow] = []
        for activity in ALL_ACTIVITIES:
            count = per_class[activity]
            for index in range(count):
                user = users[index % len(users)]
                windows.append(self.generate_window(activity, user, rng))
        rng.shuffle(windows)
        return HARDataset(windows)

    def generate_activity_stream(
        self,
        num_windows: int,
        user: Optional[UserProfile] = None,
        seed: Optional[int] = None,
        dwell_windows: float = 20.0,
    ) -> List[Activity]:
        """Generate a temporally-correlated activity label stream.

        Used by the device simulator to model what a user actually does over
        an hour of wear time (as opposed to the balanced study mix used for
        training).
        """
        rng = np.random.default_rng(self.config.seed + 13 if seed is None else seed)
        model = ActivityTransitionModel(
            dwell_windows=dwell_windows,
            prevalence=DEFAULT_ACTIVITY_PREVALENCE,
        )
        return model.generate_stream(num_windows, rng)


def generate_study_dataset(
    num_users: int = NUM_USERS,
    num_windows: int = NUM_ACTIVITY_WINDOWS,
    seed: int = 2019,
    sensor_spec: Optional[SensorSpec] = None,
) -> HARDataset:
    """Convenience wrapper: generate a study dataset in one call."""
    config = StudyConfig(
        num_users=num_users,
        num_windows=num_windows,
        seed=seed,
        sensor_spec=sensor_spec or SensorSpec(),
    )
    return StudyGenerator(config).generate_dataset()


__all__ = [
    "DEFAULT_STUDY_MIX",
    "StudyConfig",
    "StudyGenerator",
    "generate_study_dataset",
]
