"""Synthetic sensor-signal models for the HAR case study.

The prototype in the paper wears a 3-axis accelerometer (Invensense MPU-9250)
and a passive stretch sensor on the user's leg and samples both at 100 Hz.
This module synthesises those signals for each activity class and user
profile.  The device frame follows the thigh-worn convention:

* ``y`` -- along the thigh, pointing toward the knee (aligned with gravity
  when standing),
* ``z`` -- perpendicular to the thigh, pointing forward,
* ``x`` -- lateral.

Units: acceleration in g, stretch in normalised arbitrary units.

The signal structure is deliberately simple (gravity projection + periodic
motion + noise) but captures the properties that drive the energy/accuracy
trade-off the paper exploits:

* the stretch sensor alone separates dynamic activities and bent-knee
  postures but confuses standing with lying down (so a stretch-only design
  point tops out near the published 76%),
* the accelerometer y-axis resolves most of that ambiguity,
* the remaining axes and a longer sensing window add a few more points of
  accuracy at extra energy cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.paper_constants import ACTIVITY_WINDOW_S, SENSOR_SAMPLING_HZ
from repro.har.activities import Activity
from repro.har.users import UserProfile


@dataclass(frozen=True)
class SensorSpec:
    """Sampling specification for one activity window."""

    window_s: float = ACTIVITY_WINDOW_S
    sampling_hz: float = SENSOR_SAMPLING_HZ

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(f"window length must be positive, got {self.window_s}")
        if self.sampling_hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {self.sampling_hz}")

    @property
    def num_samples(self) -> int:
        """Number of samples per window per channel."""
        return int(round(self.window_s * self.sampling_hz))

    def time_vector(self) -> np.ndarray:
        """Sample timestamps in seconds, starting at zero."""
        return np.arange(self.num_samples) / self.sampling_hz


def _gravity_vector(theta_rad: float, roll_rad: float = 0.0) -> np.ndarray:
    """Project gravity (1 g) onto the device frame.

    ``theta_rad`` is the thigh inclination from vertical in the sagittal
    plane; ``roll_rad`` rotates the residual horizontal component from ``z``
    toward ``x`` (used for lying on the side).
    """
    y = np.cos(theta_rad)
    horizontal = np.sin(theta_rad)
    z = horizontal * np.cos(roll_rad)
    x = horizontal * np.sin(roll_rad)
    return np.array([x, y, z])


class AccelerometerSynthesizer:
    """Generates 3-axis accelerometer windows for a given activity and user."""

    def __init__(self, spec: SensorSpec = SensorSpec()) -> None:
        self.spec = spec

    def synthesize(
        self,
        activity: Activity,
        user: UserProfile,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return an ``(num_samples, 3)`` array of accelerations in g."""
        t = self.spec.time_vector()
        n = self.spec.num_samples
        phase = rng.uniform(0.0, 2.0 * np.pi)

        if activity is Activity.STAND:
            base = _gravity_vector(user.stand_angle_rad)
            signal = np.tile(base, (n, 1))
            sway = 0.02 * np.sin(2 * np.pi * 0.4 * t + phase)
            signal[:, 2] += sway
        elif activity is Activity.SIT:
            base = _gravity_vector(user.sit_angle_rad, roll_rad=0.0)
            signal = np.tile(base, (n, 1))
            fidget = 0.015 * np.sin(2 * np.pi * 0.3 * t + phase)
            signal[:, 0] += fidget
        elif activity is Activity.LIE_DOWN:
            # Lying down: thigh horizontal, slight roll toward the side the
            # user lies on.  Deliberately close to the sitting posture so
            # that disambiguation relies on the stretch sensor and the
            # y-axis, as observed in the real study.
            base = _gravity_vector(user.lie_angle_rad, roll_rad=0.45)
            signal = np.tile(base, (n, 1))
            breathing = 0.01 * np.sin(2 * np.pi * 0.25 * t + phase)
            signal[:, 2] += breathing
        elif activity is Activity.DRIVE:
            # Seated posture plus engine/road vibration on all axes.
            base = _gravity_vector(user.sit_angle_rad)
            signal = np.tile(base, (n, 1))
            vibration_freq = rng.uniform(8.0, 14.0)
            vib = user.drive_vibration_g * np.sin(2 * np.pi * vibration_freq * t + phase)
            signal[:, 1] += vib
            signal[:, 2] += 0.6 * user.drive_vibration_g * np.sin(
                2 * np.pi * (vibration_freq * 0.7) * t + phase * 1.7
            )
            signal[:, 0] += 0.4 * user.drive_vibration_g * rng.standard_normal(n)
        elif activity is Activity.WALK:
            base = _gravity_vector(user.stand_angle_rad + 0.15)
            signal = np.tile(base, (n, 1))
            f = user.gait_frequency_hz * rng.uniform(0.92, 1.08)
            amp = user.walk_amplitude_g * rng.uniform(0.85, 1.15)
            stride = amp * np.sin(2 * np.pi * f * t + phase)
            heel_strike = 0.35 * amp * np.sin(2 * np.pi * 2 * f * t + 2 * phase)
            signal[:, 1] += stride + heel_strike
            signal[:, 2] += 0.5 * amp * np.sin(2 * np.pi * f * t + phase + np.pi / 3)
            signal[:, 0] += 0.2 * amp * np.sin(2 * np.pi * f * t + phase + np.pi / 2)
        elif activity is Activity.JUMP:
            base = _gravity_vector(user.stand_angle_rad)
            signal = np.tile(base, (n, 1))
            f = user.jump_frequency_hz * rng.uniform(0.9, 1.1)
            amp = user.jump_amplitude_g * rng.uniform(0.85, 1.15)
            # Flight + landing impulse approximated by a rectified sinusoid.
            vertical = amp * np.abs(np.sin(2 * np.pi * f * t / 2 + phase)) - 0.4 * amp
            signal[:, 1] += vertical
            signal[:, 2] += 0.3 * amp * np.sin(2 * np.pi * f * t + phase)
        elif activity is Activity.TRANSITION:
            # Smooth posture change between two random static postures.
            start_angle = rng.uniform(0.0, 1.55)
            end_angle = rng.uniform(0.0, 1.55)
            blend = np.linspace(0.0, 1.0, n)
            angles = start_angle + (end_angle - start_angle) * blend
            signal = np.stack([_gravity_vector(a) for a in angles])
            wobble = 0.12 * np.sin(2 * np.pi * 1.2 * t + phase)
            signal[:, 1] += wobble
        else:  # pragma: no cover - exhaustive over the enum
            raise ValueError(f"unsupported activity {activity!r}")

        noise = user.accel_noise_g * rng.standard_normal((n, 3))
        return signal + noise


class StretchSensorSynthesizer:
    """Generates stretch-sensor windows for a given activity and user.

    The stretch sensor responds to knee flexion: sitting and driving (bent
    knee) give a high reading, standing and lying (straight leg) a low one,
    and walking/jumping produce periodic flexion at the gait frequency.
    """

    def __init__(self, spec: SensorSpec = SensorSpec()) -> None:
        self.spec = spec

    def synthesize(
        self,
        activity: Activity,
        user: UserProfile,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return a ``(num_samples,)`` array of normalised stretch values."""
        t = self.spec.time_vector()
        n = self.spec.num_samples
        phase = rng.uniform(0.0, 2.0 * np.pi)
        offset = user.stretch_offset
        gain = user.stretch_gain

        if activity is Activity.SIT:
            signal = offset + gain * 0.66 + 0.01 * np.sin(2 * np.pi * 0.3 * t + phase)
        elif activity is Activity.DRIVE:
            vibration_freq = rng.uniform(8.0, 14.0)
            signal = (
                offset
                + gain * 0.52
                + gain * 0.04 * np.sin(2 * np.pi * vibration_freq * t + phase)
            )
        elif activity is Activity.STAND:
            signal = offset + gain * 0.05 + 0.008 * np.sin(2 * np.pi * 0.4 * t + phase)
        elif activity is Activity.LIE_DOWN:
            signal = offset + gain * 0.17 + 0.006 * np.sin(2 * np.pi * 0.25 * t + phase)
        elif activity is Activity.WALK:
            f = user.gait_frequency_hz * rng.uniform(0.92, 1.08)
            swing = 0.30 * gain * (0.5 + 0.5 * np.sin(2 * np.pi * f * t + phase))
            signal = offset + gain * 0.20 + swing
        elif activity is Activity.JUMP:
            f = user.jump_frequency_hz * rng.uniform(0.9, 1.1)
            flex = 0.55 * gain * np.abs(np.sin(2 * np.pi * f * t / 2 + phase))
            signal = offset + gain * 0.15 + flex
        elif activity is Activity.TRANSITION:
            start = rng.uniform(0.05, 0.75)
            end = rng.uniform(0.05, 0.75)
            signal = offset + gain * np.linspace(start, end, n)
            signal += 0.03 * np.sin(2 * np.pi * 1.2 * t + phase)
        else:  # pragma: no cover - exhaustive over the enum
            raise ValueError(f"unsupported activity {activity!r}")

        noise = user.stretch_noise * rng.standard_normal(n)
        return np.clip(signal + noise, 0.0, None)


__all__ = [
    "AccelerometerSynthesizer",
    "SensorSpec",
    "StretchSensorSynthesizer",
]
