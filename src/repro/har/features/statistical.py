"""Statistical time-domain features.

These are the "statistics of accel." / "statistics of stretch" features of
Figure 2: cheap time-domain summaries a Cortex-M class MCU can compute with a
handful of multiply-accumulate passes over the window.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Names of the per-channel statistical features, in output order.
STATISTICAL_FEATURE_NAMES: List[str] = [
    "mean",
    "std",
    "min",
    "max",
    "range",
    "rms",
    "mad",
    "zero_crossings",
]


def statistical_features(signal: np.ndarray) -> np.ndarray:
    """Compute the statistical feature vector of a 1-D signal.

    The features are: mean, standard deviation, minimum, maximum, range,
    root-mean-square, mean absolute deviation and the zero-crossing rate of
    the mean-removed signal.  Constant signals return a zero crossing rate of
    zero.

    Parameters
    ----------
    signal:
        1-D array of samples.  Must contain at least one sample.
    """
    x = np.asarray(signal, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("cannot compute features of an empty signal")
    mean = float(np.mean(x))
    std = float(np.std(x))
    minimum = float(np.min(x))
    maximum = float(np.max(x))
    value_range = maximum - minimum
    rms = float(np.sqrt(np.mean(x * x)))
    mad = float(np.mean(np.abs(x - mean)))
    centered = x - mean
    if x.size < 2:
        zero_crossings = 0.0
    else:
        signs = np.sign(centered)
        # Treat exact zeros as positive so flat signals do not register
        # spurious crossings.
        signs[signs == 0] = 1
        zero_crossings = float(np.count_nonzero(np.diff(signs))) / (x.size - 1)
    return np.array(
        [mean, std, minimum, maximum, value_range, rms, mad, zero_crossings]
    )


def statistical_features_multichannel(signals: np.ndarray) -> np.ndarray:
    """Compute statistical features for every column of a 2-D array.

    Parameters
    ----------
    signals:
        ``(num_samples, num_channels)`` array.

    Returns
    -------
    numpy.ndarray
        Concatenated per-channel feature vectors, channel-major order.
    """
    array = np.asarray(signals, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(f"expected a 1-D or 2-D array, got shape {array.shape}")
    features = [statistical_features(array[:, column]) for column in range(array.shape[1])]
    return np.concatenate(features)


def statistical_feature_names(channels: List[str]) -> List[str]:
    """Feature names for :func:`statistical_features_multichannel` output."""
    return [
        f"{channel}_{name}"
        for channel in channels
        for name in STATISTICAL_FEATURE_NAMES
    ]


__all__ = [
    "STATISTICAL_FEATURE_NAMES",
    "statistical_feature_names",
    "statistical_features",
    "statistical_features_multichannel",
]
