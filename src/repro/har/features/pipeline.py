"""Feature-generation pipeline: from raw sensor windows to feature vectors.

The pipeline is parameterised by a :class:`~repro.har.config.FeatureConfig`
(the sensor/feature knobs of Figure 2) and turns a
:class:`~repro.har.windows.SensorWindow` into a fixed-length feature vector.
It is the software equivalent of the "Feature Generation" block of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.har.config import FeatureConfig
from repro.har.features.dwt import dwt_feature_names, dwt_features_multichannel
from repro.har.features.fft import fft_feature_names, fft_magnitudes
from repro.har.features.statistical import (
    statistical_feature_names,
    statistical_features,
    statistical_features_multichannel,
)
from repro.har.windows import HARDataset, SensorWindow


@dataclass
class FeatureMatrix:
    """Extracted features for a whole dataset.

    Attributes
    ----------
    features:
        ``(num_windows, num_features)`` matrix.
    labels:
        ``(num_windows,)`` integer activity labels.
    feature_names:
        Column names of the feature matrix.
    user_ids:
        ``(num_windows,)`` user identifiers (useful for leave-one-user-out
        analyses).
    """

    features: np.ndarray
    labels: np.ndarray
    feature_names: List[str]
    user_ids: np.ndarray

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.labels = np.asarray(self.labels, dtype=int)
        self.user_ids = np.asarray(self.user_ids, dtype=int)
        if self.features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {self.features.shape}")
        if self.features.shape[0] != self.labels.shape[0]:
            raise ValueError("features and labels disagree on the number of windows")
        if self.features.shape[1] != len(self.feature_names):
            raise ValueError("feature_names length must match the feature dimension")

    @property
    def num_windows(self) -> int:
        """Number of windows (rows)."""
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        """Feature dimensionality (columns)."""
        return self.features.shape[1]

    def subset(self, indices: Sequence[int]) -> "FeatureMatrix":
        """Row-subset of the matrix (used for train/val/test splits)."""
        idx = np.asarray(indices, dtype=int)
        return FeatureMatrix(
            features=self.features[idx],
            labels=self.labels[idx],
            feature_names=list(self.feature_names),
            user_ids=self.user_ids[idx],
        )


class FeatureExtractor:
    """Extracts feature vectors according to a :class:`FeatureConfig`."""

    def __init__(self, config: FeatureConfig) -> None:
        self.config = config
        self._names: Optional[List[str]] = None

    # --- single window -------------------------------------------------------
    def extract(self, window: SensorWindow) -> np.ndarray:
        """Return the feature vector of one window."""
        pieces: List[np.ndarray] = []
        if self.config.uses_accelerometer:
            accel = window.accel_axes(self.config.accel_axes)
            keep = max(2, int(round(accel.shape[0] * self.config.sensing_fraction)))
            accel = accel[:keep]
            if self.config.accel_features == "statistical":
                pieces.append(statistical_features_multichannel(accel))
            elif self.config.accel_features == "dwt":
                pieces.append(dwt_features_multichannel(accel))
        if self.config.uses_stretch:
            stretch = window.stretch
            if self.config.stretch_features == "fft16":
                pieces.append(fft_magnitudes(stretch, n_fft=16))
            elif self.config.stretch_features == "statistical":
                pieces.append(statistical_features(stretch))
        if not pieces:
            raise ValueError("feature configuration produced no features")
        return np.concatenate(pieces)

    # --- names ------------------------------------------------------------------
    def feature_names(self) -> List[str]:
        """Column names of the feature vector produced by :meth:`extract`."""
        if self._names is not None:
            return list(self._names)
        names: List[str] = []
        if self.config.uses_accelerometer:
            channels = [f"accel_{axis}" for axis in self.config.accel_axes]
            if self.config.accel_features == "statistical":
                names.extend(statistical_feature_names(channels))
            elif self.config.accel_features == "dwt":
                names.extend(dwt_feature_names(channels))
        if self.config.uses_stretch:
            if self.config.stretch_features == "fft16":
                names.extend(fft_feature_names("stretch", n_fft=16))
            elif self.config.stretch_features == "statistical":
                names.extend(statistical_feature_names(["stretch"]))
        self._names = names
        return list(names)

    @property
    def num_features(self) -> int:
        """Dimensionality of the feature vector."""
        return len(self.feature_names())

    # --- whole dataset -----------------------------------------------------------
    def extract_dataset(self, dataset: HARDataset) -> FeatureMatrix:
        """Extract features for every window of ``dataset``."""
        rows = [self.extract(window) for window in dataset]
        return FeatureMatrix(
            features=np.vstack(rows),
            labels=dataset.labels,
            feature_names=self.feature_names(),
            user_ids=dataset.user_ids,
        )


def standardize(
    train: np.ndarray,
    *others: np.ndarray,
) -> Tuple[np.ndarray, ...]:
    """Z-score features using the training statistics.

    Returns the standardised training matrix followed by the standardised
    versions of every additional matrix (validation, test, ...).  Columns with
    zero variance are left centred but unscaled.
    """
    train = np.asarray(train, dtype=float)
    mean = train.mean(axis=0)
    std = train.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    results = [(train - mean) / std]
    for other in others:
        results.append((np.asarray(other, dtype=float) - mean) / std)
    return tuple(results)


__all__ = ["FeatureExtractor", "FeatureMatrix", "standardize"]
