"""Radix-2 fast Fourier transform implemented from scratch.

The paper's design points compute a 16-point FFT of the stretch-sensor data
on the CC2650 MCU.  To keep the reproduction self-contained we implement the
iterative radix-2 Cooley-Tukey algorithm directly (``numpy.fft`` is used only
in the test-suite as an oracle).
"""

from __future__ import annotations

from typing import List

import numpy as np


def _bit_reverse_indices(n: int) -> np.ndarray:
    """Return the bit-reversed permutation of ``range(n)`` (n a power of two)."""
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=int)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def fft_radix2(signal: np.ndarray) -> np.ndarray:
    """Compute the DFT of ``signal`` with the iterative radix-2 algorithm.

    Parameters
    ----------
    signal:
        1-D real or complex array whose length is a power of two.

    Returns
    -------
    numpy.ndarray
        Complex DFT coefficients, same length as the input.
    """
    x = np.asarray(signal, dtype=complex).ravel()
    n = x.size
    if not is_power_of_two(n):
        raise ValueError(f"FFT length must be a power of two, got {n}")
    if n == 1:
        return x.copy()

    data = x[_bit_reverse_indices(n)].copy()
    length = 2
    while length <= n:
        half = length // 2
        # Twiddle factors for this stage.
        twiddle = np.exp(-2j * np.pi * np.arange(half) / length)
        for start in range(0, n, length):
            top = data[start:start + half].copy()
            bottom = data[start + half:start + length] * twiddle
            data[start:start + half] = top + bottom
            data[start + half:start + length] = top - bottom
        length *= 2
    return data


def block_decimate(signal: np.ndarray, length: int) -> np.ndarray:
    """Decimate ``signal`` to ``length`` samples by block averaging.

    The window is divided into ``length`` contiguous blocks of (nearly) equal
    size and each block is replaced by its mean -- the cheap anti-aliased
    down-sampling an MCU would use before a short FFT.  Signals shorter than
    ``length`` are zero-padded instead.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    x = np.asarray(signal, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("cannot decimate an empty signal")
    if x.size <= length:
        padded = np.zeros(length)
        padded[: x.size] = x
        return padded
    edges = np.linspace(0, x.size, length + 1).astype(int)
    return np.array([x[start:stop].mean() for start, stop in zip(edges[:-1], edges[1:])])


def fft_magnitudes(signal: np.ndarray, n_fft: int = 16, mode: str = "decimate") -> np.ndarray:
    """Magnitude spectrum of an ``n_fft``-point FFT of the window.

    Two modes are supported:

    * ``"decimate"`` (default, matches the on-device 16-FFT): the whole
      window is block-averaged down to ``n_fft`` samples so the transform
      spans the full 1.6 s and resolves gait-rate periodicities, then a
      single FFT is taken.
    * ``"frame_average"``: the window is sliced into non-overlapping
      ``n_fft``-sample frames whose magnitude spectra are averaged
      (Welch-style, higher frequency range but coarse resolution).

    Only the non-redundant half (bins ``0..n_fft/2``) is returned.
    """
    if not is_power_of_two(n_fft):
        raise ValueError(f"n_fft must be a power of two, got {n_fft}")
    x = np.asarray(signal, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("cannot compute FFT features of an empty signal")
    num_bins = n_fft // 2 + 1

    if mode == "decimate":
        frame = block_decimate(x, n_fft)
        return np.abs(fft_radix2(frame)[:num_bins])
    if mode == "frame_average":
        if x.size < n_fft:
            padded = np.zeros(n_fft)
            padded[: x.size] = x
            frames = padded.reshape(1, n_fft)
        else:
            num_frames = x.size // n_fft
            frames = x[: num_frames * n_fft].reshape(num_frames, n_fft)
        accumulator = np.zeros(num_bins)
        for frame in frames:
            accumulator += np.abs(fft_radix2(frame)[:num_bins])
        return accumulator / frames.shape[0]
    raise ValueError(f"mode must be 'decimate' or 'frame_average', got {mode!r}")


def fft_feature_names(channel: str, n_fft: int = 16) -> List[str]:
    """Feature names for :func:`fft_magnitudes` output."""
    return [f"{channel}_fft{n_fft}_bin{i}" for i in range(n_fft // 2 + 1)]


__all__ = [
    "block_decimate",
    "fft_feature_names",
    "fft_magnitudes",
    "fft_radix2",
    "is_power_of_two",
]
