"""Haar discrete wavelet transform implemented from scratch.

Figure 2 lists the DWT of the accelerometer signal as the most expensive
(and most informative) accelerometer feature family.  We implement the Haar
wavelet (the cheapest DWT an MCU would realistically run) with a multilevel
decomposition and energy/statistics summaries per level.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

_SQRT2 = np.sqrt(2.0)


def haar_dwt_single_level(signal: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """One level of the Haar DWT.

    Odd-length signals are extended by repeating the last sample (symmetric
    padding), matching common embedded implementations.

    Returns
    -------
    (approximation, detail):
        Each of length ``ceil(len(signal) / 2)``.
    """
    x = np.asarray(signal, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("cannot transform an empty signal")
    if x.size % 2 == 1:
        x = np.concatenate([x, x[-1:]])
    even = x[0::2]
    odd = x[1::2]
    approximation = (even + odd) / _SQRT2
    detail = (even - odd) / _SQRT2
    return approximation, detail


def haar_dwt(signal: np.ndarray, levels: int = 3) -> List[np.ndarray]:
    """Multilevel Haar decomposition.

    Returns ``[detail_1, detail_2, ..., detail_L, approximation_L]`` where
    ``detail_1`` is the finest scale.  The number of levels is capped so that
    the coarsest approximation keeps at least two samples.
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    x = np.asarray(signal, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("cannot transform an empty signal")
    coefficients: List[np.ndarray] = []
    current = x
    for _ in range(levels):
        if current.size < 2:
            break
        current, detail = haar_dwt_single_level(current)
        coefficients.append(detail)
    coefficients.append(current)
    return coefficients


def dwt_features(signal: np.ndarray, levels: int = 3) -> np.ndarray:
    """Per-level energy and absolute-mean features of the Haar DWT.

    For each detail level and for the final approximation the feature vector
    contains the normalised energy (mean of squared coefficients) and the
    mean absolute coefficient, giving ``2 * (levels + 1)`` values.  When the
    signal is too short for the requested depth, the missing levels are
    zero-filled so the feature dimensionality stays constant.
    """
    bands = haar_dwt(signal, levels=levels)
    features: List[float] = []
    for band in bands:
        features.append(float(np.mean(band * band)))
        features.append(float(np.mean(np.abs(band))))
    expected = 2 * (levels + 1)
    while len(features) < expected:
        features.append(0.0)
    return np.array(features[:expected])


def dwt_features_multichannel(signals: np.ndarray, levels: int = 3) -> np.ndarray:
    """Concatenate :func:`dwt_features` over every column of a 2-D array."""
    array = np.asarray(signals, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(f"expected a 1-D or 2-D array, got shape {array.shape}")
    features = [dwt_features(array[:, column], levels=levels) for column in range(array.shape[1])]
    return np.concatenate(features)


def dwt_feature_names(channels: List[str], levels: int = 3) -> List[str]:
    """Feature names for :func:`dwt_features_multichannel` output."""
    names: List[str] = []
    for channel in channels:
        for level in range(1, levels + 1):
            names.append(f"{channel}_dwt_d{level}_energy")
            names.append(f"{channel}_dwt_d{level}_absmean")
        names.append(f"{channel}_dwt_a{levels}_energy")
        names.append(f"{channel}_dwt_a{levels}_absmean")
    return names


__all__ = [
    "dwt_feature_names",
    "dwt_features",
    "dwt_features_multichannel",
    "haar_dwt",
    "haar_dwt_single_level",
]
