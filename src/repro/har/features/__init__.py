"""Feature generation for the HAR application.

The feature families mirror Figure 2 of the paper:

* :mod:`repro.har.features.statistical` -- cheap time-domain statistics,
* :mod:`repro.har.features.fft` -- a from-scratch radix-2 FFT (the 16-point
  FFT of the stretch sensor),
* :mod:`repro.har.features.dwt` -- a from-scratch Haar discrete wavelet
  transform,
* :mod:`repro.har.features.pipeline` -- the configurable pipeline that turns
  raw sensor windows into feature vectors.
"""

from repro.har.features.dwt import (
    dwt_feature_names,
    dwt_features,
    dwt_features_multichannel,
    haar_dwt,
    haar_dwt_single_level,
)
from repro.har.features.fft import (
    fft_feature_names,
    fft_magnitudes,
    fft_radix2,
    is_power_of_two,
)
from repro.har.features.pipeline import FeatureExtractor, FeatureMatrix, standardize
from repro.har.features.statistical import (
    STATISTICAL_FEATURE_NAMES,
    statistical_feature_names,
    statistical_features,
    statistical_features_multichannel,
)

__all__ = [
    "FeatureExtractor",
    "FeatureMatrix",
    "STATISTICAL_FEATURE_NAMES",
    "dwt_feature_names",
    "dwt_features",
    "dwt_features_multichannel",
    "fft_feature_names",
    "fft_magnitudes",
    "fft_radix2",
    "haar_dwt",
    "haar_dwt_single_level",
    "is_power_of_two",
    "standardize",
    "statistical_feature_names",
    "statistical_features",
    "statistical_features_multichannel",
]
