"""Containers for labelled activity windows and the HAR dataset.

A :class:`SensorWindow` bundles one activity window's raw sensor data (3-axis
accelerometer plus stretch sensor) with its label and the user it came from.
A :class:`HARDataset` is the collection of all windows from the user study
(3553 windows across 14 users in the paper) plus the 60/20/20
train/validation/test split machinery used when measuring each design point's
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.har.activities import ALL_ACTIVITIES, Activity, class_counts
from repro.har.sensors import SensorSpec


@dataclass(frozen=True)
class SensorWindow:
    """One labelled activity window of raw sensor data.

    Attributes
    ----------
    accel:
        ``(num_samples, 3)`` accelerometer samples in g.
    stretch:
        ``(num_samples,)`` stretch sensor samples (normalised units).
    activity:
        Ground-truth activity label.
    user_id:
        Identifier of the user the window belongs to.
    spec:
        Sampling specification (window length and rate).
    """

    accel: np.ndarray
    stretch: np.ndarray
    activity: Activity
    user_id: int
    spec: SensorSpec = SensorSpec()

    def __post_init__(self) -> None:
        accel = np.asarray(self.accel, dtype=float)
        stretch = np.asarray(self.stretch, dtype=float)
        if accel.ndim != 2 or accel.shape[1] != 3:
            raise ValueError(f"accel must have shape (n, 3), got {accel.shape}")
        if stretch.ndim != 1:
            raise ValueError(f"stretch must be 1-D, got shape {stretch.shape}")
        if accel.shape[0] != stretch.shape[0]:
            raise ValueError(
                f"accel has {accel.shape[0]} samples but stretch has {stretch.shape[0]}"
            )
        object.__setattr__(self, "accel", accel)
        object.__setattr__(self, "stretch", stretch)

    @property
    def num_samples(self) -> int:
        """Number of samples per channel in the window."""
        return self.accel.shape[0]

    @property
    def duration_s(self) -> float:
        """Window duration in seconds."""
        return self.num_samples / self.spec.sampling_hz

    def accel_axes(self, axes: Sequence[str]) -> np.ndarray:
        """Return the accelerometer restricted to the named axes.

        ``axes`` is a sequence drawn from ``("x", "y", "z")``; the result has
        shape ``(num_samples, len(axes))``.
        """
        index = {"x": 0, "y": 1, "z": 2}
        try:
            columns = [index[a.lower()] for a in axes]
        except KeyError as error:
            raise ValueError(f"unknown accelerometer axis in {axes!r}") from error
        return self.accel[:, columns]

    def truncated(self, fraction: float) -> "SensorWindow":
        """Return a copy whose *accelerometer* data is cut to ``fraction``.

        Models the reduced sensing period knob of Figure 2: the accelerometer
        is turned off after ``fraction`` of the activity window while the
        passive stretch sensor keeps sampling.  The truncated accelerometer
        samples are zero-padded so downstream shapes stay constant; the
        feature pipeline only looks at the first ``fraction`` of the samples.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        keep = max(1, int(round(self.num_samples * fraction)))
        truncated_accel = np.zeros_like(self.accel)
        truncated_accel[:keep] = self.accel[:keep]
        return SensorWindow(
            accel=truncated_accel,
            stretch=self.stretch,
            activity=self.activity,
            user_id=self.user_id,
            spec=self.spec,
        )


@dataclass
class DatasetSplit:
    """Index-based train/validation/test split of a :class:`HARDataset`."""

    train_indices: np.ndarray
    validation_indices: np.ndarray
    test_indices: np.ndarray

    def __post_init__(self) -> None:
        self.train_indices = np.asarray(self.train_indices, dtype=int)
        self.validation_indices = np.asarray(self.validation_indices, dtype=int)
        self.test_indices = np.asarray(self.test_indices, dtype=int)
        all_indices = np.concatenate(
            [self.train_indices, self.validation_indices, self.test_indices]
        )
        if len(np.unique(all_indices)) != len(all_indices):
            raise ValueError("split partitions overlap")

    @property
    def sizes(self) -> Tuple[int, int, int]:
        """(train, validation, test) sizes."""
        return (
            len(self.train_indices),
            len(self.validation_indices),
            len(self.test_indices),
        )


class HARDataset:
    """Collection of labelled sensor windows from the (synthetic) user study."""

    def __init__(self, windows: Sequence[SensorWindow]) -> None:
        if not windows:
            raise ValueError("dataset must contain at least one window")
        self.windows: List[SensorWindow] = list(windows)

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self) -> Iterator[SensorWindow]:
        return iter(self.windows)

    def __getitem__(self, index: int) -> SensorWindow:
        return self.windows[index]

    # --- metadata ----------------------------------------------------------------
    @property
    def labels(self) -> np.ndarray:
        """Integer labels of every window."""
        return np.array([int(w.activity) for w in self.windows])

    @property
    def user_ids(self) -> np.ndarray:
        """User id of every window."""
        return np.array([w.user_id for w in self.windows])

    @property
    def num_users(self) -> int:
        """Number of distinct users in the dataset."""
        return len(np.unique(self.user_ids))

    def class_distribution(self) -> Dict[Activity, int]:
        """Number of windows per activity class."""
        return class_counts(self.labels)

    def windows_for_user(self, user_id: int) -> List[SensorWindow]:
        """All windows belonging to ``user_id``."""
        return [w for w in self.windows if w.user_id == user_id]

    def windows_for_activity(self, activity: Activity) -> List[SensorWindow]:
        """All windows with ground-truth label ``activity``."""
        return [w for w in self.windows if w.activity is activity]

    # --- splitting ---------------------------------------------------------------
    def split(
        self,
        train_fraction: float = 0.6,
        validation_fraction: float = 0.2,
        seed: int = 7,
        stratify: bool = True,
    ) -> DatasetSplit:
        """Create a 60/20/20 style split.

        When ``stratify`` is True the split preserves the class distribution
        in every partition (the paper splits "each DP ... using 60% of this
        data for training, 20% for validation and the remaining 20% for
        testing").
        """
        if not 0 < train_fraction < 1:
            raise ValueError("train_fraction must be in (0, 1)")
        if not 0 < validation_fraction < 1:
            raise ValueError("validation_fraction must be in (0, 1)")
        if train_fraction + validation_fraction >= 1.0:
            raise ValueError("train + validation fractions must leave room for test")

        rng = np.random.default_rng(seed)
        labels = self.labels
        train: List[int] = []
        validation: List[int] = []
        test: List[int] = []

        if stratify:
            groups = [np.nonzero(labels == int(a))[0] for a in ALL_ACTIVITIES]
        else:
            groups = [np.arange(len(self))]

        for group in groups:
            if group.size == 0:
                continue
            permuted = rng.permutation(group)
            n_train = int(round(train_fraction * group.size))
            n_val = int(round(validation_fraction * group.size))
            # Guarantee at least one test sample per populated class when
            # the class is large enough to afford it.
            if group.size >= 3:
                n_train = min(n_train, group.size - 2)
                n_val = min(max(1, n_val), group.size - n_train - 1)
            train.extend(permuted[:n_train].tolist())
            validation.extend(permuted[n_train:n_train + n_val].tolist())
            test.extend(permuted[n_train + n_val:].tolist())

        return DatasetSplit(
            train_indices=np.array(sorted(train)),
            validation_indices=np.array(sorted(validation)),
            test_indices=np.array(sorted(test)),
        )

    def subset(self, indices: Sequence[int]) -> "HARDataset":
        """Return a new dataset containing only the given window indices."""
        return HARDataset([self.windows[int(i)] for i in indices])


__all__ = ["DatasetSplit", "HARDataset", "SensorWindow"]
