"""Classification metrics used to characterise design-point accuracy."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.har.activities import ALL_ACTIVITIES, Activity, NUM_CLASSES


def accuracy_score(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """Fraction of windows whose predicted class matches the ground truth."""
    true_labels = np.asarray(true_labels, dtype=int).ravel()
    predicted_labels = np.asarray(predicted_labels, dtype=int).ravel()
    if true_labels.shape != predicted_labels.shape:
        raise ValueError(
            f"label arrays differ in shape: {true_labels.shape} vs "
            f"{predicted_labels.shape}"
        )
    if true_labels.size == 0:
        raise ValueError("cannot compute accuracy of an empty label set")
    return float(np.mean(true_labels == predicted_labels))


def confusion_matrix(
    true_labels: np.ndarray,
    predicted_labels: np.ndarray,
    num_classes: int = NUM_CLASSES,
) -> np.ndarray:
    """Confusion matrix with rows = true class, columns = predicted class."""
    true_labels = np.asarray(true_labels, dtype=int).ravel()
    predicted_labels = np.asarray(predicted_labels, dtype=int).ravel()
    if true_labels.shape != predicted_labels.shape:
        raise ValueError("label arrays differ in shape")
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    for true, predicted in zip(true_labels, predicted_labels):
        matrix[true, predicted] += 1
    return matrix


def per_class_recall(
    true_labels: np.ndarray,
    predicted_labels: np.ndarray,
) -> Dict[Activity, float]:
    """Recall of every activity class (NaN-free: empty classes report 0.0)."""
    matrix = confusion_matrix(true_labels, predicted_labels)
    recalls: Dict[Activity, float] = {}
    for activity in ALL_ACTIVITIES:
        row = matrix[int(activity)]
        total = row.sum()
        recalls[activity] = float(row[int(activity)] / total) if total else 0.0
    return recalls


def macro_f1(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """Macro-averaged F1 score over the populated classes."""
    matrix = confusion_matrix(true_labels, predicted_labels)
    f1_scores: List[float] = []
    for index in range(matrix.shape[0]):
        true_positive = matrix[index, index]
        actual = matrix[index].sum()
        predicted = matrix[:, index].sum()
        if actual == 0:
            continue
        precision = true_positive / predicted if predicted else 0.0
        recall = true_positive / actual
        if precision + recall == 0:
            f1_scores.append(0.0)
        else:
            f1_scores.append(2 * precision * recall / (precision + recall))
    if not f1_scores:
        raise ValueError("no populated classes to score")
    return float(np.mean(f1_scores))


def expected_calibration_gap(
    probabilities: np.ndarray,
    true_labels: np.ndarray,
    num_bins: int = 10,
) -> float:
    """Expected calibration error of predicted probabilities.

    Not used by the paper, but handy when extending REAP with
    confidence-aware design points; kept here because it only depends on the
    classifier outputs.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    true_labels = np.asarray(true_labels, dtype=int)
    confidences = probabilities.max(axis=1)
    predictions = probabilities.argmax(axis=1)
    correct = (predictions == true_labels).astype(float)
    bins = np.linspace(0.0, 1.0, num_bins + 1)
    gap = 0.0
    for low, high in zip(bins[:-1], bins[1:]):
        mask = (confidences >= low) & (confidences < high)
        if not np.any(mask):
            continue
        gap += np.abs(correct[mask].mean() - confidences[mask].mean()) * mask.mean()
    return float(gap)


__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "expected_calibration_gap",
    "macro_f1",
    "per_class_recall",
]
