"""Neural-network classifier for the HAR application.

A from-scratch NumPy multilayer perceptron (:mod:`repro.har.classifier.nn`),
its training loop (:mod:`repro.har.classifier.train`) and the evaluation
metrics (:mod:`repro.har.classifier.metrics`) used to characterise the
accuracy of every design point.
"""

from repro.har.classifier.metrics import (
    accuracy_score,
    confusion_matrix,
    expected_calibration_gap,
    macro_f1,
    per_class_recall,
)
from repro.har.classifier.nn import (
    MLPClassifier,
    MLPConfig,
    cross_entropy,
    one_hot,
    softmax,
)
from repro.har.classifier.train import (
    AdamOptimizer,
    Trainer,
    TrainingConfig,
    TrainingHistory,
)

__all__ = [
    "AdamOptimizer",
    "MLPClassifier",
    "MLPConfig",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "accuracy_score",
    "confusion_matrix",
    "cross_entropy",
    "expected_calibration_gap",
    "macro_f1",
    "one_hot",
    "per_class_recall",
    "softmax",
]
