"""Training loop for the HAR classifier.

Implements mini-batch Adam with early stopping on a validation set, which is
how each design point's classifier is fit to the 60/20/20 split of the user
study before its test accuracy is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.har.classifier.metrics import accuracy_score
from repro.har.classifier.nn import MLPClassifier


@dataclass
class TrainingConfig:
    """Hyper-parameters of the classifier training loop."""

    learning_rate: float = 0.01
    batch_size: int = 64
    max_epochs: int = 150
    l2_penalty: float = 1e-4
    patience: int = 20
    min_improvement: float = 1e-4
    seed: int = 3
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be at least 1")
        if self.patience < 1:
            raise ValueError("patience must be at least 1")


@dataclass
class TrainingHistory:
    """Per-epoch learning curves recorded during training."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    validation_accuracy: List[float] = field(default_factory=list)
    best_epoch: int = 0

    @property
    def num_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)


class AdamOptimizer:
    """Adam optimiser over the classifier's parameter lists."""

    def __init__(self, model: MLPClassifier, config: TrainingConfig) -> None:
        self.config = config
        self._step = 0
        self._m_w = [np.zeros_like(w) for w in model.weights]
        self._v_w = [np.zeros_like(w) for w in model.weights]
        self._m_b = [np.zeros_like(b) for b in model.biases]
        self._v_b = [np.zeros_like(b) for b in model.biases]

    def step(
        self,
        model: MLPClassifier,
        weight_grads: List[np.ndarray],
        bias_grads: List[np.ndarray],
    ) -> None:
        """Apply one Adam update to ``model`` in place."""
        cfg = self.config
        self._step += 1
        t = self._step
        lr_t = cfg.learning_rate * np.sqrt(1 - cfg.beta2 ** t) / (1 - cfg.beta1 ** t)

        weight_updates = []
        bias_updates = []
        for index in range(model.num_layers):
            self._m_w[index] = cfg.beta1 * self._m_w[index] + (1 - cfg.beta1) * weight_grads[index]
            self._v_w[index] = cfg.beta2 * self._v_w[index] + (1 - cfg.beta2) * weight_grads[index] ** 2
            weight_updates.append(
                -lr_t * self._m_w[index] / (np.sqrt(self._v_w[index]) + cfg.epsilon)
            )
            self._m_b[index] = cfg.beta1 * self._m_b[index] + (1 - cfg.beta1) * bias_grads[index]
            self._v_b[index] = cfg.beta2 * self._v_b[index] + (1 - cfg.beta2) * bias_grads[index] ** 2
            bias_updates.append(
                -lr_t * self._m_b[index] / (np.sqrt(self._v_b[index]) + cfg.epsilon)
            )
        model.apply_update(weight_updates, bias_updates)


class Trainer:
    """Fits an :class:`MLPClassifier` with mini-batch Adam and early stopping."""

    def __init__(self, config: Optional[TrainingConfig] = None) -> None:
        self.config = config or TrainingConfig()

    def fit(
        self,
        model: MLPClassifier,
        train_features: np.ndarray,
        train_labels: np.ndarray,
        validation_features: Optional[np.ndarray] = None,
        validation_labels: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train ``model`` in place and return the learning curves.

        When a validation set is provided the parameters achieving the best
        validation accuracy are restored at the end (early stopping with the
        configured patience); otherwise training runs for ``max_epochs``.
        """
        cfg = self.config
        train_features = np.asarray(train_features, dtype=float)
        train_labels = np.asarray(train_labels, dtype=int)
        if train_features.shape[0] != train_labels.shape[0]:
            raise ValueError("features and labels disagree on the number of samples")
        has_validation = validation_features is not None and validation_labels is not None

        rng = np.random.default_rng(cfg.seed)
        optimizer = AdamOptimizer(model, cfg)
        history = TrainingHistory()
        best_accuracy = -np.inf
        best_parameters = model.get_parameters()
        epochs_since_improvement = 0
        num_samples = train_features.shape[0]

        for epoch in range(cfg.max_epochs):
            order = rng.permutation(num_samples)
            for start in range(0, num_samples, cfg.batch_size):
                batch = order[start:start + cfg.batch_size]
                weight_grads, bias_grads = model.gradients(
                    train_features[batch], train_labels[batch], cfg.l2_penalty
                )
                optimizer.step(model, weight_grads, bias_grads)

            train_loss = model.loss(train_features, train_labels, cfg.l2_penalty)
            train_accuracy = accuracy_score(train_labels, model.predict(train_features))
            history.train_loss.append(train_loss)
            history.train_accuracy.append(train_accuracy)

            if has_validation:
                validation_accuracy = accuracy_score(
                    np.asarray(validation_labels, dtype=int),
                    model.predict(validation_features),
                )
                history.validation_accuracy.append(validation_accuracy)
                if validation_accuracy > best_accuracy + cfg.min_improvement:
                    best_accuracy = validation_accuracy
                    best_parameters = model.get_parameters()
                    history.best_epoch = epoch
                    epochs_since_improvement = 0
                else:
                    epochs_since_improvement += 1
                    if epochs_since_improvement >= cfg.patience:
                        break
            else:
                history.best_epoch = epoch
                best_parameters = model.get_parameters()

        model.set_parameters(best_parameters)
        return history


__all__ = ["AdamOptimizer", "Trainer", "TrainingConfig", "TrainingHistory"]
