"""Parameterised feed-forward neural network implemented with NumPy.

The on-device classifier of the paper is a small fully-connected network
whose structure is one of the energy-accuracy knobs (Figure 2 lists 4x12x7,
4x8x7 and 4x7 structures).  We implement the network from scratch: dense
layers with tanh activations, a softmax output over the seven activity
classes, cross-entropy loss, and analytic gradients for training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.har.activities import NUM_CLASSES


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of predicted probabilities against integer labels."""
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if probabilities.shape[0] != labels.shape[0]:
        raise ValueError("probabilities and labels disagree on batch size")
    eps = 1e-12
    picked = probabilities[np.arange(labels.size), labels]
    return float(-np.mean(np.log(picked + eps)))


def one_hot(labels: np.ndarray, num_classes: int = NUM_CLASSES) -> np.ndarray:
    """One-hot encode integer labels."""
    labels = np.asarray(labels, dtype=int)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must be in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.size, num_classes))
    encoded[np.arange(labels.size), labels] = 1.0
    return encoded


@dataclass
class MLPConfig:
    """Structure and initialisation settings of the classifier network."""

    input_dim: int
    hidden_layers: Tuple[int, ...] = (12,)
    num_classes: int = NUM_CLASSES
    seed: int = 11
    weight_scale: Optional[float] = None

    def __post_init__(self) -> None:
        if self.input_dim < 1:
            raise ValueError(f"input_dim must be >= 1, got {self.input_dim}")
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        self.hidden_layers = tuple(int(h) for h in self.hidden_layers)
        for width in self.hidden_layers:
            if width < 1:
                raise ValueError(f"hidden width must be >= 1, got {width}")

    @property
    def layer_sizes(self) -> List[int]:
        """Full layer size list: input, hidden..., output."""
        return [self.input_dim, *self.hidden_layers, self.num_classes]

    @property
    def structure(self) -> str:
        """Structure string in the paper's notation, e.g. ``"19x12x7"``."""
        return "x".join(str(size) for size in self.layer_sizes)


class MLPClassifier:
    """Small fully-connected classifier with tanh hidden layers.

    The number of parameters is what the energy model charges the MCU for, so
    :meth:`num_parameters` and :meth:`num_multiply_accumulates` are part of
    the public interface.
    """

    def __init__(self, config: MLPConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        sizes = config.layer_sizes
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = config.weight_scale
            if scale is None:
                scale = np.sqrt(2.0 / (fan_in + fan_out))
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # --- introspection -----------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of weight layers (hidden + output)."""
        return len(self.weights)

    def num_parameters(self) -> int:
        """Total number of trainable parameters."""
        return int(
            sum(w.size for w in self.weights) + sum(b.size for b in self.biases)
        )

    def num_multiply_accumulates(self) -> int:
        """Multiply-accumulate operations for a single forward pass."""
        return int(sum(w.size for w in self.weights))

    # --- inference ---------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass returning class probabilities and layer activations.

        ``activations[0]`` is the input batch and ``activations[-1]`` the
        softmax output; intermediate entries are the post-tanh hidden
        activations, as needed by backpropagation.
        """
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        if x.shape[1] != self.config.input_dim:
            raise ValueError(
                f"expected {self.config.input_dim} input features, got {x.shape[1]}"
            )
        activations = [x]
        current = x
        for index, (w, b) in enumerate(zip(self.weights, self.biases)):
            pre = current @ w + b
            if index < self.num_layers - 1:
                current = np.tanh(pre)
            else:
                current = softmax(pre)
            activations.append(current)
        return current, activations

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of feature vectors."""
        probabilities, _ = self.forward(inputs)
        return probabilities

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Most likely class index for each row of ``inputs``."""
        return np.argmax(self.predict_proba(inputs), axis=1)

    def loss(self, inputs: np.ndarray, labels: np.ndarray,
             l2_penalty: float = 0.0) -> float:
        """Cross-entropy loss (plus optional L2 penalty) on a batch."""
        probabilities = self.predict_proba(inputs)
        value = cross_entropy(probabilities, labels)
        if l2_penalty > 0.0:
            value += 0.5 * l2_penalty * sum(float(np.sum(w * w)) for w in self.weights)
        return value

    # --- training support -----------------------------------------------------------
    def gradients(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        l2_penalty: float = 0.0,
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Backpropagation gradients of the loss w.r.t. weights and biases."""
        labels = np.asarray(labels, dtype=int)
        probabilities, activations = self.forward(inputs)
        batch_size = probabilities.shape[0]
        targets = one_hot(labels, self.config.num_classes)

        weight_grads: List[np.ndarray] = [np.zeros_like(w) for w in self.weights]
        bias_grads: List[np.ndarray] = [np.zeros_like(b) for b in self.biases]

        # Softmax + cross-entropy gives this clean output-layer delta.
        delta = (probabilities - targets) / batch_size
        for layer in range(self.num_layers - 1, -1, -1):
            weight_grads[layer] = activations[layer].T @ delta
            bias_grads[layer] = delta.sum(axis=0)
            if l2_penalty > 0.0:
                weight_grads[layer] += l2_penalty * self.weights[layer]
            if layer > 0:
                back = delta @ self.weights[layer].T
                hidden = activations[layer]
                delta = back * (1.0 - hidden * hidden)  # tanh derivative
        return weight_grads, bias_grads

    def apply_update(
        self,
        weight_updates: Sequence[np.ndarray],
        bias_updates: Sequence[np.ndarray],
    ) -> None:
        """Add the given updates to the parameters in place."""
        for w, dw in zip(self.weights, weight_updates):
            w += dw
        for b, db in zip(self.biases, bias_updates):
            b += db

    # --- (de)serialisation -----------------------------------------------------------
    def get_parameters(self) -> Dict[str, np.ndarray]:
        """Return a copy of all parameters keyed by layer."""
        params: Dict[str, np.ndarray] = {}
        for index, (w, b) in enumerate(zip(self.weights, self.biases)):
            params[f"w{index}"] = w.copy()
            params[f"b{index}"] = b.copy()
        return params

    def set_parameters(self, parameters: Dict[str, np.ndarray]) -> None:
        """Load parameters previously produced by :meth:`get_parameters`."""
        for index in range(self.num_layers):
            w = parameters[f"w{index}"]
            b = parameters[f"b{index}"]
            if w.shape != self.weights[index].shape:
                raise ValueError(
                    f"layer {index} weight shape mismatch: "
                    f"{w.shape} vs {self.weights[index].shape}"
                )
            self.weights[index] = np.array(w, dtype=float)
            self.biases[index] = np.array(b, dtype=float)


__all__ = [
    "MLPClassifier",
    "MLPConfig",
    "cross_entropy",
    "one_hot",
    "softmax",
]
