"""Human activity recognition (HAR) application substrate.

Everything the paper's driver application needs, built from scratch:

* :mod:`repro.har.activities` -- the activity taxonomy and transition model,
* :mod:`repro.har.users` / :mod:`repro.har.sensors` /
  :mod:`repro.har.synthesis` -- the synthetic 14-user study,
* :mod:`repro.har.windows` -- labelled windows, datasets and splits,
* :mod:`repro.har.features` -- statistical, FFT and DWT feature pipelines,
* :mod:`repro.har.classifier` -- the NumPy MLP classifier and trainer,
* :mod:`repro.har.design_space` -- the 24-point design space and its
  accuracy/energy characterisation.
"""

from repro.har.activities import (
    ACTIVITY_LABELS,
    ALL_ACTIVITIES,
    Activity,
    ActivityTransitionModel,
    NUM_CLASSES,
    activity_from_label,
)
from repro.har.config import FeatureConfig, HARConfig
from repro.har.design_space import (
    CharacterizedDesignPoint,
    DESIGN_SPACE_SPECS,
    DesignSpaceExplorer,
    PARETO_DESIGN_POINT_NAMES,
    pareto_design_points,
    table2_specs,
)
from repro.har.evaluation import (
    CrossUserEvaluator,
    CrossUserResult,
    FoldResult,
    generalization_gap,
)
from repro.har.sensors import (
    AccelerometerSynthesizer,
    SensorSpec,
    StretchSensorSynthesizer,
)
from repro.har.synthesis import StudyConfig, StudyGenerator, generate_study_dataset
from repro.har.users import UserProfile, generate_population
from repro.har.windows import DatasetSplit, HARDataset, SensorWindow

__all__ = [
    "ACTIVITY_LABELS",
    "ALL_ACTIVITIES",
    "Activity",
    "ActivityTransitionModel",
    "AccelerometerSynthesizer",
    "CharacterizedDesignPoint",
    "CrossUserEvaluator",
    "CrossUserResult",
    "DESIGN_SPACE_SPECS",
    "DatasetSplit",
    "DesignSpaceExplorer",
    "FoldResult",
    "FeatureConfig",
    "HARConfig",
    "HARDataset",
    "NUM_CLASSES",
    "PARETO_DESIGN_POINT_NAMES",
    "SensorSpec",
    "SensorWindow",
    "StretchSensorSynthesizer",
    "StudyConfig",
    "StudyGenerator",
    "UserProfile",
    "activity_from_label",
    "generalization_gap",
    "generate_population",
    "generate_study_dataset",
    "pareto_design_points",
    "table2_specs",
]
