"""Activity taxonomy of the human activity recognition (HAR) case study.

The paper recognises six activities -- sit, stand, walk, jump, drive, lie
down -- plus the transitions between them (Section 1).  This module defines
the label set, helpers to convert between labels and indices, and a simple
Markov transition model used by the synthetic-user generator and the device
simulator to produce realistic activity streams.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


class Activity(enum.IntEnum):
    """The seven HAR classes (six activities plus transitions)."""

    SIT = 0
    STAND = 1
    WALK = 2
    JUMP = 3
    DRIVE = 4
    LIE_DOWN = 5
    TRANSITION = 6

    @property
    def label(self) -> str:
        """Lower-case human readable label."""
        return self.name.lower()

    @property
    def is_static(self) -> bool:
        """True for postures without sustained periodic motion."""
        return self in (Activity.SIT, Activity.STAND, Activity.DRIVE, Activity.LIE_DOWN)

    @property
    def is_dynamic(self) -> bool:
        """True for activities dominated by periodic motion."""
        return self in (Activity.WALK, Activity.JUMP)


#: All activity classes in index order.
ALL_ACTIVITIES: List[Activity] = list(Activity)

#: Number of classes the classifier distinguishes (7: six activities plus
#: transitions), matching the 7-unit output layer of the paper's NN
#: structures (4x12x7, 4x8x7, 4x7).
NUM_CLASSES: int = len(ALL_ACTIVITIES)

#: Activity labels in index order.
ACTIVITY_LABELS: List[str] = [activity.label for activity in ALL_ACTIVITIES]


def activity_from_label(label: str) -> Activity:
    """Look up an :class:`Activity` by its (case-insensitive) label."""
    normalized = label.strip().lower().replace(" ", "_").replace("-", "_")
    for activity in ALL_ACTIVITIES:
        if activity.label == normalized or activity.name.lower() == normalized:
            return activity
    raise KeyError(f"unknown activity label {label!r}; valid: {ACTIVITY_LABELS}")


#: Default steady-state occupancy of each activity in a day of wear time.
#: Loosely modelled on a sedentary adult's day (used only to generate
#: synthetic activity streams; the classifier itself is trained on a roughly
#: balanced window set as in the user study).
DEFAULT_ACTIVITY_PREVALENCE: Dict[Activity, float] = {
    Activity.SIT: 0.32,
    Activity.STAND: 0.18,
    Activity.WALK: 0.16,
    Activity.JUMP: 0.04,
    Activity.DRIVE: 0.12,
    Activity.LIE_DOWN: 0.12,
    Activity.TRANSITION: 0.06,
}


class ActivityTransitionModel:
    """First-order Markov model over activities.

    Used to generate multi-window activity streams: the synthetic user dwells
    in an activity for a geometric number of windows and then moves through a
    ``TRANSITION`` window to the next activity.

    Parameters
    ----------
    dwell_windows:
        Mean number of consecutive windows spent in one activity before a
        transition is attempted.
    prevalence:
        Long-run target share of each activity; defaults to
        :data:`DEFAULT_ACTIVITY_PREVALENCE`.
    """

    def __init__(
        self,
        dwell_windows: float = 20.0,
        prevalence: Optional[Mapping[Activity, float]] = None,
    ) -> None:
        if dwell_windows < 1.0:
            raise ValueError(f"dwell_windows must be >= 1, got {dwell_windows}")
        self.dwell_windows = float(dwell_windows)
        prevalence = dict(prevalence or DEFAULT_ACTIVITY_PREVALENCE)
        missing = [a for a in ALL_ACTIVITIES if a not in prevalence]
        if missing:
            raise ValueError(f"prevalence missing activities: {missing}")
        total = sum(max(0.0, prevalence[a]) for a in ALL_ACTIVITIES)
        if total <= 0:
            raise ValueError("prevalence must contain positive mass")
        self.prevalence = {a: max(0.0, prevalence[a]) / total for a in ALL_ACTIVITIES}

    def stationary_distribution(self) -> np.ndarray:
        """Return the target long-run distribution as an array over classes."""
        return np.array([self.prevalence[a] for a in ALL_ACTIVITIES])

    def sample_next(self, current: Activity, rng: np.random.Generator) -> Activity:
        """Sample the next activity after leaving ``current``.

        Transitions re-sample from the prevalence distribution excluding the
        current activity and the TRANSITION pseudo-class itself.
        """
        candidates = [
            a for a in ALL_ACTIVITIES
            if a is not current and a is not Activity.TRANSITION
        ]
        weights = np.array([self.prevalence[a] for a in candidates])
        if weights.sum() <= 0:
            weights = np.ones(len(candidates))
        weights = weights / weights.sum()
        index = rng.choice(len(candidates), p=weights)
        return candidates[index]

    def generate_stream(
        self,
        num_windows: int,
        rng: np.random.Generator,
        initial: Optional[Activity] = None,
    ) -> List[Activity]:
        """Generate a stream of per-window activity labels.

        The stream alternates dwell segments (geometric length with mean
        ``dwell_windows``) and single TRANSITION windows.
        """
        if num_windows < 0:
            raise ValueError(f"num_windows must be non-negative, got {num_windows}")
        stream: List[Activity] = []
        if num_windows == 0:
            return stream
        current = initial
        if current is None or current is Activity.TRANSITION:
            current = self.sample_next(Activity.TRANSITION, rng)
        while len(stream) < num_windows:
            dwell = 1 + rng.geometric(1.0 / self.dwell_windows)
            for _ in range(dwell):
                if len(stream) >= num_windows:
                    break
                stream.append(current)
            if len(stream) < num_windows:
                stream.append(Activity.TRANSITION)
                current = self.sample_next(current, rng)
        return stream[:num_windows]


def class_counts(labels: Sequence[int]) -> Dict[Activity, int]:
    """Count occurrences of each activity in a label sequence."""
    counts = {activity: 0 for activity in ALL_ACTIVITIES}
    for label in labels:
        counts[Activity(int(label))] += 1
    return counts


__all__ = [
    "ACTIVITY_LABELS",
    "ALL_ACTIVITIES",
    "Activity",
    "ActivityTransitionModel",
    "DEFAULT_ACTIVITY_PREVALENCE",
    "NUM_CLASSES",
    "activity_from_label",
    "class_counts",
]
