"""Cross-user evaluation of HAR design points.

The paper evaluates classifier accuracy with a random 60/20/20 split over all
users' windows.  A stricter (and common) protocol for wearable HAR is
leave-one-user-out (LOUO) cross-validation: train on 13 users, test on the
held-out 14th, and average.  This module implements both protocols behind one
interface so the reproduction can also report how the design points
generalise to unseen users — an extension the paper leaves to future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.har.classifier.metrics import accuracy_score
from repro.har.classifier.nn import MLPClassifier, MLPConfig
from repro.har.classifier.train import Trainer, TrainingConfig
from repro.har.config import HARConfig
from repro.har.features.pipeline import FeatureExtractor, standardize
from repro.har.windows import HARDataset


@dataclass
class FoldResult:
    """Accuracy of one cross-validation fold."""

    fold_id: str
    test_accuracy: float
    num_train_windows: int
    num_test_windows: int


@dataclass
class CrossUserResult:
    """Aggregate result of a cross-user evaluation of one configuration."""

    config: HARConfig
    protocol: str
    folds: List[FoldResult] = field(default_factory=list)

    @property
    def mean_accuracy(self) -> float:
        """Mean test accuracy across folds."""
        if not self.folds:
            return 0.0
        return float(np.mean([fold.test_accuracy for fold in self.folds]))

    @property
    def std_accuracy(self) -> float:
        """Standard deviation of the per-fold accuracies."""
        if not self.folds:
            return 0.0
        return float(np.std([fold.test_accuracy for fold in self.folds]))

    @property
    def worst_fold(self) -> Optional[FoldResult]:
        """The fold (user) with the lowest accuracy."""
        if not self.folds:
            return None
        return min(self.folds, key=lambda fold: fold.test_accuracy)


class CrossUserEvaluator:
    """Evaluates a design-point configuration across users."""

    def __init__(
        self,
        dataset: HARDataset,
        training_config: Optional[TrainingConfig] = None,
    ) -> None:
        self.dataset = dataset
        self.training_config = training_config or TrainingConfig()

    # -----------------------------------------------------------------------------
    def _train_and_score(
        self,
        config: HARConfig,
        train_indices: np.ndarray,
        test_indices: np.ndarray,
        fold_id: str,
    ) -> FoldResult:
        extractor = FeatureExtractor(config.features)
        matrix = extractor.extract_dataset(self.dataset)
        train = matrix.subset(train_indices)
        test = matrix.subset(test_indices)
        train_x, test_x = standardize(train.features, test.features)

        model = MLPClassifier(
            MLPConfig(
                input_dim=matrix.num_features,
                hidden_layers=config.hidden_layers,
                seed=self.training_config.seed,
            )
        )
        Trainer(self.training_config).fit(model, train_x, train.labels)
        accuracy = accuracy_score(test.labels, model.predict(test_x))
        return FoldResult(
            fold_id=fold_id,
            test_accuracy=accuracy,
            num_train_windows=len(train_indices),
            num_test_windows=len(test_indices),
        )

    def leave_one_user_out(
        self,
        config: HARConfig,
        max_users: Optional[int] = None,
    ) -> CrossUserResult:
        """Leave-one-user-out evaluation of ``config``.

        ``max_users`` optionally limits how many held-out folds are run
        (useful for tests); folds are taken in increasing user-id order.
        """
        user_ids = sorted(np.unique(self.dataset.user_ids))
        if len(user_ids) < 2:
            raise ValueError("leave-one-user-out needs at least two users")
        if max_users is not None:
            user_ids = user_ids[:max_users]
        result = CrossUserResult(config=config, protocol="leave-one-user-out")
        all_user_ids = self.dataset.user_ids
        for user_id in user_ids:
            test_indices = np.nonzero(all_user_ids == user_id)[0]
            train_indices = np.nonzero(all_user_ids != user_id)[0]
            if test_indices.size == 0 or train_indices.size == 0:
                continue
            result.folds.append(
                self._train_and_score(config, train_indices, test_indices, f"user{user_id:02d}")
            )
        return result

    def random_split(
        self,
        config: HARConfig,
        num_repeats: int = 1,
        seed: int = 7,
    ) -> CrossUserResult:
        """Repeated random 60/20/20 splits (the paper's protocol).

        The validation partition is folded into training here because this
        evaluator does not do early stopping per fold; accuracy is measured
        on the held-out 20% test partition.
        """
        if num_repeats < 1:
            raise ValueError("num_repeats must be >= 1")
        result = CrossUserResult(config=config, protocol="random-split")
        for repeat in range(num_repeats):
            split = self.dataset.split(seed=seed + repeat)
            train_indices = np.concatenate(
                [split.train_indices, split.validation_indices]
            )
            result.folds.append(
                self._train_and_score(
                    config, train_indices, split.test_indices, f"split{repeat}"
                )
            )
        return result


def generalization_gap(
    within_user: CrossUserResult,
    cross_user: CrossUserResult,
) -> float:
    """Accuracy drop from the random-split to the leave-one-user-out protocol."""
    return within_user.mean_accuracy - cross_user.mean_accuracy


__all__ = [
    "CrossUserEvaluator",
    "CrossUserResult",
    "FoldResult",
    "generalization_gap",
]
