"""Vectorized planning scan: horizon plans for whole fleets in lockstep.

:class:`PlanScan` is to the planning subsystem what
:class:`~repro.energy.fleet.BatteryScan` is to harvest-following budgets:
one state vector of battery charges, one vector step per period, covering
every (scenario x policy x alpha) cell of a fleet at once.  Each step

1. slices the period's forecast window out of the precomputed ``(H, W, D)``
   forecast tensor (see :mod:`repro.planning.forecasts`),
2. asks the shared :class:`~repro.planning.horizon.HorizonPlanner` for the
   ``(D,)`` budget vector (the planner math is identical to the scalar
   reference -- same functions, wider arrays),
3. evaluates the fleet's period consumption through the piecewise-linear
   consumption curves (no LP per period), and
4. settles the *actual* harvest against the charge vector through
   :meth:`BatteryScan.settle` -- the same clip-for-clip settle the scalar
   :class:`~repro.energy.battery.Battery` implements.

The result reuses :class:`~repro.energy.fleet.BatteryScanResult`, so the
fleet campaign machinery consumes planned budgets exactly like
harvest-following ones.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.energy.fleet import BatteryScan, BatteryScanResult, ConsumptionFn
from repro.planning.horizon import HorizonPlanner, PlanBattery


class PlanScan:
    """Steps forecast-driven budget plans for many devices in lockstep.

    Parameters
    ----------
    planner:
        The shared horizon planner (one kind and window per scan; fleets
        mixing planner configurations run one scan per group).
    battery:
        Per-device battery parameters and the settle implementation; its
        ``num_devices`` fixes the fleet width D.
    backend:
        Optional numeric backend override (see :mod:`repro.core.kernels`).
        ``None`` keeps whatever the planner was built with; a string
        re-points the planner's inner loops, so campaign code can thread
        one backend choice through planner and scan alike.
    """

    def __init__(
        self,
        planner: HorizonPlanner,
        battery: BatteryScan,
        backend: str = None,
    ) -> None:
        self.planner = planner
        self.battery = battery
        if backend is not None:
            planner.backend = kernels.validate_backend(backend)
        self.backend = planner.backend

    @property
    def num_devices(self) -> int:
        """Fleet width D."""
        return self.battery.num_devices

    def run(
        self,
        harvest_j: np.ndarray,
        forecast_j: np.ndarray,
        consumption: ConsumptionFn,
    ) -> BatteryScanResult:
        """Scan the fleet over a trace of actual harvests and forecasts.

        Parameters
        ----------
        harvest_j:
            Actually harvested energy per period: (H,) shared or (H, D).
        forecast_j:
            Forecast tensor (H, W, D): row ``t`` is the W-period lookahead
            available when period ``t``'s budget is planned.
        consumption:
            Closed-form period consumption (see
            :class:`~repro.core.batch.StackedConsumptionCurves`): maps the
            (D,) granted budgets to the (D,) consumed energies.
        """
        num_devices = self.num_devices
        harvest = np.asarray(harvest_j, dtype=float)
        if harvest.ndim == 1:
            harvest = np.broadcast_to(
                harvest[:, None], (harvest.size, num_devices)
            )
        if harvest.ndim != 2 or harvest.shape[1] != num_devices:
            raise ValueError(
                f"harvest must be (H,) or (H, {num_devices}), got {harvest.shape}"
            )
        if np.any(harvest < 0):
            raise ValueError("harvest must be non-negative")
        num_periods = harvest.shape[0]
        forecast = np.asarray(forecast_j, dtype=float)
        expected = (num_periods, self.planner.horizon_periods, num_devices)
        if forecast.shape != expected:
            raise ValueError(
                f"forecast tensor must be {expected}, got {forecast.shape}"
            )
        if np.any(forecast < 0):
            raise ValueError("forecast must be non-negative")

        battery = self.battery
        plan_battery = PlanBattery.from_scan(battery)
        budgets = np.empty((num_periods, num_devices))
        consumed = np.empty_like(budgets)
        charges = np.empty((num_periods + 1, num_devices))
        charge = battery.initial_charge_j.copy()
        charges[0] = charge
        for period in range(num_periods):
            window = forecast[period]                           # (W, D)
            budget = self.planner.step_budgets(
                window, charge, plan_battery, consumption
            )
            spent = consumption(budget)
            charge = battery.settle(harvest[period], spent, charge)
            budgets[period] = budget
            consumed[period] = spent
            charges[period + 1] = charge
        return BatteryScanResult(
            harvest_j=np.array(harvest),
            budgets_j=budgets,
            consumed_j=consumed,
            charge_j=charges,
        )


__all__ = ["PlanScan"]
