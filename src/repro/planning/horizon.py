"""Horizon planners: turn a harvest lookahead into per-period budgets.

A *planner* decides, at the start of every activity period, how large an
energy budget to grant given (a) the forecast of the next ``W`` periods and
(b) the battery's state of charge.  Two planners bracket the design space:

* :class:`HorizonAverageAllocator` -- allocate against the *mean* forecast
  of the lookahead window plus a bounded battery draw, clamped from below
  by the off-state floor (when the battery can fund it) and from above by
  what the current period could physically supply.  Closed-form, no LP.
* :class:`MpcPlanner` -- receding-horizon control: find the largest
  constant budget whose planned battery trajectory stays serviceable over
  the whole window, where the *planned consumption* at a candidate budget
  is the REAP LP's optimum (its piecewise-linear
  :class:`~repro.core.batch.ConsumptionCurve`).  The scalar reference then
  materialises each step's horizon plan with one
  :meth:`~repro.core.batch.BatchAllocator.solve_arrays` broadcast solve
  over the window -- one vectorized solve per step, never ``W`` scalar LPs.

Both planners are written as lockstep array programs over a device axis:
:meth:`HorizonPlanner.step_budgets` maps a ``(W, D)`` forecast window and a
``(D,)`` charge vector to ``(D,)`` budgets.  The vectorized
:class:`~repro.planning.scan.PlanScan` calls them with whole fleets; the
scalar reference loop of :mod:`repro.planning.reference` calls the same
math with ``D = 1``, so the two paths cannot drift on the planning
decision itself (the cross-checked difference is the surrounding
simulation: per-period LP solves and the scalar battery vs the
consumption-curve scan).

Degraded regimes are part of the contract: a zero-harvest window (e.g. a
persistence forecaster's first day) or a budget range that is infeasible
end to end must *degrade to the static off-floor allocation* -- the grant
falls to the planner's floor and the device browns out gracefully --
never raise.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from repro.core import kernels
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W
from repro.energy.battery import Battery
from repro.energy.fleet import BatteryScan

#: Maps a (D,) vector of candidate budgets to the (D,) energies the devices
#: would consume at those budgets (a ConsumptionCurve or stacked curves).
ConsumptionFn = Callable[[np.ndarray], np.ndarray]

#: Planner kinds selectable by name (CLI, campaign requests).
PLANNER_KINDS = ("horizon", "mpc")


def validate_planner_kind(kind: str) -> str:
    """Check a planner name (raises ``ValueError`` when unknown)."""
    if kind not in PLANNER_KINDS:
        raise ValueError(f"planner must be one of {PLANNER_KINDS}, got {kind!r}")
    return kind


@dataclass(frozen=True)
class PlanBattery:
    """Per-device battery parameters the planners plan against.

    A read-only view of the store: the planners never mutate charge, they
    only project it.  Build one with :meth:`from_scan` (fleet path) or
    :meth:`from_battery` (scalar reference path); both carry the exact
    values the corresponding settle implementation uses, so planned and
    realised trajectories share one parameterisation.
    """

    capacity_j: np.ndarray           #: (D,) usable capacity
    target_charge_j: np.ndarray      #: (D,) reserve level (target_soc * capacity)
    max_draw_j: np.ndarray           #: (D,) per-period draw bound
    min_budget_j: np.ndarray         #: (D,) grant floor (off-state energy)
    charge_efficiency: np.ndarray    #: (D,) store-side loss factor
    discharge_efficiency: np.ndarray #: (D,) load-side loss factor

    @classmethod
    def from_scan(cls, scan: BatteryScan) -> "PlanBattery":
        """View of a fleet :class:`~repro.energy.fleet.BatteryScan`."""
        return cls(
            capacity_j=scan.capacity_j,
            target_charge_j=scan.target_soc * scan.capacity_j,
            max_draw_j=scan.max_draw_j,
            min_budget_j=scan.min_budget_j,
            charge_efficiency=scan.charge_efficiency,
            discharge_efficiency=scan.discharge_efficiency,
        )

    @classmethod
    def from_battery(
        cls,
        battery: Battery,
        target_soc: float = 0.5,
        max_draw_j: float = 5.0,
        min_budget_j: float = OFF_STATE_POWER_W * ACTIVITY_PERIOD_S,
    ) -> "PlanBattery":
        """Single-device view over a scalar :class:`Battery` (D = 1)."""

        def one(value: float) -> np.ndarray:
            return np.array([float(value)])

        return cls(
            capacity_j=one(battery.capacity_j),
            target_charge_j=one(target_soc * battery.capacity_j),
            max_draw_j=one(max_draw_j),
            min_budget_j=one(min_budget_j),
            charge_efficiency=one(battery.charge_efficiency),
            discharge_efficiency=one(battery.discharge_efficiency),
        )


class HorizonPlanner(abc.ABC):
    """Base class for lookahead-driven budget planners.

    ``backend`` selects the numeric backend of the planner's inner loops
    (see :mod:`repro.core.kernels`); the closed-form
    :class:`HorizonAverageAllocator` has no hot loop and simply records it,
    while :class:`MpcPlanner` routes its sustainability projection through
    the fused/compiled kernels.
    """

    def __init__(self, horizon_periods: int, backend: str = "numpy") -> None:
        if horizon_periods < 1:
            raise ValueError(
                f"horizon must be >= 1 period, got {horizon_periods}"
            )
        self.horizon_periods = int(horizon_periods)
        self.backend = kernels.validate_backend(backend)

    @abc.abstractmethod
    def step_budgets(
        self,
        window: np.ndarray,
        charge_j: np.ndarray,
        battery: PlanBattery,
        consumption: ConsumptionFn,
    ) -> np.ndarray:
        """Budgets for one period: ``(W, D)`` forecast x ``(D,)`` charge."""

    def _validate_window(self, window: np.ndarray) -> np.ndarray:
        window = np.asarray(window, dtype=float)
        if window.ndim != 2 or window.shape[0] != self.horizon_periods:
            raise ValueError(
                f"window must be ({self.horizon_periods}, D), got {window.shape}"
            )
        return window


class HorizonAverageAllocator(HorizonPlanner):
    """Allocate against the mean forecast of the lookahead window.

    Each period's budget is the window-mean forecast plus a bounded draw of
    the charge above the battery's reserve level, topped up to the
    off-state floor when the store can fund it, and finally clamped by what
    the period can physically supply (current-period forecast plus the
    battery's deliverable energy).  This is the receding-horizon refinement
    of :class:`repro.energy.budget.HorizonAverageAllocator`, which chunks
    the forecast into fixed blocks; here the window slides every period.
    """

    def step_budgets(
        self,
        window: np.ndarray,
        charge_j: np.ndarray,
        battery: PlanBattery,
        consumption: ConsumptionFn,
    ) -> np.ndarray:
        window = self._validate_window(window)
        mean_forecast = window.mean(axis=0)
        # Battery levelling draw, as in the harvest-following grant.
        surplus = np.minimum(
            np.maximum(charge_j - battery.target_charge_j, 0.0),
            battery.max_draw_j,
        )
        budget = mean_forecast + surplus
        # Top up to the off-state floor where the store can cover it.
        available = charge_j * battery.discharge_efficiency
        shortfall = battery.min_budget_j - budget
        extra = np.minimum(shortfall, available - surplus)
        budget = budget + np.maximum(0.0, extra)
        # Supply clamp: a period cannot spend beyond its own (forecast)
        # harvest plus everything the battery could deliver.
        budget = np.minimum(budget, window[0] + available)
        return np.maximum(budget, 0.0)


class MpcPlanner(HorizonPlanner):
    """Receding-horizon planner: largest window-sustainable constant budget.

    At every step the planner searches for the largest budget ``b`` such
    that holding ``b`` for the whole lookahead window keeps the planned
    battery trajectory serviceable: each window period's LP consumption at
    ``b`` must be coverable by that period's forecast harvest plus the
    store's deliverable charge.  The planned trajectory ignores the
    capacity ceiling (surplus beyond full is optimistically kept); under a
    receding horizon the next step replans from the *real* clamped charge,
    so the optimism self-corrects and the projection stays a pure
    cumulative sum -- which is what lets one probe evaluate the whole
    window in a handful of array operations instead of ``W`` sequential
    steps.

    The search is a grid refinement rather than a scalar bisection: every
    pass evaluates ``candidates`` evenly spaced budgets for *all* devices
    in one vectorized :meth:`sustainable` call and narrows each device's
    bracket to the winning grid interval, so ``passes`` refinement rounds
    deliver ``(candidates - 1) ** passes`` effective resolution at a few
    array operations per round.  (Sustainability is monotone in the
    budget: the LP consumption never decreases with the grant, so deeper
    grids only tighten the same boundary.)

    When even the floor budget is unsustainable (a zero-harvest window on
    an empty store) the planner degrades to the floor -- the static
    off-state allocation -- rather than raising; when the ceiling is
    sustainable it grants the ceiling (every extra joule past
    ``max_budget_j`` is wasted on a saturated LP anyway).
    """

    def __init__(
        self,
        horizon_periods: int,
        max_budget_j: Union[float, np.ndarray],
        passes: int = 3,
        candidates: int = 16,
        feasibility_tol_j: float = 1e-9,
        backend: str = "numpy",
    ) -> None:
        super().__init__(horizon_periods, backend=backend)
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        if candidates < 3:
            raise ValueError(f"need at least 3 candidates, got {candidates}")
        if feasibility_tol_j < 0:
            raise ValueError("feasibility tolerance must be non-negative")
        self.max_budget_j = np.asarray(max_budget_j, dtype=float)
        if np.any(self.max_budget_j <= 0):
            raise ValueError("max_budget_j must be positive")
        self.passes = int(passes)
        self.candidates = int(candidates)
        self.feasibility_tol_j = float(feasibility_tol_j)
        self._fractions = np.linspace(0.0, 1.0, self.candidates)[:, None]
        self._indices = np.arange(self.candidates)[:, None]
        # (floor, ceiling, device-index) cache: constant across the many
        # per-period calls of one scan, keyed by the battery view.
        self._bounds_cache: tuple = ()

    def sustainable(
        self,
        budgets_j: np.ndarray,
        window: np.ndarray,
        charge_j: np.ndarray,
        battery: PlanBattery,
        consumption: ConsumptionFn,
    ) -> np.ndarray:
        """Sustainability mask of constant budgets: (D,) or (C, D) in/out.

        The budget is held constant over the window, so the LP consumption
        is one curve evaluation; the projected charge before window period
        ``k`` is the initial charge plus the cumulative (efficiency-
        weighted) harvest-minus-consumption deltas of the periods before
        it.  Sustainability requires every period's consumption to fit in
        its forecast harvest plus the store's deliverable charge.
        """
        budgets = np.asarray(budgets_j, dtype=float)
        squeeze = budgets.ndim == 1
        if squeeze:
            budgets = budgets[None, :]
        if self.backend != "numpy":
            tables = getattr(consumption, "fused_tables", None)
            tables = tables() if tables is not None else None
            if tables is not None:
                ok = kernels.mpc_sustainable(
                    budgets,
                    window,
                    charge_j,
                    battery.charge_efficiency,
                    battery.discharge_efficiency,
                    self.feasibility_tol_j,
                    tables,
                    self.backend,
                )
                if ok is not None:
                    return ok[0] if squeeze else ok
        spent = consumption(budgets)                            # (C, D)
        deltas = window[:, None, :] - spent[None, :, :]         # (W, C, D)
        stored = np.where(
            deltas >= 0,
            deltas * battery.charge_efficiency,
            deltas / battery.discharge_efficiency,
        )
        cumulative = stored.cumsum(axis=0)
        projected = np.empty_like(stored)                       # charge before k
        projected[0] = charge_j
        projected[1:] = charge_j + cumulative[:-1]
        deficit = (
            spent[None, :, :]
            - window[:, None, :]
            - projected * battery.discharge_efficiency
        )
        ok = deficit.max(axis=0) <= self.feasibility_tol_j      # (C, D)
        return ok[0] if squeeze else ok

    def step_budgets(
        self,
        window: np.ndarray,
        charge_j: np.ndarray,
        battery: PlanBattery,
        consumption: ConsumptionFn,
    ) -> np.ndarray:
        window = self._validate_window(window)
        floor, ceiling, device_index = self._bounds(battery, charge_j.shape)
        lo, hi = floor, ceiling
        ceiling_ok = floor_ok = None
        for _ in range(self.passes):
            grid = lo + (hi - lo) * self._fractions             # (C, D)
            ok = self.sustainable(
                grid, window, charge_j, battery, consumption
            )
            if ceiling_ok is None:
                # Pass 1 spans [floor, ceiling]: its endpoints decide the
                # degraded regimes.
                ceiling_ok, floor_ok = ok[-1], ok[0]
            best = np.where(ok, self._indices, -1).max(axis=0)  # (D,)
            found = best >= 0
            clipped = np.maximum(best, 0)
            new_lo = grid[clipped, device_index]
            new_hi = grid[np.minimum(clipped + 1, self.candidates - 1),
                          device_index]
            lo = np.where(found, new_lo, lo)
            hi = np.where(found, new_hi, lo)
        # Ceiling sustainable: grant it.  Floor unsustainable: degrade to
        # the floor (the static off-state allocation).  Otherwise: the
        # search's best sustainable budget.  The final supply clamp only
        # bites in the degraded regime -- sustainability at window period
        # 0 already bounds the plan's consumption by the period's supply
        # -- and keeps an empty store from granting unfunded budgets.
        budget = np.where(ceiling_ok, ceiling, np.where(floor_ok, lo, floor))
        return np.minimum(
            budget, window[0] + charge_j * battery.discharge_efficiency
        )

    def _bounds(
        self, battery: PlanBattery, shape: tuple
    ) -> tuple:
        """Search bounds and device indexer, cached per battery view."""
        cached = self._bounds_cache
        if cached and cached[0] is battery and cached[1] == shape:
            return cached[2]
        floor = np.broadcast_to(battery.min_budget_j, shape).astype(float)
        ceiling = np.maximum(
            np.broadcast_to(self.max_budget_j, shape).astype(float), floor
        )
        bounds = (floor, ceiling, np.arange(floor.size))
        self._bounds_cache = (battery, shape, bounds)
        return bounds


__all__ = [
    "ConsumptionFn",
    "HorizonAverageAllocator",
    "HorizonPlanner",
    "MpcPlanner",
    "PLANNER_KINDS",
    "PlanBattery",
    "validate_planner_kind",
]
