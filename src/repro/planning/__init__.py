"""Forecast-driven planning: turn harvest forecasts into allocation plans.

The paper's allocation loop consumes one energy budget per activity period
and delegates *where budgets come from* to an energy-allocation layer.
This subsystem is that layer's forward-looking half: forecast providers
(:mod:`repro.planning.forecasts`) turn harvest traces into lookahead
matrices, horizon planners (:mod:`repro.planning.horizon`) turn lookaheads
plus battery state into budgets, and the vectorized
:class:`~repro.planning.scan.PlanScan` steps whole fleets of planned
devices in lockstep (:mod:`repro.planning.reference` keeps the scalar
cross-check).  Planning plugs into campaigns as policies:
:class:`repro.simulation.policies.PlanningPolicy` is accepted by the fleet
engine, the ``fleet`` / ``plan`` CLI commands and the allocation service's
campaign endpoints.
"""

from repro.planning.forecasts import (
    FORECAST_KINDS,
    ForecastProvider,
    NoisyOracleForecast,
    PerfectForecast,
    PersistenceForecast,
    make_forecast_provider,
    validate_forecast_kind,
)
from repro.planning.horizon import (
    HorizonAverageAllocator,
    HorizonPlanner,
    MpcPlanner,
    PLANNER_KINDS,
    PlanBattery,
    validate_planner_kind,
)
from repro.planning.scan import PlanScan

__all__ = [
    "FORECAST_KINDS",
    "ForecastProvider",
    "HorizonAverageAllocator",
    "HorizonPlanner",
    "MpcPlanner",
    "NoisyOracleForecast",
    "PLANNER_KINDS",
    "PerfectForecast",
    "PersistenceForecast",
    "PlanBattery",
    "PlanScan",
    "make_forecast_provider",
    "validate_forecast_kind",
    "validate_planner_kind",
]
