"""Scalar reference loop for forecast-driven planning campaigns.

This is the cross-checked, unvectorized counterpart of
:class:`~repro.planning.scan.PlanScan`: one device, one Python iteration
per period, real LP solves instead of consumption-curve lookups, and the
scalar :class:`~repro.energy.battery.Battery` doing the settling.  Per
period it

1. plans the budget with the shared planner math (``D = 1`` arrays),
2. materialises the period's schedule by *solving the LP* -- the MPC
   planner solves its whole forecast window in one
   :meth:`~repro.core.batch.BatchAllocator.solve_arrays` broadcast call
   and executes the first entry; the horizon-average planner solves one
   scalar LP per period,
3. executes the schedule on the device simulator, and
4. settles the actual harvest against the battery.

The equivalence suite and :mod:`benchmarks.bench_planning` assert the scan
matches this loop to 1e-9 on budgets, objectives and battery trajectories;
the scan must also be at least 10x faster.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.energy.battery import Battery
from repro.planning.horizon import PlanBattery
from repro.simulation.device import DeviceSimulator
from repro.simulation.metrics import PeriodOutcome


def run_planning_scalar(
    policy,
    harvest_j: np.ndarray,
    capacity_j: float,
    initial_charge_j: float,
    target_soc: float,
    max_draw_j: float,
    device: DeviceSimulator,
) -> Tuple[List[PeriodOutcome], np.ndarray]:
    """Run one planning policy over one harvest trace, scalar reference.

    ``policy`` is a :class:`~repro.simulation.policies.PlanningPolicy`
    (duck-typed: it provides ``forecast_provider()``, ``build_planner()``,
    ``horizon_periods``, ``planner`` and the usual allocation surface).
    Returns the per-period outcomes and the battery trajectory (H + 1
    entries, like :attr:`Battery.history`).
    """
    harvest = np.asarray(harvest_j, dtype=float)
    battery = Battery(capacity_j=capacity_j, initial_charge_j=initial_charge_j)
    plan_battery = PlanBattery.from_battery(
        battery, target_soc=target_soc, max_draw_j=max_draw_j
    )
    planner = policy.build_planner()
    horizon = policy.horizon_periods
    matrix = policy.forecast_provider().matrix(harvest, horizon)    # (H, W)
    curve = policy.consumption_curve()
    is_mpc = policy.planner == "mpc"

    outcomes: List[PeriodOutcome] = []
    for period, actual in enumerate(harvest):
        window = matrix[period][:, None]                            # (W, 1)
        charge = np.array([battery.charge_j])
        budget = float(
            planner.step_budgets(window, charge, plan_battery, curve)[0]
        )
        if is_mpc:
            # Receding horizon: solve the whole window's LPs in one
            # broadcast call, execute the plan's first period.
            plan = policy.allocate_arrays(np.full(horizon, budget))
            allocation = plan.allocation(0)
        else:
            allocation = policy.allocate(budget)
        outcome = device.run_period(allocation, period, budget)
        consumed = outcome.energy_consumed_j
        if actual >= consumed:
            battery.charge(actual - consumed)
        else:
            battery.discharge(consumed - actual)
        outcomes.append(outcome)
    return outcomes, np.array(battery.history)


__all__ = ["run_planning_scalar"]
