"""Forecast providers: harvest traces -> per-period lookahead matrices.

The planning subsystem consumes forecasts in one canonical shape: a
``(H, W)`` *forecast matrix* whose row ``t`` holds the ``W``-period
lookahead available at the start of period ``t`` (entry ``[t, k]`` is the
prediction for period ``t + k``).  Providers build that matrix from the
scenario's true harvest vector up front, so forecast generation costs one
array pass per campaign cell instead of one call per period, and a fleet of
devices can carry one forecast tensor ``(H, W, D)`` into the vectorized
:class:`~repro.planning.scan.PlanScan`.

Three providers span the forecast-quality axis the planning studies sweep:

* :class:`PerfectForecast` -- oracle lookahead (the true future harvest);
  isolates the value of planning from the cost of forecast error.
* :class:`PersistenceForecast` -- yesterday-equals-today: the prediction for
  a period is the value observed one (or more) whole days earlier.  The
  first day has no history and falls back to ``initial_j`` -- planners must
  degrade gracefully on that all-zeros horizon.
* :class:`NoisyOracleForecast` -- the true future scaled by deterministic
  multiplicative noise (seeded, clipped at zero), turning forecast error
  into a first-class scenario axis.

These providers are *trace-level* wrappers over the same signal the online
estimators in :mod:`repro.harvesting.forecast` track incrementally; the
matrix form is what the lockstep planning scan needs.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

#: Forecast providers selectable by name (CLI, campaign requests).
FORECAST_KINDS = ("perfect", "persistence", "noisy")


def validate_forecast_kind(kind: str) -> str:
    """Check a forecast-provider name (raises ``ValueError`` when unknown)."""
    if kind not in FORECAST_KINDS:
        raise ValueError(
            f"forecast must be one of {FORECAST_KINDS}, got {kind!r}"
        )
    return kind


def _validate_harvest(harvest_j: Sequence[float]) -> np.ndarray:
    harvest = np.asarray(harvest_j, dtype=float)
    if harvest.ndim != 1 or harvest.size == 0:
        raise ValueError(
            f"harvest must be a non-empty 1-D vector, got shape {harvest.shape}"
        )
    if np.any(harvest < 0):
        raise ValueError("harvest must be non-negative")
    return harvest


class ForecastProvider(abc.ABC):
    """Base class: turns a harvest trace into a lookahead matrix."""

    #: Provider name as used by CLI flags and campaign requests.
    kind: str = ""

    @abc.abstractmethod
    def matrix(self, harvest_j: Sequence[float], horizon: int) -> np.ndarray:
        """``(H, W)`` forecast matrix for a ``(H,)`` harvest vector.

        Entry ``[t, k]`` is the prediction, made at the start of period
        ``t``, of the energy period ``t + k`` will harvest.  Predictions
        beyond the end of the trace are zero (the campaign ends; planning
        against zero is the conservative choice).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PerfectForecast(ForecastProvider):
    """Oracle lookahead: the forecast *is* the future harvest."""

    kind = "perfect"

    def matrix(self, harvest_j: Sequence[float], horizon: int) -> np.ndarray:
        harvest = _validate_harvest(harvest_j)
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        num_periods = harvest.size
        targets = np.arange(num_periods)[:, None] + np.arange(horizon)[None, :]
        clipped = np.minimum(targets, num_periods - 1)
        return np.where(targets < num_periods, harvest[clipped], 0.0)


class PersistenceForecast(ForecastProvider):
    """Seasonal persistence: a period looks like the same slot one day ago.

    The prediction for target period ``s`` uses the most recent same-slot
    value that was already *observed* when the forecast is issued -- one
    whole day back for lookaheads shorter than a day, further back when the
    horizon spans multiple days.  Targets with no observed history (the
    first day of the campaign) fall back to ``initial_j``.
    """

    kind = "persistence"

    def __init__(self, periods_per_day: int = 24, initial_j: float = 0.0) -> None:
        if periods_per_day < 1:
            raise ValueError(
                f"periods_per_day must be >= 1, got {periods_per_day}"
            )
        if initial_j < 0:
            raise ValueError(f"initial forecast must be non-negative, got {initial_j}")
        self.periods_per_day = int(periods_per_day)
        self.initial_j = float(initial_j)

    def __repr__(self) -> str:
        return (
            f"PersistenceForecast(periods_per_day={self.periods_per_day}, "
            f"initial_j={self.initial_j})"
        )

    def matrix(self, harvest_j: Sequence[float], horizon: int) -> np.ndarray:
        harvest = _validate_harvest(harvest_j)
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        num_periods = harvest.size
        offsets = np.arange(horizon)[None, :]                      # (1, W)
        # Look back whole days: enough of them that the source period
        # precedes the issue time t (k // P + 1 days covers offset k).
        days_back = offsets // self.periods_per_day + 1
        sources = (
            np.arange(num_periods)[:, None]
            + offsets
            - days_back * self.periods_per_day
        )
        clipped = np.maximum(sources, 0)
        return np.where(sources >= 0, harvest[clipped], self.initial_j)


class NoisyOracleForecast(ForecastProvider):
    """Perfect lookahead corrupted by seeded multiplicative noise.

    Each matrix entry is the true value scaled by ``max(0, 1 + sigma * z)``
    with ``z`` standard normal.  The noise field is drawn once from
    ``numpy.random.default_rng(seed)`` over the whole ``(H, W)`` matrix, so
    a fixed seed yields a bit-identical forecast on every run -- and the
    scalar reference loop and the fleet scan see the same noise.
    """

    kind = "noisy"

    def __init__(self, noise_std: float = 0.2, seed: int = 7) -> None:
        if noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {noise_std}")
        self.noise_std = float(noise_std)
        self.seed = int(seed)

    def __repr__(self) -> str:
        return f"NoisyOracleForecast(noise_std={self.noise_std}, seed={self.seed})"

    def matrix(self, harvest_j: Sequence[float], horizon: int) -> np.ndarray:
        exact = PerfectForecast().matrix(harvest_j, horizon)
        rng = np.random.default_rng(self.seed)
        factors = np.maximum(
            0.0, 1.0 + self.noise_std * rng.standard_normal(exact.shape)
        )
        return exact * factors


def make_forecast_provider(
    kind: str,
    noise_std: float = 0.2,
    seed: int = 7,
    periods_per_day: int = 24,
) -> ForecastProvider:
    """Build a provider by name (the CLI / campaign-request factory)."""
    validate_forecast_kind(kind)
    if kind == "perfect":
        return PerfectForecast()
    if kind == "persistence":
        return PersistenceForecast(periods_per_day=periods_per_day)
    return NoisyOracleForecast(noise_std=noise_std, seed=seed)


__all__ = [
    "FORECAST_KINDS",
    "ForecastProvider",
    "NoisyOracleForecast",
    "PerfectForecast",
    "PersistenceForecast",
    "make_forecast_provider",
    "validate_forecast_kind",
]
