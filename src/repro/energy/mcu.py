"""Execution-time and energy model of the TI CC2650 MCU.

The prototype runs all feature generation and classification on a CC2650
(ARM Cortex-M3 at 47 MHz).  We model its contribution to the per-activity
energy with four components, calibrated against the execution-time and
MCU-energy columns of Table 2:

* **compute** -- the MCU in active mode for the few milliseconds of feature
  generation and NN inference;
* **acquisition** -- servicing the 100 Hz sensor interrupts (reading the
  accelerometer over SPI and the stretch sensor through the ADC);
* **system** -- sleep current, RTC and power management over the rest of the
  activity window;
* **communication** -- handled separately by :mod:`repro.energy.ble`.

Execution times for the individual pipeline stages follow simple operation
counts (samples processed, multiply-accumulates of the NN) with per-stage
constants fitted to the published breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.paper_constants import ACTIVITY_WINDOW_S, MCU_FREQUENCY_HZ
from repro.har.config import FeatureConfig


@dataclass(frozen=True)
class MCUModel:
    """Calibrated CC2650 execution-time / energy model.

    All times are in milliseconds, energies in millijoules, powers in
    milliwatts unless the name says otherwise.
    """

    #: Clock frequency (informational; the per-stage constants already
    #: incorporate it).
    frequency_hz: float = MCU_FREQUENCY_HZ
    #: Active-mode power while computing (run mode, peripherals clocked).
    active_power_mw: float = 9.6
    #: Average power of the sleep/RTC/power-management overhead while the
    #: device is within an activity window but the CPU is idle.
    system_power_mw: float = 0.78
    #: Energy to acquire one sensor sample (interrupt + bus transaction).
    acquisition_energy_per_sample_uj: float = 1.08
    #: Execution time of the statistical feature pass, per axis for a full
    #: 1.6 s window (scaled by the sensing fraction).
    statistical_accel_ms_per_axis: float = 0.277
    #: Execution time of the Haar DWT feature pass, per axis for a full
    #: window (DWT is the most expensive accelerometer feature in Figure 2).
    dwt_accel_ms_per_axis: float = 0.92
    #: Execution time of the 16-point FFT pass over the stretch window.
    fft_stretch_ms: float = 3.83
    #: Execution time of the statistical feature pass over the stretch window.
    statistical_stretch_ms: float = 0.31
    #: Fixed overhead of invoking the NN classifier (buffering, scaling).
    nn_overhead_ms: float = 0.77
    #: Execution time per multiply-accumulate of the NN classifier.
    nn_ms_per_mac: float = 0.0006

    # --- execution time -----------------------------------------------------------
    def accel_feature_time_ms(self, config: FeatureConfig) -> float:
        """Execution time of the accelerometer feature pass for ``config``."""
        if not config.uses_accelerometer or config.accel_features == "none":
            return 0.0
        if config.accel_features == "statistical":
            per_axis = self.statistical_accel_ms_per_axis
        else:  # dwt
            per_axis = self.dwt_accel_ms_per_axis
        return per_axis * config.num_accel_axes * config.sensing_fraction

    def stretch_feature_time_ms(self, config: FeatureConfig) -> float:
        """Execution time of the stretch-sensor feature pass for ``config``."""
        if not config.uses_stretch:
            return 0.0
        if config.stretch_features == "fft16":
            return self.fft_stretch_ms
        return self.statistical_stretch_ms

    def classifier_time_ms(self, num_macs: int) -> float:
        """Execution time of one NN inference with ``num_macs`` MACs."""
        if num_macs < 0:
            raise ValueError(f"num_macs must be non-negative, got {num_macs}")
        return self.nn_overhead_ms + self.nn_ms_per_mac * num_macs

    def total_exec_time_ms(self, config: FeatureConfig, num_macs: int) -> float:
        """Total per-activity MCU execution time (features + classifier)."""
        return (
            self.accel_feature_time_ms(config)
            + self.stretch_feature_time_ms(config)
            + self.classifier_time_ms(num_macs)
        )

    # --- energy ---------------------------------------------------------------------
    def compute_energy_mj(self, exec_time_ms: float) -> float:
        """Energy of the MCU in active mode for ``exec_time_ms``."""
        if exec_time_ms < 0:
            raise ValueError(f"execution time must be non-negative, got {exec_time_ms}")
        return self.active_power_mw * exec_time_ms * 1e-3

    def acquisition_energy_mj(
        self,
        config: FeatureConfig,
        window_s: float = ACTIVITY_WINDOW_S,
        sampling_hz: float = 100.0,
    ) -> float:
        """Energy spent servicing sensor-sampling interrupts for one window."""
        samples = 0.0
        if config.uses_accelerometer:
            samples += (
                config.num_accel_axes * sampling_hz * window_s * config.sensing_fraction
            )
        if config.uses_stretch:
            samples += sampling_hz * window_s
        return self.acquisition_energy_per_sample_uj * samples * 1e-3

    def system_energy_mj(self, window_s: float = ACTIVITY_WINDOW_S) -> float:
        """Sleep/RTC/power-management energy over one activity window."""
        return self.system_power_mw * window_s

    def mcu_energy_mj(
        self,
        config: FeatureConfig,
        num_macs: int,
        window_s: float = ACTIVITY_WINDOW_S,
        sampling_hz: float = 100.0,
    ) -> float:
        """Total MCU energy per activity window, excluding the radio."""
        exec_time = self.total_exec_time_ms(config, num_macs)
        return (
            self.compute_energy_mj(exec_time)
            + self.acquisition_energy_mj(config, window_s, sampling_hz)
            + self.system_energy_mj(window_s)
        )


__all__ = ["MCUModel"]
