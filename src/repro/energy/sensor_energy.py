"""Energy models of the motion and stretch sensors.

Calibrated against the "Sensor energy" column of Table 2:

* the stretch sensor is passive and costs ~0.08 mJ per 1.6 s window
  (essentially the ADC reference and bias network);
* the MPU-9250 accelerometer has a fixed turn-on cost (voltage regulator and
  digital core) plus a per-axis sampling cost, both proportional to how long
  the sensor stays on within the window (the sensing-period knob).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.paper_constants import ACTIVITY_WINDOW_S
from repro.har.config import FeatureConfig


@dataclass(frozen=True)
class AccelerometerEnergyModel:
    """Invensense MPU-9250 accelerometer energy model."""

    #: Power drawn whenever the device is powered, regardless of axes, in mW.
    base_power_mw: float = 0.634
    #: Additional power per enabled axis, in mW.
    per_axis_power_mw: float = 0.209

    def power_mw(self, num_axes: int) -> float:
        """Average power while the accelerometer is on with ``num_axes`` axes."""
        if num_axes < 0:
            raise ValueError(f"num_axes must be non-negative, got {num_axes}")
        if num_axes == 0:
            return 0.0
        return self.base_power_mw + self.per_axis_power_mw * num_axes

    def energy_mj(
        self,
        num_axes: int,
        sensing_fraction: float,
        window_s: float = ACTIVITY_WINDOW_S,
    ) -> float:
        """Energy per activity window in millijoules."""
        if not 0.0 <= sensing_fraction <= 1.0:
            raise ValueError(
                f"sensing_fraction must be in [0, 1], got {sensing_fraction}"
            )
        on_time = window_s * sensing_fraction
        return self.power_mw(num_axes) * on_time


@dataclass(frozen=True)
class StretchSensorEnergyModel:
    """Passive stretch sensor energy model (ADC bias network)."""

    #: Average power while sampling, in mW.
    power_mw: float = 0.05

    def energy_mj(self, window_s: float = ACTIVITY_WINDOW_S) -> float:
        """Energy per activity window in millijoules."""
        return self.power_mw * window_s


@dataclass(frozen=True)
class SensorSuiteEnergyModel:
    """Combined sensor-energy model used by the design-point characterisation."""

    accelerometer: AccelerometerEnergyModel = AccelerometerEnergyModel()
    stretch: StretchSensorEnergyModel = StretchSensorEnergyModel()

    def sensor_energy_mj(
        self,
        config: FeatureConfig,
        window_s: float = ACTIVITY_WINDOW_S,
    ) -> float:
        """Total sensor energy per activity window for ``config``."""
        energy = 0.0
        if config.uses_accelerometer:
            energy += self.accelerometer.energy_mj(
                config.num_accel_axes, config.sensing_fraction, window_s
            )
        if config.uses_stretch:
            energy += self.stretch.energy_mj(window_s)
        return energy

    def accel_energy_mj(
        self, config: FeatureConfig, window_s: float = ACTIVITY_WINDOW_S
    ) -> float:
        """Accelerometer share of the sensor energy."""
        if not config.uses_accelerometer:
            return 0.0
        return self.accelerometer.energy_mj(
            config.num_accel_axes, config.sensing_fraction, window_s
        )

    def stretch_energy_mj(
        self, config: FeatureConfig, window_s: float = ACTIVITY_WINDOW_S
    ) -> float:
        """Stretch-sensor share of the sensor energy."""
        if not config.uses_stretch:
            return 0.0
        return self.stretch.energy_mj(window_s)


__all__ = [
    "AccelerometerEnergyModel",
    "SensorSuiteEnergyModel",
    "StretchSensorEnergyModel",
]
