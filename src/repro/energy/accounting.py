"""Energy accounting over an activity period (Figure 4).

Figure 4 of the paper breaks the 9.9 J that DP1 consumes over a one-hour
activity period into its components (about 47% of it due to the sensors).
This module produces that breakdown for any design point, either from a full
:class:`~repro.energy.power_model.DesignPointCharacterization` (preferred,
gives the fine-grained split) or from a bare
:class:`~repro.core.design_point.DesignPoint` (coarser split based on its
stored energy breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.design_point import DesignPoint
from repro.data.paper_constants import ACTIVITY_PERIOD_S
from repro.energy.power_model import DesignPointCharacterization


@dataclass(frozen=True)
class HourlyEnergyBreakdown:
    """Energy breakdown of one design point run for a full activity period.

    All values are in joules over the period.
    """

    accel_sensor_j: float
    stretch_sensor_j: float
    mcu_compute_j: float
    mcu_acquisition_j: float
    mcu_system_j: float
    communication_j: float
    period_s: float = ACTIVITY_PERIOD_S

    @property
    def sensors_j(self) -> float:
        """Combined sensor energy."""
        return self.accel_sensor_j + self.stretch_sensor_j

    @property
    def mcu_j(self) -> float:
        """Combined MCU energy (compute + acquisition + system)."""
        return self.mcu_compute_j + self.mcu_acquisition_j + self.mcu_system_j

    @property
    def total_j(self) -> float:
        """Total energy over the period."""
        return self.sensors_j + self.mcu_j + self.communication_j

    def fractions(self) -> Dict[str, float]:
        """Each component as a fraction of the total."""
        total = self.total_j
        if total <= 0:
            return {key: 0.0 for key in self.as_dict()}
        return {key: value / total for key, value in self.as_dict().items()}

    def as_dict(self) -> Dict[str, float]:
        """Component energies keyed by a stable set of names."""
        return {
            "accel_sensor_j": self.accel_sensor_j,
            "stretch_sensor_j": self.stretch_sensor_j,
            "mcu_compute_j": self.mcu_compute_j,
            "mcu_acquisition_j": self.mcu_acquisition_j,
            "mcu_system_j": self.mcu_system_j,
            "communication_j": self.communication_j,
        }


def hourly_breakdown_from_characterization(
    characterization: DesignPointCharacterization,
    period_s: float = ACTIVITY_PERIOD_S,
) -> HourlyEnergyBreakdown:
    """Scale a per-activity characterisation up to a full activity period.

    The device processes ``period_s / window_s`` activity windows back to
    back, so every per-window component scales by that count.
    """
    if period_s <= 0:
        raise ValueError(f"period must be positive, got {period_s}")
    windows = period_s / characterization.window_s
    scale = windows * 1e-3  # mJ per window -> J per period
    return HourlyEnergyBreakdown(
        accel_sensor_j=characterization.accel_sensor_energy_mj * scale,
        stretch_sensor_j=characterization.stretch_sensor_energy_mj * scale,
        mcu_compute_j=characterization.mcu_compute_energy_mj * scale,
        mcu_acquisition_j=characterization.mcu_acquisition_energy_mj * scale,
        mcu_system_j=characterization.mcu_system_energy_mj * scale,
        communication_j=characterization.energy.communication_mj * scale,
        period_s=period_s,
    )


def hourly_breakdown_from_design_point(
    design_point: DesignPoint,
    period_s: float = ACTIVITY_PERIOD_S,
    communication_mj_per_activity: float = 0.38,
) -> HourlyEnergyBreakdown:
    """Coarse hourly breakdown from a published (Table 2 style) design point.

    The published rows only split energy into MCU and sensor shares; the BLE
    label transmission is carved out of the MCU share using the paper's
    0.38 mJ figure, and the remaining MCU energy is reported under
    ``mcu_system_j`` (the published data does not separate compute from
    acquisition).
    """
    if design_point.energy_breakdown is None:
        raise ValueError(
            f"design point {design_point.name} carries no energy breakdown"
        )
    windows = period_s / design_point.activity_period_s
    scale = windows * 1e-3
    breakdown = design_point.energy_breakdown
    communication_mj = min(communication_mj_per_activity, breakdown.mcu_mj)
    mcu_rest_mj = breakdown.mcu_mj - communication_mj
    return HourlyEnergyBreakdown(
        accel_sensor_j=max(0.0, breakdown.sensor_mj - 0.08) * scale,
        stretch_sensor_j=min(0.08, breakdown.sensor_mj) * scale,
        mcu_compute_j=0.0,
        mcu_acquisition_j=0.0,
        mcu_system_j=mcu_rest_mj * scale,
        communication_j=(communication_mj + breakdown.communication_mj) * scale,
        period_s=period_s,
    )


def off_state_energy_j(
    off_power_w: float,
    period_s: float = ACTIVITY_PERIOD_S,
) -> float:
    """Energy drawn by the harvesting/monitoring circuitry over a period."""
    if off_power_w < 0:
        raise ValueError(f"off power must be non-negative, got {off_power_w}")
    if period_s <= 0:
        raise ValueError(f"period must be positive, got {period_s}")
    return off_power_w * period_s


__all__ = [
    "HourlyEnergyBreakdown",
    "hourly_breakdown_from_characterization",
    "hourly_breakdown_from_design_point",
    "off_state_energy_j",
]
