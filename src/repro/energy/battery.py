"""Small battery / supercapacitor model.

The second class of energy-harvesting devices the paper targets keeps a
small backup battery so the node can ride through hours with little or no
harvest.  The model tracks the state of charge in joules, applies separate
charge and discharge efficiencies and clamps at the capacity limits, which is
all the energy-allocation layer needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class Battery:
    """Energy store with round-trip losses.

    Parameters
    ----------
    capacity_j:
        Usable capacity in joules.
    initial_charge_j:
        Initial state of charge in joules (defaults to half full).
    charge_efficiency:
        Fraction of incoming energy actually stored.
    discharge_efficiency:
        Fraction of stored energy actually delivered to the load.
    """

    capacity_j: float
    initial_charge_j: float = -1.0
    charge_efficiency: float = 0.9
    discharge_efficiency: float = 0.95
    _charge_j: float = field(init=False, repr=False)
    history: List[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_j}")
        if not 0 < self.charge_efficiency <= 1:
            raise ValueError("charge_efficiency must be in (0, 1]")
        if not 0 < self.discharge_efficiency <= 1:
            raise ValueError("discharge_efficiency must be in (0, 1]")
        if self.initial_charge_j < 0:
            self.initial_charge_j = self.capacity_j / 2
        if self.initial_charge_j > self.capacity_j:
            raise ValueError("initial charge exceeds capacity")
        self._charge_j = self.initial_charge_j
        self.history.append(self._charge_j)

    # --- state -------------------------------------------------------------------
    @property
    def charge_j(self) -> float:
        """Current state of charge in joules."""
        return self._charge_j

    @property
    def state_of_charge(self) -> float:
        """State of charge as a fraction of capacity."""
        return self._charge_j / self.capacity_j

    @property
    def headroom_j(self) -> float:
        """Energy that can still be stored before the battery is full."""
        return self.capacity_j - self._charge_j

    @property
    def available_j(self) -> float:
        """Energy that can be drawn from the battery (after discharge losses)."""
        return self._charge_j * self.discharge_efficiency

    # --- operations ----------------------------------------------------------------
    def charge(self, energy_j: float) -> float:
        """Store ``energy_j`` of harvested energy; return the amount wasted.

        Waste comes from charge-efficiency losses and from overflowing the
        capacity (energy harvested with nowhere to go).
        """
        if energy_j < 0:
            raise ValueError(f"cannot charge a negative amount: {energy_j}")
        storable = energy_j * self.charge_efficiency
        accepted = min(storable, self.headroom_j)
        self._charge_j += accepted
        self.history.append(self._charge_j)
        return energy_j - accepted / self.charge_efficiency if self.charge_efficiency else 0.0

    def discharge(self, energy_j: float) -> float:
        """Draw ``energy_j`` from the battery; return the amount delivered.

        When the request exceeds the available energy the battery delivers
        what it can and empties.
        """
        if energy_j < 0:
            raise ValueError(f"cannot discharge a negative amount: {energy_j}")
        deliverable = min(energy_j, self.available_j)
        self._charge_j -= deliverable / self.discharge_efficiency
        self._charge_j = max(0.0, self._charge_j)
        self.history.append(self._charge_j)
        return deliverable

    def reset(self, charge_j: float = -1.0) -> None:
        """Reset the state of charge (defaults to the initial charge)."""
        if charge_j < 0:
            charge_j = self.initial_charge_j
        if charge_j > self.capacity_j:
            raise ValueError("charge exceeds capacity")
        self._charge_j = charge_j
        self.history = [self._charge_j]


__all__ = ["Battery"]
