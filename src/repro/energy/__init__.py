"""Energy models of the IoT prototype.

Analytical stand-ins for the measurements the paper took on the
TI-Sensortag prototype:

* :mod:`repro.energy.mcu` -- CC2650 execution time and energy,
* :mod:`repro.energy.sensor_energy` -- accelerometer and stretch sensor,
* :mod:`repro.energy.ble` -- BLE transmission (label vs raw offload),
* :mod:`repro.energy.power_model` -- per-design-point characterisation,
* :mod:`repro.energy.accounting` -- per-hour energy breakdowns (Figure 4),
* :mod:`repro.energy.battery`, :mod:`repro.energy.harvester`,
  :mod:`repro.energy.budget` -- the storage and budget-allocation layer that
  feeds the runtime controller,
* :mod:`repro.energy.fleet` -- the vectorized battery scan that steps many
  independent battery-backed devices in lockstep for fleet campaigns.
"""

from repro.energy.accounting import (
    HourlyEnergyBreakdown,
    hourly_breakdown_from_characterization,
    hourly_breakdown_from_design_point,
    off_state_energy_j,
)
from repro.energy.battery import Battery
from repro.energy.ble import BLEModel, offloading_comparison
from repro.energy.budget import (
    BudgetDecision,
    HarvestFollowingAllocator,
    HorizonAverageAllocator,
)
from repro.energy.fleet import BatteryScan, BatteryScanResult
from repro.energy.harvester import HarvestingCircuit
from repro.energy.mcu import MCUModel
from repro.energy.power_model import (
    DesignPointCharacterization,
    DesignPointEnergyModel,
    classifier_macs,
)
from repro.energy.sensor_energy import (
    AccelerometerEnergyModel,
    SensorSuiteEnergyModel,
    StretchSensorEnergyModel,
)

__all__ = [
    "AccelerometerEnergyModel",
    "BLEModel",
    "Battery",
    "BatteryScan",
    "BatteryScanResult",
    "BudgetDecision",
    "DesignPointCharacterization",
    "DesignPointEnergyModel",
    "HarvestFollowingAllocator",
    "HarvestingCircuit",
    "HorizonAverageAllocator",
    "HourlyEnergyBreakdown",
    "MCUModel",
    "SensorSuiteEnergyModel",
    "StretchSensorEnergyModel",
    "classifier_macs",
    "hourly_breakdown_from_characterization",
    "hourly_breakdown_from_design_point",
    "off_state_energy_j",
    "offloading_comparison",
]
