"""Bluetooth Low Energy transmission energy model.

Section 4.2 compares two communication strategies:

* transmitting only the recognised activity label (~0.38 mJ per activity),
* offloading the raw sensor data to the host (~5.5 mJ per activity), which
  the paper rejects as energy-inefficient.

We model the radio energy as a fixed per-connection-event overhead plus a
per-byte cost, calibrated so that those two published operating points are
reproduced for the DP1 sensor configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.paper_constants import (
    ACTIVITY_WINDOW_S,
    BLE_LABEL_TX_ENERGY_MJ,
    BLE_RAW_OFFLOAD_ENERGY_MJ,
    SENSOR_SAMPLING_HZ,
)
from repro.har.config import FeatureConfig


@dataclass(frozen=True)
class BLEModel:
    """Connection-event plus per-byte BLE energy model."""

    #: Fixed energy per transmission burst (connection event, radio ramp-up).
    overhead_mj: float = 0.32
    #: Incremental energy per payload byte.
    energy_per_byte_uj: float = 4.0
    #: Payload bytes for one recognised-activity notification.
    label_payload_bytes: int = 16
    #: Bytes per raw sensor sample (16-bit little-endian).
    bytes_per_sample: int = 2

    def transmit_energy_mj(self, payload_bytes: int) -> float:
        """Energy to transmit ``payload_bytes`` of application payload."""
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be non-negative, got {payload_bytes}")
        return self.overhead_mj + self.energy_per_byte_uj * payload_bytes * 1e-3

    def label_energy_mj(self) -> float:
        """Energy to transmit one recognised activity label."""
        return self.transmit_energy_mj(self.label_payload_bytes)

    def raw_offload_bytes(
        self,
        config: FeatureConfig,
        window_s: float = ACTIVITY_WINDOW_S,
        sampling_hz: float = SENSOR_SAMPLING_HZ,
    ) -> int:
        """Raw payload size for offloading one window of sensor data."""
        samples_per_channel = int(round(window_s * sampling_hz))
        channels = 0
        if config.uses_accelerometer:
            channels += config.num_accel_axes
        if config.uses_stretch:
            channels += 1
        total_samples = channels * samples_per_channel
        if config.uses_accelerometer:
            # Only the configured sensing fraction of the accelerometer data
            # exists to be sent.
            accel_samples = config.num_accel_axes * samples_per_channel
            total_samples -= int(round(accel_samples * (1.0 - config.sensing_fraction)))
        return total_samples * self.bytes_per_sample

    def raw_offload_energy_mj(
        self,
        config: FeatureConfig,
        window_s: float = ACTIVITY_WINDOW_S,
        sampling_hz: float = SENSOR_SAMPLING_HZ,
    ) -> float:
        """Energy to stream one window of raw sensor data to the host."""
        return self.transmit_energy_mj(self.raw_offload_bytes(config, window_s, sampling_hz))


def offloading_comparison(ble: BLEModel = BLEModel()) -> dict:
    """Reproduce the Section 4.2 offloading comparison.

    Returns a dictionary with the modelled label-transmit and raw-offload
    energies for the DP1 sensor configuration alongside the paper's numbers.
    """
    dp1_config = FeatureConfig(
        accel_axes=("x", "y", "z"),
        sensing_fraction=1.0,
        accel_features="statistical",
        stretch_features="fft16",
    )
    return {
        "label_energy_mj": ble.label_energy_mj(),
        "raw_offload_energy_mj": ble.raw_offload_energy_mj(dp1_config),
        "paper_label_energy_mj": BLE_LABEL_TX_ENERGY_MJ,
        "paper_raw_offload_energy_mj": BLE_RAW_OFFLOAD_ENERGY_MJ,
        "offload_penalty_factor": (
            ble.raw_offload_energy_mj(dp1_config) / ble.label_energy_mj()
        ),
    }


__all__ = ["BLEModel", "offloading_comparison"]
