"""Energy-harvesting front end.

Models the harvesting circuitry between the solar cell and the energy store:
a conversion efficiency (boost converter plus maximum-power-point tracking
losses) and the always-on quiescent draw that the paper quotes as the 0.18 J
per hour off-state floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W


@dataclass(frozen=True)
class HarvestingCircuit:
    """Harvesting front-end with conversion losses and quiescent draw."""

    #: Efficiency of the harvester (boost converter + MPPT).
    conversion_efficiency: float = 0.8
    #: Quiescent power of the harvesting + monitoring circuitry in watts.
    quiescent_power_w: float = OFF_STATE_POWER_W

    def __post_init__(self) -> None:
        if not 0 < self.conversion_efficiency <= 1:
            raise ValueError(
                f"conversion efficiency must be in (0, 1], got "
                f"{self.conversion_efficiency}"
            )
        if self.quiescent_power_w < 0:
            raise ValueError(
                f"quiescent power must be non-negative, got {self.quiescent_power_w}"
            )

    def harvested_energy_j(self, source_energy_j: float) -> float:
        """Usable energy delivered to the store from raw source energy."""
        if source_energy_j < 0:
            raise ValueError(
                f"source energy must be non-negative, got {source_energy_j}"
            )
        return source_energy_j * self.conversion_efficiency

    def quiescent_energy_j(self, duration_s: float = ACTIVITY_PERIOD_S) -> float:
        """Quiescent energy drawn over ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        return self.quiescent_power_w * duration_s


__all__ = ["HarvestingCircuit"]
