"""Per-design-point power and energy characterisation.

Combines the MCU, sensor and radio models into the per-activity numbers the
paper reports in Table 2: execution-time breakdown, MCU energy, sensor
energy, total energy per activity and average power.  This is the analytical
stand-in for the prototype's test-pad power measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.design_point import EnergyBreakdown, ExecutionBreakdown
from repro.data.paper_constants import ACTIVITY_WINDOW_S, SENSOR_SAMPLING_HZ
from repro.energy.ble import BLEModel
from repro.energy.mcu import MCUModel
from repro.energy.sensor_energy import SensorSuiteEnergyModel
from repro.har.config import HARConfig


def classifier_macs(
    num_features: int,
    hidden_layers: Sequence[int],
    num_classes: int = 7,
) -> int:
    """Multiply-accumulate count of a fully-connected classifier."""
    if num_features < 1:
        raise ValueError(f"num_features must be >= 1, got {num_features}")
    if num_classes < 2:
        raise ValueError(f"num_classes must be >= 2, got {num_classes}")
    sizes = [num_features, *[int(h) for h in hidden_layers], num_classes]
    return int(sum(a * b for a, b in zip(sizes[:-1], sizes[1:])))


@dataclass(frozen=True)
class DesignPointCharacterization:
    """The measured quantities of one design point (one Table 2 row)."""

    execution: ExecutionBreakdown
    energy: EnergyBreakdown
    accel_sensor_energy_mj: float
    stretch_sensor_energy_mj: float
    mcu_system_energy_mj: float
    mcu_acquisition_energy_mj: float
    mcu_compute_energy_mj: float
    window_s: float = ACTIVITY_WINDOW_S

    @property
    def total_energy_mj(self) -> float:
        """Total energy per activity window in millijoules."""
        return self.energy.total_mj

    @property
    def average_power_mw(self) -> float:
        """Average power while operating at this design point, in milliwatts."""
        return self.total_energy_mj / self.window_s

    @property
    def average_power_w(self) -> float:
        """Average power in watts."""
        return self.average_power_mw * 1e-3


@dataclass(frozen=True)
class DesignPointEnergyModel:
    """Analytical energy model evaluated per design-point configuration."""

    mcu: MCUModel = field(default_factory=MCUModel)
    sensors: SensorSuiteEnergyModel = field(default_factory=SensorSuiteEnergyModel)
    ble: BLEModel = field(default_factory=BLEModel)
    window_s: float = ACTIVITY_WINDOW_S
    sampling_hz: float = SENSOR_SAMPLING_HZ

    def characterize(
        self,
        config: HARConfig,
        num_features: int,
    ) -> DesignPointCharacterization:
        """Characterise one design point.

        Parameters
        ----------
        config:
            Full HAR configuration (feature knobs + classifier structure).
        num_features:
            Dimensionality of the feature vector fed to the classifier
            (depends on the feature configuration; obtained from the
            feature pipeline).
        """
        features = config.features
        macs = classifier_macs(num_features, config.hidden_layers)

        execution = ExecutionBreakdown(
            accel_features_ms=self.mcu.accel_feature_time_ms(features),
            stretch_features_ms=self.mcu.stretch_feature_time_ms(features),
            classifier_ms=self.mcu.classifier_time_ms(macs),
        )

        compute_mj = self.mcu.compute_energy_mj(execution.total_ms)
        acquisition_mj = self.mcu.acquisition_energy_mj(
            features, self.window_s, self.sampling_hz
        )
        system_mj = self.mcu.system_energy_mj(self.window_s)
        communication_mj = self.ble.label_energy_mj()
        accel_mj = self.sensors.accel_energy_mj(features, self.window_s)
        stretch_mj = self.sensors.stretch_energy_mj(features, self.window_s)

        energy = EnergyBreakdown(
            mcu_mj=compute_mj + acquisition_mj + system_mj,
            sensor_mj=accel_mj + stretch_mj,
            communication_mj=communication_mj,
        )
        return DesignPointCharacterization(
            execution=execution,
            energy=energy,
            accel_sensor_energy_mj=accel_mj,
            stretch_sensor_energy_mj=stretch_mj,
            mcu_system_energy_mj=system_mj,
            mcu_acquisition_energy_mj=acquisition_mj,
            mcu_compute_energy_mj=compute_mj,
            window_s=self.window_s,
        )

    def power_w(self, config: HARConfig, num_features: int) -> float:
        """Average active power of a design point, in watts."""
        return self.characterize(config, num_features).average_power_w


__all__ = [
    "DesignPointCharacterization",
    "DesignPointEnergyModel",
    "classifier_macs",
]
