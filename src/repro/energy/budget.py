"""Energy-budget allocation over a horizon of activity periods.

The REAP controller consumes one energy budget :math:`E_b` per activity
period.  The paper delegates how that budget is derived from the harvest and
the battery to prior energy-allocation work (Kansal et al. [13], Bhat et
al. [4]).  This module implements two representative allocators so the
month-long case study can run closed-loop:

* :class:`HarvestFollowingAllocator` -- spend what the current period is
  expected to harvest plus a bounded draw from (or deposit to) the battery to
  pull its state of charge toward a target level.  This is the spirit of the
  duty-cycle controllers in the related work.
* :class:`HorizonAverageAllocator` -- spread the total expected harvest of a
  look-ahead horizon (for example 24 hours) uniformly across its periods,
  subject to battery feasibility.  This approximates the LP-based allocation
  of Kansal et al.

Both allocators also enforce that every period receives at least the
off-state floor whenever the battery can supply it, so the monitoring
circuitry never browns out unnecessarily.

The classes here are the *scalar reference*: they step one device one
period at a time and are what the hour-by-hour campaign loop uses.  The
fleet campaign engine evaluates the same grant/settle recurrence for many
independent devices in lockstep through
:class:`repro.energy.fleet.BatteryScan`, which mirrors
:class:`HarvestFollowingAllocator` (and the underlying
:class:`~repro.energy.battery.Battery`) operation for operation; the
equivalence suite asserts the two paths agree to 1e-9 on budgets and
battery trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W
from repro.energy.battery import Battery


@dataclass(frozen=True)
class BudgetDecision:
    """Budget granted for one activity period, with its provenance."""

    period_index: int
    harvest_j: float
    battery_charge_before_j: float
    budget_j: float


class HarvestFollowingAllocator:
    """Grant each period its own harvest plus a battery-levelling correction.

    Parameters
    ----------
    battery:
        The shared energy store (mutated as budgets are granted and spent).
    target_soc:
        Desired battery state of charge; surpluses above it are released to
        the load, deficits below it are retained.
    max_battery_draw_j:
        Upper bound on how much the battery may contribute to a single
        period's budget.
    min_budget_j:
        Floor on the granted budget (defaults to the off-state energy so the
        standby circuitry stays powered when at all possible).
    """

    def __init__(
        self,
        battery: Battery,
        target_soc: float = 0.5,
        max_battery_draw_j: float = 5.0,
        min_budget_j: float = OFF_STATE_POWER_W * ACTIVITY_PERIOD_S,
    ) -> None:
        if not 0 <= target_soc <= 1:
            raise ValueError(f"target_soc must be in [0, 1], got {target_soc}")
        if max_battery_draw_j < 0:
            raise ValueError("max_battery_draw_j must be non-negative")
        self.battery = battery
        self.target_soc = target_soc
        self.max_battery_draw_j = max_battery_draw_j
        self.min_budget_j = min_budget_j
        self.decisions: List[BudgetDecision] = []

    def grant(self, harvest_j: float) -> float:
        """Grant the budget for one period given its harvested energy."""
        if harvest_j < 0:
            raise ValueError(f"harvest must be non-negative, got {harvest_j}")
        charge_before = self.battery.charge_j
        target_charge = self.target_soc * self.battery.capacity_j
        surplus = charge_before - target_charge
        battery_contribution = float(np.clip(surplus, 0.0, self.max_battery_draw_j))
        budget = harvest_j + battery_contribution
        if budget < self.min_budget_j:
            # Top the budget up to the floor if the battery can cover it.
            shortfall = self.min_budget_j - budget
            extra = min(shortfall, self.battery.available_j - battery_contribution)
            battery_contribution += max(0.0, extra)
            budget = harvest_j + battery_contribution
        decision = BudgetDecision(
            period_index=len(self.decisions),
            harvest_j=harvest_j,
            battery_charge_before_j=charge_before,
            budget_j=budget,
        )
        self.decisions.append(decision)
        return budget

    def settle(self, harvest_j: float, consumed_j: float) -> None:
        """Settle a period: bank unused harvest, draw the battery for the rest."""
        if consumed_j < 0:
            raise ValueError(f"consumed energy must be non-negative, got {consumed_j}")
        if harvest_j >= consumed_j:
            self.battery.charge(harvest_j - consumed_j)
        else:
            self.battery.discharge(consumed_j - harvest_j)

    def allocate_trace(
        self,
        harvest_trace_j: Sequence[float],
        consumption_fraction: float = 1.0,
    ) -> List[float]:
        """Grant budgets for a whole trace assuming a fixed spend fraction.

        ``consumption_fraction`` is the share of each granted budget the
        device actually consumes (1.0 means it spends everything, the worst
        case for the battery).  Returns the granted budgets.
        """
        if not 0 <= consumption_fraction <= 1:
            raise ValueError("consumption_fraction must be in [0, 1]")
        budgets = []
        for harvest in harvest_trace_j:
            budget = self.grant(float(harvest))
            budgets.append(budget)
            self.settle(float(harvest), budget * consumption_fraction)
        return budgets


class HorizonAverageAllocator:
    """Spread the expected harvest of a look-ahead horizon evenly.

    This mirrors LP-based energy-neutral allocation: over each horizon the
    total consumption equals the total expected harvest, with the battery
    absorbing the within-horizon mismatch.

    .. note::
        This is the *block-chunked* variant: the forecast is cut into
        fixed consecutive horizons up front.  The campaign-facing,
        receding-horizon planner of the same name lives in
        :class:`repro.planning.horizon.HorizonAverageAllocator` -- its
        window slides every period, it is battery- and supply-clamped per
        step, and it runs vectorized over whole fleets.  Import from the
        package that matches your use case.
    """

    def __init__(
        self,
        battery: Battery,
        horizon_periods: int = 24,
        min_budget_j: float = OFF_STATE_POWER_W * ACTIVITY_PERIOD_S,
    ) -> None:
        if horizon_periods < 1:
            raise ValueError(f"horizon must be >= 1 period, got {horizon_periods}")
        self.battery = battery
        self.horizon_periods = horizon_periods
        self.min_budget_j = min_budget_j

    def allocate(self, harvest_forecast_j: Sequence[float]) -> List[float]:
        """Return one budget per forecast period.

        The forecast is processed in consecutive horizons; each horizon's
        total harvest is divided evenly among its periods, clipped from below
        by the off-state floor and from above by what the battery plus the
        horizon harvest could physically supply.
        """
        forecast = [float(h) for h in harvest_forecast_j]
        if any(h < 0 for h in forecast):
            raise ValueError("harvest forecast contains negative values")
        budgets: List[float] = []
        for start in range(0, len(forecast), self.horizon_periods):
            chunk = forecast[start:start + self.horizon_periods]
            if not chunk:
                continue
            total = sum(chunk) + self.battery.available_j * 0.5
            per_period = total / len(chunk)
            per_period = max(per_period, self.min_budget_j)
            budgets.extend([per_period] * len(chunk))
        return budgets


__all__ = [
    "BudgetDecision",
    "HarvestFollowingAllocator",
    "HorizonAverageAllocator",
]
