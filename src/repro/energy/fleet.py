"""Vectorized closed-loop battery dynamics for fleets of devices.

Why this module exists
----------------------
The closed-loop month study steps a battery-backed budget allocator one
activity period at a time: :meth:`HarvestFollowingAllocator.grant` turns the
battery's state of charge into a budget, the runtime spends (part of) it,
and :meth:`HarvestFollowingAllocator.settle` banks the surplus or draws the
deficit through :class:`~repro.energy.battery.Battery`.  Periods cannot be
solved independently -- each budget depends on the previous period's
consumption -- so the grid-shaped batch engine of :mod:`repro.core.batch`
does not apply along the time axis.

What *can* be vectorized is the device axis.  Grant and settle are built
entirely from clips, minima and additions, so the charge recurrence for a
whole fleet of independent devices (one per policy x alpha x scenario cell)
is a lockstep scan: one state vector of battery charges, one vector step per
period.  Combined with the piecewise-linear
:class:`~repro.core.batch.ConsumptionCurve` (period consumption as a
closed-form function of the granted budget), the month-long closed-loop
study across a policy suite collapses from ``periods x policies``
LP-and-step iterations to ``periods`` vector steps.

:class:`BatteryScan` reproduces the scalar pair
(:class:`~repro.energy.battery.Battery` +
:class:`~repro.energy.budget.HarvestFollowingAllocator`) operation for
operation -- same clip order, same efficiency factors, same floor top-up --
so fleet trajectories match the scalar reference to floating-point
round-off.  The scalar classes remain the reference implementation and the
single-device story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.core import kernels
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W
from repro.energy.battery import Battery

#: Maps a (D,) vector of granted budgets to a (D,) vector of consumed energy
#: (typically a :class:`~repro.core.batch.StackedConsumptionCurves`).
ConsumptionFn = Callable[[np.ndarray], np.ndarray]

ArrayLike = Union[float, Sequence[float], np.ndarray]


@dataclass(frozen=True)
class BatteryScanResult:
    """Trajectories produced by one closed-loop fleet scan.

    All arrays are indexed ``[period, device]`` except ``charge_j``, which
    carries one extra leading row for the initial state of charge (so
    ``charge_j[t]`` is the charge *before* period ``t`` and ``charge_j[-1]``
    the final charge) -- the same shape as the scalar
    :attr:`Battery.history`.
    """

    harvest_j: np.ndarray   #: (H, D) harvested energy per period
    budgets_j: np.ndarray   #: (H, D) granted budgets
    consumed_j: np.ndarray  #: (H, D) energy the devices consumed
    charge_j: np.ndarray    #: (H + 1, D) battery state of charge

    @property
    def num_periods(self) -> int:
        """Number of scanned periods H."""
        return int(self.budgets_j.shape[0])

    @property
    def num_devices(self) -> int:
        """Number of devices D stepped in lockstep."""
        return int(self.budgets_j.shape[1])

    @property
    def final_charge_j(self) -> np.ndarray:
        """(D,) battery charge after the last period."""
        return self.charge_j[-1]

    def device_charge_j(self, device: int) -> np.ndarray:
        """(H + 1,) battery trajectory of one device."""
        return self.charge_j[:, device]


class BatteryScan:
    """Steps many independent battery-backed devices in lockstep.

    Parameters mirror :class:`~repro.energy.battery.Battery` and
    :class:`~repro.energy.budget.HarvestFollowingAllocator`; each accepts a
    scalar (shared by the whole fleet) or one value per device.

    Parameters
    ----------
    num_devices:
        Fleet width D.
    capacity_j:
        Usable battery capacity in joules.
    initial_charge_j:
        Initial state of charge (negative means half full).
    target_soc:
        State-of-charge target; surplus above it is released to the load.
    max_draw_j:
        Upper bound on the battery's contribution to one period's budget.
    min_budget_j:
        Floor on the granted budget (defaults to the off-state energy).
    charge_efficiency / discharge_efficiency:
        Round-trip loss factors of the store.
    backend:
        Numeric backend for :meth:`run`: ``"numpy"`` (the reference
        per-period vector loop), ``"compiled"`` (Numba-jitted scalar
        recurrence with a graceful fallback) or ``"float32"``.  The fast
        paths apply when the consumption function is a single-grid
        :class:`~repro.core.batch.StackedConsumptionCurves`; anything else
        runs the reference loop regardless (see :mod:`repro.core.kernels`).
    """

    def __init__(
        self,
        num_devices: int,
        capacity_j: ArrayLike = 60.0,
        initial_charge_j: ArrayLike = -1.0,
        target_soc: ArrayLike = 0.5,
        max_draw_j: ArrayLike = 5.0,
        min_budget_j: ArrayLike = OFF_STATE_POWER_W * ACTIVITY_PERIOD_S,
        # Defaults reference the scalar Battery so the fleet/scalar parity
        # cannot drift if the battery model is retuned.
        charge_efficiency: ArrayLike = Battery.charge_efficiency,
        discharge_efficiency: ArrayLike = Battery.discharge_efficiency,
        backend: str = "numpy",
    ) -> None:
        if num_devices < 1:
            raise ValueError(f"need at least one device, got {num_devices}")
        self.num_devices = int(num_devices)
        self.backend = kernels.validate_backend(backend)

        def spread(value: ArrayLike) -> np.ndarray:
            array = np.broadcast_to(
                np.asarray(value, dtype=float), (self.num_devices,)
            ).copy()
            return array

        self.capacity_j = spread(capacity_j)
        if np.any(self.capacity_j <= 0):
            raise ValueError("battery capacity must be positive")
        self.charge_efficiency = spread(charge_efficiency)
        self.discharge_efficiency = spread(discharge_efficiency)
        if np.any((self.charge_efficiency <= 0) | (self.charge_efficiency > 1)):
            raise ValueError("charge_efficiency must be in (0, 1]")
        if np.any((self.discharge_efficiency <= 0) | (self.discharge_efficiency > 1)):
            raise ValueError("discharge_efficiency must be in (0, 1]")
        initial = spread(initial_charge_j)
        initial = np.where(initial < 0, self.capacity_j / 2, initial)
        if np.any(initial > self.capacity_j):
            raise ValueError("initial charge exceeds capacity")
        self.initial_charge_j = initial
        self.target_soc = spread(target_soc)
        if np.any((self.target_soc < 0) | (self.target_soc > 1)):
            raise ValueError("target_soc must be in [0, 1]")
        self.max_draw_j = spread(max_draw_j)
        if np.any(self.max_draw_j < 0):
            raise ValueError("max_draw_j must be non-negative")
        self.min_budget_j = spread(min_budget_j)
        self._target_charge_j = self.target_soc * self.capacity_j

    # -----------------------------------------------------------------------------
    def grant(self, harvest_j: np.ndarray, charge_j: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`HarvestFollowingAllocator.grant` for one period.

        ``harvest_j`` and ``charge_j`` are (D,) vectors; returns the (D,)
        granted budgets without mutating any state.
        """
        contribution = np.minimum(
            np.maximum(charge_j - self._target_charge_j, 0.0), self.max_draw_j
        )
        # Top the budget up to the floor where the battery can cover it.
        shortfall = self.min_budget_j - (harvest_j + contribution)
        available = charge_j * self.discharge_efficiency
        extra = np.minimum(shortfall, available - contribution)
        contribution = contribution + np.maximum(0.0, extra)
        return harvest_j + contribution

    def settle(
        self,
        harvest_j: np.ndarray,
        consumed_j: np.ndarray,
        charge_j: np.ndarray,
    ) -> np.ndarray:
        """Vectorized settle: bank surpluses, draw deficits; returns new charge."""
        # Charge branch: store the unused harvest through the charge
        # efficiency, clamped at the capacity headroom.
        accepted = np.minimum(
            (harvest_j - consumed_j) * self.charge_efficiency,
            self.capacity_j - charge_j,
        )
        # Discharge branch: deliver what the store can, never below empty.
        deliverable = np.minimum(
            consumed_j - harvest_j, charge_j * self.discharge_efficiency
        )
        return np.where(
            harvest_j >= consumed_j,
            charge_j + accepted,
            np.maximum(0.0, charge_j - deliverable / self.discharge_efficiency),
        )

    def run(
        self,
        harvest_j: np.ndarray,
        consumption: ConsumptionFn,
    ) -> BatteryScanResult:
        """Scan the whole fleet over a harvest trace.

        Parameters
        ----------
        harvest_j:
            Harvested energy per period: shape (H,) shared by every device
            or (H, D) with one column per device.
        consumption:
            Closed-form period consumption: maps the (D,) granted budgets of
            one period to the (D,) energies the devices actually consume
            (see :class:`~repro.core.batch.StackedConsumptionCurves`).
        """
        harvest = np.asarray(harvest_j, dtype=float)
        if harvest.ndim == 1:
            harvest = np.broadcast_to(
                harvest[:, None], (harvest.size, self.num_devices)
            )
        if harvest.ndim != 2 or harvest.shape[1] != self.num_devices:
            raise ValueError(
                f"harvest must be (H,) or (H, {self.num_devices}), "
                f"got {harvest.shape}"
            )
        if np.any(harvest < 0):
            raise ValueError("harvest must be non-negative")

        if self.backend != "numpy":
            fast = self._run_fast(harvest, consumption)
            if fast is not None:
                return fast

        num_periods = harvest.shape[0]
        budgets = np.empty((num_periods, self.num_devices))
        consumed = np.empty_like(budgets)
        charges = np.empty((num_periods + 1, self.num_devices))
        charge = self.initial_charge_j.copy()
        charges[0] = charge
        grant, settle = self.grant, self.settle
        for period in range(num_periods):
            harvest_now = harvest[period]
            budget = grant(harvest_now, charge)
            spent = consumption(budget)
            charge = settle(harvest_now, spent, charge)
            budgets[period] = budget
            consumed[period] = spent
            charges[period + 1] = charge
        return BatteryScanResult(
            harvest_j=np.array(harvest),
            budgets_j=budgets,
            consumed_j=consumed,
            charge_j=charges,
        )

    def _run_fast(
        self, harvest: np.ndarray, consumption: ConsumptionFn
    ) -> Optional["BatteryScanResult"]:
        """Accelerated recurrence via the fused scan kernel.

        Returns ``None`` when no fast path applies: the consumption
        function is not a single-grid stacked curve set, or the fleet is
        too wide for the Numba-less scalar fallback to win.
        """
        tables = getattr(consumption, "fused_tables", None)
        if tables is None:
            return None
        tables = tables()
        if tables is None:
            return None
        result = kernels.battery_scan(
            harvest,
            self.initial_charge_j,
            self.capacity_j,
            self._target_charge_j,
            self.max_draw_j,
            self.min_budget_j,
            self.charge_efficiency,
            self.discharge_efficiency,
            tables,
            self.backend,
        )
        if result is None:
            return None
        budgets, consumed, charges = result
        return BatteryScanResult(
            harvest_j=np.array(harvest),
            budgets_j=budgets,
            consumed_j=consumed,
            charge_j=charges,
        )


__all__ = ["BatteryScan", "BatteryScanResult", "ConsumptionFn"]
