"""Experiment harness and reporting utilities.

* :mod:`repro.analysis.sweep` -- energy-budget sweeps (Figures 5 and 6),
* :mod:`repro.analysis.experiments` -- one runner per table/figure plus the
  headline-claims check and the ablation studies,
* :mod:`repro.analysis.reporting` -- plain-text table and CSV rendering.
"""

from repro.analysis.experiments import (
    ExperimentResult,
    run_alpha_sensitivity_experiment,
    run_budget_alpha_grid_experiment,
    run_figure3_experiment,
    run_figure4_experiment,
    run_figure5a_experiment,
    run_figure5b_experiment,
    run_figure6_experiment,
    run_figure7_experiment,
    run_headline_claims_experiment,
    run_offloading_experiment,
    run_pareto_subset_ablation,
    run_pivot_rule_ablation,
    run_solver_scaling_experiment,
    run_table2_experiment,
)
from repro.analysis.reporting import (
    dicts_to_rows,
    format_table,
    format_value,
    percent,
    ratio,
    rows_to_csv,
)
from repro.analysis.sweep import (
    EnergySweep,
    SWEEP_ENGINES,
    SweepResult,
    SweepSeries,
    default_budget_grid,
)

__all__ = [
    "EnergySweep",
    "ExperimentResult",
    "SWEEP_ENGINES",
    "SweepResult",
    "SweepSeries",
    "default_budget_grid",
    "dicts_to_rows",
    "format_table",
    "format_value",
    "percent",
    "ratio",
    "rows_to_csv",
    "run_alpha_sensitivity_experiment",
    "run_budget_alpha_grid_experiment",
    "run_figure3_experiment",
    "run_figure4_experiment",
    "run_figure5a_experiment",
    "run_figure5b_experiment",
    "run_figure6_experiment",
    "run_figure7_experiment",
    "run_headline_claims_experiment",
    "run_offloading_experiment",
    "run_pareto_subset_ablation",
    "run_pivot_rule_ablation",
    "run_solver_scaling_experiment",
    "run_table2_experiment",
]
