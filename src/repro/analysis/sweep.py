"""Energy-budget sweeps (Figures 5 and 6).

Sweeps the allocated energy over the operating range of the device (from the
0.18 J off-state floor to just above the 9.9 J needed to run DP1 all hour)
and evaluates REAP alongside every static design point at each budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.allocator import ReapAllocator
from repro.core.design_point import DesignPoint, validate_design_points
from repro.core.objective import validate_alpha
from repro.core.problem import ReapProblem, static_allocation
from repro.core.schedule import TimeAllocation
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W


def default_budget_grid(
    design_points: Sequence[DesignPoint],
    num_points: int = 50,
    period_s: float = ACTIVITY_PERIOD_S,
    off_power_w: float = OFF_STATE_POWER_W,
    margin: float = 1.05,
) -> np.ndarray:
    """Budget grid spanning the device's interesting operating range.

    Starts at the off-state floor and ends slightly above the energy needed
    to run the most power-hungry design point for the whole period (the
    point past which every policy saturates).
    """
    if num_points < 2:
        raise ValueError(f"num_points must be >= 2, got {num_points}")
    floor = off_power_w * period_s
    ceiling = max(dp.power_w for dp in design_points) * period_s * margin
    return np.linspace(floor, ceiling, num_points)


@dataclass
class SweepSeries:
    """Per-policy series across the swept budgets."""

    policy_name: str
    expected_accuracy: np.ndarray
    active_time_s: np.ndarray
    objective: np.ndarray
    allocations: List[TimeAllocation] = field(default_factory=list)


@dataclass
class SweepResult:
    """Result of an energy sweep: one series for REAP, one per static DP."""

    budgets_j: np.ndarray
    alpha: float
    period_s: float
    series: Dict[str, SweepSeries]

    @property
    def reap(self) -> SweepSeries:
        """The REAP series."""
        return self.series["REAP"]

    def static(self, name: str) -> SweepSeries:
        """The series of the static policy running design point ``name``."""
        return self.series[name]

    @property
    def static_names(self) -> List[str]:
        """Names of the static design points in the sweep."""
        return [name for name in self.series if name != "REAP"]

    # --- figure-style views -----------------------------------------------------------
    def normalized_active_time(self, name: str) -> np.ndarray:
        """Active time of a static DP normalised to REAP (Figure 5b)."""
        reap_active = self.reap.active_time_s
        static_active = self.static(name).active_time_s
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(reap_active > 0, static_active / reap_active, 0.0)
        return ratio

    def normalized_objective(self, name: str) -> np.ndarray:
        """Objective of a static DP normalised to REAP (Figure 6)."""
        reap_objective = self.reap.objective
        static_objective = self.static(name).objective
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(reap_objective > 0, static_objective / reap_objective, 0.0)
        return ratio

    def reap_dominates_everywhere(self, tolerance: float = 1e-9) -> bool:
        """True when REAP matches or exceeds every static DP at every budget."""
        for name in self.static_names:
            if np.any(self.static(name).objective > self.reap.objective + tolerance):
                return False
        return True

    def saturation_budget_j(self, name: str, tolerance: float = 1e-9) -> float:
        """Smallest swept budget at which a static DP reaches full active time."""
        series = self.static(name)
        full = series.active_time_s >= self.period_s - 1e-6
        if not np.any(full):
            return float("inf")
        return float(self.budgets_j[np.argmax(full)])


class EnergySweep:
    """Evaluates REAP and the static baselines across a budget grid."""

    def __init__(
        self,
        design_points: Sequence[DesignPoint],
        alpha: float = 1.0,
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
        allocator: Optional[ReapAllocator] = None,
    ) -> None:
        validate_design_points(design_points)
        self.design_points = tuple(design_points)
        self.alpha = validate_alpha(alpha)
        self.period_s = period_s
        self.off_power_w = off_power_w
        self.allocator = allocator or ReapAllocator()

    def _problem(self, budget_j: float) -> ReapProblem:
        return ReapProblem(
            design_points=self.design_points,
            energy_budget_j=float(budget_j),
            period_s=self.period_s,
            alpha=self.alpha,
            off_power_w=self.off_power_w,
        )

    def run(self, budgets_j: Optional[Sequence[float]] = None) -> SweepResult:
        """Run the sweep and return all series."""
        if budgets_j is None:
            budgets = default_budget_grid(
                self.design_points, period_s=self.period_s, off_power_w=self.off_power_w
            )
        else:
            budgets = np.asarray(list(budgets_j), dtype=float)
            if budgets.size == 0:
                raise ValueError("budget grid is empty")

        policy_names = ["REAP"] + [dp.name for dp in self.design_points]
        collected: Dict[str, Dict[str, list]] = {
            name: {"accuracy": [], "active": [], "objective": [], "allocations": []}
            for name in policy_names
        }

        for budget in budgets:
            problem = self._problem(budget)
            reap_allocation = self.allocator.solve(problem)
            self._record(collected["REAP"], reap_allocation)
            for dp in self.design_points:
                allocation = static_allocation(problem, dp.name)
                self._record(collected[dp.name], allocation)

        series = {
            name: SweepSeries(
                policy_name=name,
                expected_accuracy=np.array(data["accuracy"]),
                active_time_s=np.array(data["active"]),
                objective=np.array(data["objective"]),
                allocations=data["allocations"],
            )
            for name, data in collected.items()
        }
        return SweepResult(
            budgets_j=budgets,
            alpha=self.alpha,
            period_s=self.period_s,
            series=series,
        )

    @staticmethod
    def _record(store: Dict[str, list], allocation: TimeAllocation) -> None:
        store["accuracy"].append(allocation.expected_accuracy)
        store["active"].append(allocation.active_time_s)
        store["objective"].append(allocation.objective)
        store["allocations"].append(allocation)


__all__ = ["EnergySweep", "SweepResult", "SweepSeries", "default_budget_grid"]
