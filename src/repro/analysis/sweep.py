"""Energy-budget sweeps (Figures 5 and 6).

Sweeps the allocated energy over the operating range of the device (from the
0.18 J off-state floor to just above the 9.9 J needed to run DP1 all hour)
and evaluates REAP alongside every static design point at each budget.

By default the sweep runs on the vectorized batch engine
(:class:`repro.core.batch.BatchAllocator`), which solves the whole budget
grid in one NumPy pass; passing a custom allocator (or ``engine="scalar"``)
falls back to the per-budget scalar path, which remains the reference
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.allocator import ReapAllocator
from repro.core.batch import BatchAllocator
from repro.core.design_point import DesignPoint, validate_design_points
from repro.core.objective import validate_alpha
from repro.core.problem import ReapProblem, static_allocation
from repro.core.schedule import TimeAllocation
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W

#: Valid sweep engine selectors.
SWEEP_ENGINES = ("auto", "batch", "scalar")


def default_budget_grid(
    design_points: Sequence[DesignPoint],
    num_points: int = 50,
    period_s: float = ACTIVITY_PERIOD_S,
    off_power_w: float = OFF_STATE_POWER_W,
    margin: float = 1.05,
) -> np.ndarray:
    """Budget grid spanning the device's interesting operating range.

    Starts at the off-state floor and ends slightly above the energy needed
    to run the most power-hungry design point for the whole period (the
    point past which every policy saturates).
    """
    if num_points < 2:
        raise ValueError(f"num_points must be >= 2, got {num_points}")
    floor = off_power_w * period_s
    ceiling = max(dp.power_w for dp in design_points) * period_s * margin
    return np.linspace(floor, ceiling, num_points)


@dataclass
class SweepSeries:
    """Per-policy series across the swept budgets."""

    policy_name: str
    expected_accuracy: np.ndarray
    active_time_s: np.ndarray
    objective: np.ndarray
    allocations: List[TimeAllocation] = field(default_factory=list)


@dataclass
class SweepResult:
    """Result of an energy sweep: one series for REAP, one per static DP."""

    budgets_j: np.ndarray
    alpha: float
    period_s: float
    series: Dict[str, SweepSeries]

    @property
    def reap(self) -> SweepSeries:
        """The REAP series."""
        return self.series["REAP"]

    def static(self, name: str) -> SweepSeries:
        """The series of the static policy running design point ``name``."""
        return self.series[name]

    @property
    def static_names(self) -> List[str]:
        """Names of the static design points in the sweep."""
        return [name for name in self.series if name != "REAP"]

    # --- figure-style views -----------------------------------------------------------
    def normalized_active_time(self, name: str) -> np.ndarray:
        """Active time of a static DP normalised to REAP (Figure 5b)."""
        reap_active = self.reap.active_time_s
        static_active = self.static(name).active_time_s
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(reap_active > 0, static_active / reap_active, 0.0)
        return ratio

    def normalized_objective(self, name: str) -> np.ndarray:
        """Objective of a static DP normalised to REAP (Figure 6)."""
        reap_objective = self.reap.objective
        static_objective = self.static(name).objective
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(reap_objective > 0, static_objective / reap_objective, 0.0)
        return ratio

    def reap_dominates_everywhere(self, tolerance: float = 1e-9) -> bool:
        """True when REAP matches or exceeds every static DP at every budget."""
        for name in self.static_names:
            if np.any(self.static(name).objective > self.reap.objective + tolerance):
                return False
        return True

    def saturation_budget_j(self, name: str, tolerance: float = 1e-9) -> float:
        """Smallest swept budget at which a static DP reaches full active time."""
        series = self.static(name)
        full = series.active_time_s >= self.period_s - 1e-6
        if not np.any(full):
            return float("inf")
        return float(self.budgets_j[np.argmax(full)])


class EnergySweep:
    """Evaluates REAP and the static baselines across a budget grid.

    Parameters
    ----------
    design_points, alpha, period_s, off_power_w:
        The fixed parts of the swept :class:`ReapProblem`.
    allocator:
        Optional custom scalar allocator.  Providing one switches the sweep
        to the scalar path (unless ``engine="batch"`` forces otherwise), so
        configurations like ``formulation="full"`` or ``cross_check=True``
        keep working unchanged.
    engine:
        ``"auto"`` (default: batch unless a custom allocator was supplied),
        ``"batch"`` or ``"scalar"``.
    """

    def __init__(
        self,
        design_points: Sequence[DesignPoint],
        alpha: float = 1.0,
        period_s: float = ACTIVITY_PERIOD_S,
        off_power_w: float = OFF_STATE_POWER_W,
        allocator: Optional[ReapAllocator] = None,
        engine: str = "auto",
    ) -> None:
        validate_design_points(design_points)
        if engine not in SWEEP_ENGINES:
            raise ValueError(f"engine must be one of {SWEEP_ENGINES}, got {engine!r}")
        self.design_points = tuple(design_points)
        self.alpha = validate_alpha(alpha)
        self.period_s = period_s
        self.off_power_w = off_power_w
        self._custom_allocator = allocator is not None
        self.allocator = allocator or ReapAllocator()
        self.engine = engine
        self._batch = BatchAllocator(
            self.design_points, period_s=period_s, off_power_w=off_power_w
        )

    def _problem(self, budget_j: float) -> ReapProblem:
        return ReapProblem(
            design_points=self.design_points,
            energy_budget_j=float(budget_j),
            period_s=self.period_s,
            alpha=self.alpha,
            off_power_w=self.off_power_w,
        )

    @property
    def uses_batch_engine(self) -> bool:
        """True when :meth:`run` will take the vectorized batch path."""
        if self.engine == "batch":
            return True
        if self.engine == "scalar":
            return False
        return not self._custom_allocator

    def run(
        self,
        budgets_j: Optional[Sequence[float]] = None,
        keep_allocations: bool = False,
    ) -> SweepResult:
        """Run the sweep and return all series.

        ``keep_allocations`` controls whether each series also materialises
        the per-budget :class:`TimeAllocation` objects.  It defaults to False
        so large grids only retain the accuracy/active-time/objective arrays;
        pass True when the individual allocations are needed.
        """
        if budgets_j is None:
            budgets = default_budget_grid(
                self.design_points, period_s=self.period_s, off_power_w=self.off_power_w
            )
        else:
            budgets = np.asarray(list(budgets_j), dtype=float)
            if budgets.size == 0:
                raise ValueError("budget grid is empty")

        if self.uses_batch_engine:
            series = self._run_batch(budgets, keep_allocations)
        else:
            series = self._run_scalar(budgets, keep_allocations)
        return SweepResult(
            budgets_j=budgets,
            alpha=self.alpha,
            period_s=self.period_s,
            series=series,
        )

    # --- batch path ------------------------------------------------------------
    def _run_batch(
        self, budgets: np.ndarray, keep_allocations: bool
    ) -> Dict[str, SweepSeries]:
        grid = self._batch.solve_budgets(budgets, alpha=self.alpha)
        series = {
            "REAP": SweepSeries(
                policy_name="REAP",
                expected_accuracy=grid.expected_accuracy[0],
                active_time_s=grid.active_time_s[0],
                objective=grid.objective[0],
                allocations=grid.allocations(0) if keep_allocations else [],
            )
        }
        for dp in self.design_points:
            static = self._batch.static_grid(dp.name, budgets, alpha=self.alpha)
            series[dp.name] = SweepSeries(
                policy_name=dp.name,
                expected_accuracy=static.expected_accuracy,
                active_time_s=static.active_time_s,
                objective=static.objective,
                allocations=(
                    self._batch.static_allocations(dp.name, budgets, alpha=self.alpha)
                    if keep_allocations
                    else []
                ),
            )
        return series

    # --- scalar (reference) path -------------------------------------------------
    def _run_scalar(
        self, budgets: np.ndarray, keep_allocations: bool
    ) -> Dict[str, SweepSeries]:
        policy_names = ["REAP"] + [dp.name for dp in self.design_points]
        collected: Dict[str, Dict[str, list]] = {
            name: {"accuracy": [], "active": [], "objective": [], "allocations": []}
            for name in policy_names
        }

        for budget in budgets:
            problem = self._problem(budget)
            reap_allocation = self.allocator.solve(problem)
            self._record(collected["REAP"], reap_allocation, keep_allocations)
            for dp in self.design_points:
                allocation = static_allocation(problem, dp.name)
                self._record(collected[dp.name], allocation, keep_allocations)

        return {
            name: SweepSeries(
                policy_name=name,
                expected_accuracy=np.array(data["accuracy"]),
                active_time_s=np.array(data["active"]),
                objective=np.array(data["objective"]),
                allocations=data["allocations"],
            )
            for name, data in collected.items()
        }

    @staticmethod
    def _record(
        store: Dict[str, list],
        allocation: TimeAllocation,
        keep_allocations: bool,
    ) -> None:
        store["accuracy"].append(allocation.expected_accuracy)
        store["active"].append(allocation.active_time_s)
        store["objective"].append(allocation.objective)
        if keep_allocations:
            store["allocations"].append(allocation)


__all__ = [
    "EnergySweep",
    "SWEEP_ENGINES",
    "SweepResult",
    "SweepSeries",
    "default_budget_grid",
]
