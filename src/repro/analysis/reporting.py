"""Plain-text and CSV reporting helpers shared by the experiment harness."""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence


def format_value(value: object, precision: int = 3) -> str:
    """Render a cell value: floats get fixed precision, the rest ``str()``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 1e-3 and value != 0.0):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table.

    Used by the benchmarks to print each reproduced table/figure as rows the
    way the paper reports them.
    """
    rendered_rows = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line(list(headers)))
    lines.append(render_line(["-" * w for w in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def rows_to_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    path: Optional[str] = None,
) -> str:
    """Serialise rows as CSV; write to ``path`` when given, return the text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text


def dicts_to_rows(
    records: Iterable[Dict[str, object]],
    columns: Sequence[str],
) -> List[List[object]]:
    """Project a list of dictionaries onto a fixed column order."""
    rows = []
    for record in records:
        rows.append([record.get(column, "") for column in columns])
    return rows


def percent(value: float, precision: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{precision}f}%"


def ratio(value: float, precision: int = 2) -> str:
    """Format a ratio with a trailing multiplication sign."""
    return f"{value:.{precision}f}x"


__all__ = [
    "dicts_to_rows",
    "format_table",
    "format_value",
    "percent",
    "ratio",
    "rows_to_csv",
]
