"""Experiment harness: one runner per table / figure of the paper.

Every runner returns an :class:`ExperimentResult` whose rows mirror what the
paper reports (the same columns / series), so the benchmarks can simply print
them and ``EXPERIMENTS.md`` can quote paper-vs-measured values side by side.

Experiments that exercise the HAR substrate (Table 2, Figure 3) synthesise a
user study and train classifiers, which takes tens of seconds at full size;
their ``num_windows`` argument allows smaller, faster runs.  Experiments that
exercise only the runtime optimiser (Figures 5-7) use the published Table 2
design points by default, exactly like the paper's evaluation does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table, rows_to_csv
from repro.analysis.sweep import EnergySweep, SweepResult, default_budget_grid
from repro.core.allocator import AllocatorConfig, ReapAllocator
from repro.core.batch import BatchAllocator
from repro.core.design_point import DesignPoint
from repro.core.pareto import pareto_front, select_pareto_subset
from repro.core.problem import ReapProblem
from repro.core.simplex import PivotRule
from repro.data.paper_constants import (
    ACTIVITY_PERIOD_S,
    DP1_FULL_HOUR_ENERGY_J,
    MIN_OFF_ENERGY_J,
    PaperClaims,
)
from repro.data.table2 import TABLE2_ROWS, table2_design_points
from repro.energy.accounting import hourly_breakdown_from_characterization
from repro.energy.ble import BLEModel, offloading_comparison
from repro.energy.power_model import DesignPointEnergyModel
from repro.har.classifier.train import TrainingConfig
from repro.har.config import HARConfig
from repro.har.design_space import (
    DESIGN_SPACE_SPECS,
    DesignSpaceExplorer,
    table2_specs,
)
from repro.har.features.pipeline import FeatureExtractor
from repro.har.synthesis import generate_study_dataset
from repro.harvesting.solar import SyntheticSolarModel
from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
from repro.harvesting.traces import SolarTrace
from repro.simulation.fleet import FleetCampaign
from repro.simulation.metrics import compare_campaigns
from repro.simulation.policies import PlanningPolicy, ReapPolicy, StaticPolicy
from repro.simulation.simulator import CampaignConfig, HarvestingCampaign


@dataclass
class ExperimentResult:
    """Tabular result of one experiment."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    extras: Dict[str, object] = field(default_factory=dict)

    def to_text(self, precision: int = 3) -> str:
        """Render the result as an aligned plain-text table."""
        return format_table(self.headers, self.rows, precision=precision, title=self.name)

    def to_csv(self, path: Optional[str] = None) -> str:
        """Serialise the rows as CSV (optionally written to ``path``)."""
        return rows_to_csv(self.headers, self.rows, path)

    def column(self, header: str) -> List[object]:
        """Extract one column by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


# ---------------------------------------------------------------------------
# Table 2 and Figure 3: design-space characterisation on the HAR substrate
# ---------------------------------------------------------------------------

def _default_training_config(fast: bool = True) -> TrainingConfig:
    """Training settings: a faster schedule for benchmark-sized datasets."""
    if fast:
        return TrainingConfig(max_epochs=80, patience=15)
    return TrainingConfig()


def run_table2_experiment(
    num_windows: int = 1400,
    num_users: int = 14,
    seed: int = 2019,
    training_config: Optional[TrainingConfig] = None,
) -> ExperimentResult:
    """Reproduce Table 2: characterise the five Pareto design points.

    Trains one classifier per design point on the synthetic user study and
    evaluates the analytical energy model, reporting measured values next to
    the published ones.
    """
    dataset = generate_study_dataset(
        num_users=num_users, num_windows=num_windows, seed=seed
    )
    explorer = DesignSpaceExplorer(
        dataset, training_config=training_config or _default_training_config()
    )
    characterized = explorer.characterize_all(table2_specs())
    paper = {row.name: row for row in TABLE2_ROWS}

    headers = [
        "DP",
        "accuracy_%",
        "paper_accuracy_%",
        "exec_ms",
        "paper_exec_ms",
        "energy_mJ",
        "paper_energy_mJ",
        "power_mW",
        "paper_power_mW",
    ]
    rows: List[List[object]] = []
    for item in characterized:
        reference = paper[item.name]
        rows.append(
            [
                item.name,
                item.test_accuracy * 100.0,
                reference.accuracy_percent,
                item.characterization.execution.total_ms,
                reference.total_exec_ms,
                item.characterization.total_energy_mj,
                reference.energy_mj,
                item.characterization.average_power_mw,
                reference.power_mw,
            ]
        )
    design_points = [item.to_design_point() for item in characterized]
    return ExperimentResult(
        name="Table 2: Pareto-optimal design point characterisation",
        headers=headers,
        rows=rows,
        extras={
            "design_points": design_points,
            "dataset_windows": len(dataset),
            "num_users": dataset.num_users,
        },
    )


def run_figure3_experiment(
    num_windows: int = 1400,
    num_users: int = 14,
    seed: int = 2019,
    training_config: Optional[TrainingConfig] = None,
    specs: Sequence[Tuple[str, HARConfig]] = DESIGN_SPACE_SPECS,
) -> ExperimentResult:
    """Reproduce Figure 3: energy/accuracy of all 24 DPs and the Pareto front."""
    dataset = generate_study_dataset(
        num_users=num_users, num_windows=num_windows, seed=seed
    )
    explorer = DesignSpaceExplorer(
        dataset, training_config=training_config or _default_training_config()
    )
    characterized = explorer.characterize_all(specs)
    design_points = [item.to_design_point() for item in characterized]
    front_names = {dp.name for dp in pareto_front(design_points)}

    headers = ["design_point", "energy_per_activity_mJ", "accuracy_%", "pareto_optimal"]
    rows = [
        [
            dp.name,
            dp.energy_per_activity_mj,
            dp.accuracy_percent,
            dp.name in front_names,
        ]
        for dp in sorted(design_points, key=lambda d: d.energy_per_activity_mj)
    ]
    return ExperimentResult(
        name="Figure 3: design-space energy/accuracy trade-off",
        headers=headers,
        rows=rows,
        extras={
            "design_points": design_points,
            "pareto_names": sorted(front_names),
            "num_design_points": len(design_points),
        },
    )


# ---------------------------------------------------------------------------
# Figure 4: energy breakdown of DP1 over a one-hour activity period
# ---------------------------------------------------------------------------

def run_figure4_experiment(period_s: float = ACTIVITY_PERIOD_S) -> ExperimentResult:
    """Reproduce Figure 4: DP1's hourly energy breakdown (~9.9 J total)."""
    dp1_name, dp1_config = table2_specs()[0]
    extractor = FeatureExtractor(dp1_config.features)
    characterization = DesignPointEnergyModel().characterize(
        dp1_config, num_features=extractor.num_features
    )
    breakdown = hourly_breakdown_from_characterization(characterization, period_s)

    headers = ["component", "energy_J", "fraction"]
    fractions = breakdown.fractions()
    rows = [
        ["accelerometer sensor", breakdown.accel_sensor_j, fractions["accel_sensor_j"]],
        ["stretch sensor", breakdown.stretch_sensor_j, fractions["stretch_sensor_j"]],
        ["MCU feature/classifier compute", breakdown.mcu_compute_j, fractions["mcu_compute_j"]],
        ["MCU sensor acquisition", breakdown.mcu_acquisition_j, fractions["mcu_acquisition_j"]],
        ["MCU system/sleep", breakdown.mcu_system_j, fractions["mcu_system_j"]],
        ["BLE communication", breakdown.communication_j, fractions["communication_j"]],
    ]
    return ExperimentResult(
        name="Figure 4: DP1 energy breakdown over one hour",
        headers=headers,
        rows=rows,
        extras={
            "total_j": breakdown.total_j,
            "paper_total_j": DP1_FULL_HOUR_ENERGY_J,
            "sensor_fraction": fractions["accel_sensor_j"] + fractions["stretch_sensor_j"],
            "design_point": dp1_name,
        },
    )


# ---------------------------------------------------------------------------
# Figures 5 and 6: energy sweeps
# ---------------------------------------------------------------------------

def _sweep(
    design_points: Optional[Sequence[DesignPoint]],
    alpha: float,
    num_budgets: int,
) -> SweepResult:
    points = tuple(design_points) if design_points else tuple(table2_design_points())
    sweep = EnergySweep(points, alpha=alpha)
    budgets = default_budget_grid(points, num_points=num_budgets)
    return sweep.run(budgets)


def run_budget_alpha_grid_experiment(
    design_points: Optional[Sequence[DesignPoint]] = None,
    num_budgets: int = 200,
    alphas: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
) -> ExperimentResult:
    """REAP's optimal objective over a full budget x alpha grid.

    This is the fleet-scale view behind Figures 5 and 6: every (budget,
    alpha) scenario solved in a single vectorized pass through
    :class:`repro.core.batch.BatchAllocator`.  One row per budget, one
    objective column per alpha.
    """
    points = tuple(design_points) if design_points else tuple(table2_design_points())
    budgets = default_budget_grid(points, num_points=num_budgets)
    grid = BatchAllocator(points).solve_grid(budgets, alphas=[float(a) for a in alphas])
    headers = ["budget_J"] + [f"J_alpha_{float(a):g}" for a in grid.alphas]
    rows = [
        [float(budget)] + [float(v) for v in grid.objective[:, budget_index]]
        for budget_index, budget in enumerate(grid.budgets_j)
    ]
    return ExperimentResult(
        name=f"Budget x alpha grid: {grid.num_budgets} budgets x {grid.num_alphas} alphas",
        headers=headers,
        rows=rows,
        extras={"grid": grid, "num_problems": grid.num_budgets * grid.num_alphas},
    )


def run_figure5a_experiment(
    design_points: Optional[Sequence[DesignPoint]] = None,
    num_budgets: int = 40,
) -> ExperimentResult:
    """Figure 5(a): expected accuracy vs allocated energy (alpha = 1)."""
    result = _sweep(design_points, alpha=1.0, num_budgets=num_budgets)
    headers = ["budget_J", "REAP_%"] + [f"{name}_%" for name in result.static_names]
    rows = []
    for index, budget in enumerate(result.budgets_j):
        row = [float(budget), result.reap.expected_accuracy[index] * 100.0]
        row.extend(
            result.static(name).expected_accuracy[index] * 100.0
            for name in result.static_names
        )
        rows.append(row)
    return ExperimentResult(
        name="Figure 5(a): expected accuracy vs allocated energy (alpha=1)",
        headers=headers,
        rows=rows,
        extras={"sweep": result, "reap_dominates": result.reap_dominates_everywhere()},
    )


def run_figure5b_experiment(
    design_points: Optional[Sequence[DesignPoint]] = None,
    num_budgets: int = 40,
) -> ExperimentResult:
    """Figure 5(b): active time of each static DP normalised to REAP."""
    result = _sweep(design_points, alpha=1.0, num_budgets=num_budgets)
    headers = ["budget_J"] + [f"{name}_norm_active" for name in result.static_names]
    normalized = {
        name: result.normalized_active_time(name) for name in result.static_names
    }
    rows = []
    for index, budget in enumerate(result.budgets_j):
        row = [float(budget)]
        row.extend(float(normalized[name][index]) for name in result.static_names)
        rows.append(row)
    return ExperimentResult(
        name="Figure 5(b): active time normalised to REAP (alpha=1)",
        headers=headers,
        rows=rows,
        extras={"sweep": result},
    )


def run_figure6_experiment(
    design_points: Optional[Sequence[DesignPoint]] = None,
    alpha: float = 2.0,
    num_budgets: int = 40,
) -> ExperimentResult:
    """Figure 6: objective of static DPs normalised to REAP at alpha = 2."""
    result = _sweep(design_points, alpha=alpha, num_budgets=num_budgets)
    headers = ["budget_J"] + [f"{name}_norm_J" for name in result.static_names]
    rows = []
    for index, budget in enumerate(result.budgets_j):
        row = [float(budget)]
        row.extend(
            float(result.normalized_objective(name)[index])
            for name in result.static_names
        )
        rows.append(row)
    return ExperimentResult(
        name=f"Figure 6: normalised objective value (alpha={alpha})",
        headers=headers,
        rows=rows,
        extras={"sweep": result, "reap_dominates": result.reap_dominates_everywhere()},
    )


# ---------------------------------------------------------------------------
# Figure 7: month-long solar case study
# ---------------------------------------------------------------------------

def run_figure7_experiment(
    design_points: Optional[Sequence[DesignPoint]] = None,
    alphas: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    month: int = 9,
    seed: int = 2015,
    baselines: Sequence[str] = ("DP1", "DP3", "DP5"),
    use_battery: bool = False,
    engine: str = "fleet",
) -> ExperimentResult:
    """Figure 7: REAP's objective normalised to static DPs over a solar month.

    Ratios are computed on per-day objective totals; the mean, minimum and
    maximum across the days of the month correspond to the bars and error
    bars of the figure.  Each alpha's policy line-up runs as one fleet
    campaign (one shared battery scan when ``use_battery``); pass
    ``engine="scalar"`` for the hour-by-hour reference loop.
    """
    points = tuple(design_points) if design_points else tuple(table2_design_points())
    trace = SyntheticSolarModel(seed=seed).generate_month(month)
    scenario = HarvestScenario()
    campaign = HarvestingCampaign(
        scenario, CampaignConfig(use_battery=use_battery), engine=engine
    )

    headers = ["alpha"]
    for name in baselines:
        headers.extend([f"vs_{name}_mean", f"vs_{name}_min", f"vs_{name}_max"])

    rows: List[List[object]] = []
    detail: Dict[float, Dict[str, Dict[str, float]]] = {}
    for alpha in alphas:
        policies = [ReapPolicy(points, alpha=alpha)] + [
            StaticPolicy(points, name, alpha=alpha) for name in baselines
        ]
        results = campaign.run_many(policies, trace)
        reap_result = results["REAP"]
        row: List[object] = [alpha]
        detail[alpha] = {}
        for name in baselines:
            comparison = compare_campaigns(reap_result, results[f"Static-{name}"])
            detail[alpha][name] = comparison
            row.extend(
                [comparison["mean_ratio"], comparison["min_ratio"], comparison["max_ratio"]]
            )
        rows.append(row)
    return ExperimentResult(
        name=f"Figure 7: REAP vs static DPs over a synthetic month {month:02d} solar trace",
        headers=headers,
        rows=rows,
        extras={
            "detail": detail,
            "trace_hours": len(trace),
            "month": month,
            "use_battery": use_battery,
            "engine": engine,
        },
    )


def run_fleet_campaign_experiment(
    design_points: Optional[Sequence[DesignPoint]] = None,
    alphas: Sequence[float] = (1.0, 2.0),
    baselines: Sequence[str] = ("DP1", "DP3", "DP5"),
    exposure_factors: Sequence[float] = (0.032,),
    month: int = 9,
    seed: int = 2015,
    hours: Optional[int] = None,
    use_battery: bool = True,
    jobs: int = 1,
    planners: Sequence[str] = (),
    horizon_periods: int = 24,
    forecast: str = "perfect",
    forecast_noise: float = 0.2,
    forecast_seed: int = 7,
    backend: str = "numpy",
    shared_memory: Optional[bool] = None,
) -> ExperimentResult:
    """Fleet study: (scenario x policy x alpha) campaign grid in one run.

    Sweeps wearable exposure-factor scenario variants against the REAP
    policy plus static baselines at every alpha, all simulated by the
    vectorized :class:`~repro.simulation.fleet.FleetCampaign` engine --
    closed-loop cells share a single lockstep battery scan.  ``planners``
    adds one forecast-driven
    :class:`~repro.simulation.policies.PlanningPolicy` per named planner
    (``"horizon"`` / ``"mpc"``) at every alpha, all using the given
    lookahead and forecast provider.  One row per (scenario, policy) cell.
    ``jobs > 1`` shards the grid across worker processes via
    :func:`repro.service.shard.run_sharded_campaign`; the merged rows match
    the single-process run to floating-point round-off.  ``shared_memory``
    picks the worker transport for that sharded path (``None`` auto-detects
    the zero-copy shared-memory arena, ``False`` forces pickle).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    if planners and not use_battery:
        # Open-loop budgets are the harvest itself -- a planning policy
        # would silently collapse to plain REAP and mislabel its rows.
        raise ValueError(
            "planning policies need a battery to plan against; drop the "
            "planners or run the fleet study closed-loop"
        )
    points = tuple(design_points) if design_points else tuple(table2_design_points())
    trace = SyntheticSolarModel(seed=seed).generate_month(month)
    if hours is not None:
        if not 1 <= hours <= len(trace):
            raise ValueError(
                f"hours must be in [1, {len(trace)}], got {hours}"
            )
        trace = SolarTrace(trace.hours[:hours], name=trace.name)

    scenarios = [
        HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
        for factor in exposure_factors
    ]
    labels = [f"exposure={factor:g}" for factor in exposure_factors]
    policies: List[object] = []
    for alpha in alphas:
        policies.append(ReapPolicy(points, alpha=alpha, backend=backend))
        policies.extend(
            StaticPolicy(points, name, alpha=alpha, backend=backend)
            for name in baselines
        )
        policies.extend(
            PlanningPolicy(
                points,
                planner=planner,
                horizon_periods=horizon_periods,
                forecast=forecast,
                forecast_noise=forecast_noise,
                forecast_seed=forecast_seed,
                alpha=alpha,
                backend=backend,
            )
            for planner in planners
        )

    if jobs > 1:
        # Imported lazily: the service layer sits above analysis and is only
        # needed when the caller actually asks for process sharding.
        from repro.service.shard import run_sharded_campaign

        result = run_sharded_campaign(
            scenarios,
            policies,
            trace,
            CampaignConfig(use_battery=use_battery, backend=backend),
            scenario_labels=labels,
            jobs=jobs,
            shared_memory=shared_memory,
        )
    else:
        fleet = FleetCampaign(
            scenarios,
            CampaignConfig(use_battery=use_battery, backend=backend),
            scenario_labels=labels,
        )
        result = fleet.run(policies, trace)

    return fleet_experiment_result(
        result,
        name=(
            f"Fleet campaign: {len(scenarios)} scenario(s) x "
            f"{len(policies)} policies over {len(trace)} hours "
            f"({'battery-backed' if use_battery else 'open loop'})"
        ),
        use_battery=use_battery,
        jobs=jobs,
    )


def fleet_experiment_result(
    result,
    name: str,
    use_battery: bool = True,
    jobs: int = 1,
) -> ExperimentResult:
    """Tabulate a :class:`~repro.simulation.fleet.FleetResult` as a report.

    One row per (scenario, policy) cell, built from
    :meth:`~repro.simulation.fleet.FleetResult.cell_summaries` -- the same
    payload the allocation service's campaign-status endpoint serves, so a
    remote campaign (``repro fleet --remote``) prints the identical table a
    local run does.
    """
    headers = [
        "scenario",
        "policy",
        "alpha",
        "mean_objective",
        "mean_expected_accuracy_%",
        "active_hours",
        "energy_J",
        "recognition_%",
        "final_battery_J",
    ]
    rows: List[List[object]] = []
    for cell in result.cell_summaries():
        final_battery = cell["final_battery_j"]
        rows.append(
            [
                cell["scenario"],
                cell["policy"],
                cell["alpha"],
                cell["mean_objective"],
                cell["mean_expected_accuracy"] * 100.0,
                cell["active_hours"],
                cell["energy_j"],
                cell["recognition_rate"] * 100.0,
                float("nan") if final_battery is None else final_battery,
            ]
        )
    return ExperimentResult(
        name=name,
        headers=headers,
        rows=rows,
        extras={
            "fleet_result": result,
            "num_cells": result.num_cells,
            "trace_hours": result.trace_hours,
            "use_battery": use_battery,
            "jobs": jobs,
        },
    )


def run_plan_experiment(
    design_points: Optional[Sequence[DesignPoint]] = None,
    planner: str = "horizon",
    horizon_periods: int = 24,
    forecasts: Sequence[str] = ("perfect", "persistence", "noisy"),
    forecast_noise: float = 0.2,
    forecast_seed: int = 7,
    alpha: float = 1.0,
    exposure_factor: float = 0.032,
    month: int = 9,
    seed: int = 2015,
    hours: Optional[int] = None,
    battery_capacity_j: float = 60.0,
) -> ExperimentResult:
    """Single-device horizon study: planned vs harvest-following budgets.

    Runs one closed-loop scenario with one
    :class:`~repro.simulation.policies.PlanningPolicy` per forecast kind
    (so forecast-error sensitivity reads off one table) next to the
    harvest-following REAP baseline, all sharing one vectorized fleet run.
    One row per policy.
    """
    if not forecasts:
        raise ValueError("plan study needs at least one forecast kind")
    points = tuple(design_points) if design_points else tuple(table2_design_points())
    trace = SyntheticSolarModel(seed=seed).generate_month(month)
    if hours is not None:
        if not 1 <= hours <= len(trace):
            raise ValueError(f"hours must be in [1, {len(trace)}], got {hours}")
        trace = SolarTrace(trace.hours[:hours], name=trace.name)
    scenario = HarvestScenario(cell=SolarCellModel(exposure_factor=exposure_factor))
    policies: List[object] = [
        PlanningPolicy(
            points,
            planner=planner,
            horizon_periods=horizon_periods,
            forecast=kind,
            forecast_noise=forecast_noise,
            forecast_seed=forecast_seed,
            alpha=alpha,
        )
        for kind in forecasts
    ]
    policies.append(ReapPolicy(points, alpha=alpha))
    fleet = FleetCampaign(
        scenario,
        CampaignConfig(use_battery=True, battery_capacity_j=battery_capacity_j),
        scenario_labels=[f"exposure={exposure_factor:g}"],
    )
    result = fleet.run(policies, trace)
    return fleet_experiment_result(
        result,
        name=(
            f"Planning study: {planner} planner, {horizon_periods}-period "
            f"lookahead, {len(forecasts)} forecast(s) vs harvest-following "
            f"REAP over {len(trace)} hours"
        ),
        use_battery=True,
    )


# ---------------------------------------------------------------------------
# Headline claims, offloading, solver scaling
# ---------------------------------------------------------------------------

def run_headline_claims_experiment(
    design_points: Optional[Sequence[DesignPoint]] = None,
    num_budgets: int = 60,
) -> ExperimentResult:
    """Check the paper's headline quantitative claims (Sections 1 and 5.2).

    * 46% higher expected accuracy than DP1 averaged over the budget range,
    * 66% longer active time than DP1 averaged over the budget range,
    * up to 2.3x more active time than DP1 in the energy-constrained region,
    * the DP4/DP5 time split (42%/58%) at a 5 J budget,
    * DP5 saturating near 4.3 J and DP1 near 9.9 J.
    """
    points = tuple(design_points) if design_points else tuple(table2_design_points())
    claims = PaperClaims()
    sweep = EnergySweep(points, alpha=1.0)
    # Sweep only the non-saturated range (up to DP1's full-hour budget), as
    # the paper's averages are over the region where the budget binds.
    floor = MIN_OFF_ENERGY_J
    ceiling = max(dp.power_w for dp in points) * ACTIVITY_PERIOD_S
    budgets = np.linspace(floor, ceiling, num_budgets)
    result = sweep.run(budgets)

    dp1 = result.static("DP1")
    reap = result.reap
    accuracy_gain = reap.expected_accuracy.mean() / max(dp1.expected_accuracy.mean(), 1e-12) - 1.0
    active_gain = reap.active_time_s.mean() / max(dp1.active_time_s.mean(), 1e-12) - 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        active_ratio = np.where(dp1.active_time_s > 0, reap.active_time_s / dp1.active_time_s, 0.0)
    region1_gain = float(np.nanmax(active_ratio))

    allocator = ReapAllocator()
    problem = ReapProblem(points, energy_budget_j=5.0, alpha=1.0)
    allocation_5j = allocator.solve(problem)
    dp4_share = allocation_5j.share_for("DP4") if "DP4" in allocation_5j.as_dict() else 0.0
    dp5_share = allocation_5j.share_for("DP5") if "DP5" in allocation_5j.as_dict() else 0.0

    dp5_saturation = result.saturation_budget_j("DP5")
    dp1_saturation = result.saturation_budget_j("DP1")

    headers = ["claim", "paper", "measured"]
    rows = [
        ["expected accuracy gain vs DP1 (mean over sweep)", claims.accuracy_gain_vs_dp1, float(accuracy_gain)],
        ["active time gain vs DP1 (mean over sweep)", claims.active_time_gain_vs_dp1, float(active_gain)],
        ["max active-time ratio vs DP1 (Region 1)", claims.region1_active_time_gain_vs_dp1, region1_gain],
        ["DP4 share of active time at 5 J", claims.dp4_share_at_5j, float(dp4_share)],
        ["DP5 share of active time at 5 J", claims.dp5_share_at_5j, float(dp5_share)],
        ["budget where DP5 saturates (J)", claims.dp5_full_hour_budget_j, dp5_saturation],
        ["budget where DP1 saturates (J)", claims.dp1_full_hour_budget_j, dp1_saturation],
    ]
    return ExperimentResult(
        name="Headline claims (Sections 1 and 5.2)",
        headers=headers,
        rows=rows,
        extras={"sweep": result, "allocation_at_5j": allocation_5j},
    )


def run_offloading_experiment(ble: Optional[BLEModel] = None) -> ExperimentResult:
    """Section 4.2: transmit-label vs raw-offload energy comparison."""
    comparison = offloading_comparison(ble or BLEModel())
    headers = ["strategy", "energy_mJ", "paper_energy_mJ"]
    rows = [
        ["transmit recognised label", comparison["label_energy_mj"], comparison["paper_label_energy_mj"]],
        ["offload raw sensor data", comparison["raw_offload_energy_mj"], comparison["paper_raw_offload_energy_mj"]],
    ]
    return ExperimentResult(
        name="Offloading comparison (Section 4.2)",
        headers=headers,
        rows=rows,
        extras={"offload_penalty_factor": comparison["offload_penalty_factor"]},
    )


def _random_design_points(count: int, rng: np.random.Generator) -> List[DesignPoint]:
    """Random Pareto-ish design points used by the solver-scaling experiment."""
    powers = np.sort(rng.uniform(0.4e-3, 4.0e-3, count))
    accuracies = np.sort(rng.uniform(0.5, 0.98, count))
    return [
        DesignPoint(name=f"R{i}", accuracy=float(a), power_w=float(p))
        for i, (a, p) in enumerate(zip(accuracies, powers))
    ]


def run_solver_scaling_experiment(
    sizes: Sequence[int] = (5, 10, 20, 50, 100),
    repeats: int = 20,
    seed: int = 17,
) -> ExperimentResult:
    """Section 3.3: solve-time scaling with the number of design points.

    The paper reports ~1.5 ms for 5 design points and ~8 ms for 100 on the
    CC2650; on a workstation the absolute numbers are much smaller, but the
    sub-linear growth with N is the property of interest.
    """
    rng = np.random.default_rng(seed)
    allocator = ReapAllocator()
    headers = ["num_design_points", "mean_solve_ms", "max_solve_ms", "mean_iterations"]
    rows = []
    for size in sizes:
        points = _random_design_points(size, rng)
        times = []
        iterations = []
        for _ in range(repeats):
            budget = float(rng.uniform(0.5, 0.9) * max(p.power_w for p in points) * ACTIVITY_PERIOD_S)
            problem = ReapProblem(tuple(points), energy_budget_j=budget, alpha=1.0)
            start = time.perf_counter()
            allocator.solve(problem)
            times.append((time.perf_counter() - start) * 1e3)
            iterations.append(allocator.last_iterations)
        rows.append(
            [size, float(np.mean(times)), float(np.max(times)), float(np.mean(iterations))]
        )
    return ExperimentResult(
        name="Solver scaling (Section 3.3)",
        headers=headers,
        rows=rows,
        extras={"repeats": repeats},
    )


# ---------------------------------------------------------------------------
# Ablations (extensions beyond the paper)
# ---------------------------------------------------------------------------

def run_pareto_subset_ablation(
    design_points: Optional[Sequence[DesignPoint]] = None,
    subset_sizes: Sequence[int] = (2, 3, 5),
    alpha: float = 1.0,
    num_budgets: int = 40,
) -> ExperimentResult:
    """How much of REAP's gain survives with fewer runtime design points."""
    points = list(design_points) if design_points else list(table2_design_points())
    budgets = default_budget_grid(points, num_points=num_budgets)
    headers = ["num_design_points", "mean_objective", "mean_expected_accuracy", "mean_active_fraction"]
    rows = []
    for size in subset_sizes:
        subset = select_pareto_subset(points, size)
        sweep = EnergySweep(subset, alpha=alpha)
        result = sweep.run(budgets)
        rows.append(
            [
                len(subset),
                float(result.reap.objective.mean()),
                float(result.reap.expected_accuracy.mean()),
                float(result.reap.active_time_s.mean() / ACTIVITY_PERIOD_S),
            ]
        )
    return ExperimentResult(
        name="Ablation: number of runtime design points",
        headers=headers,
        rows=rows,
        extras={"subset_sizes": list(subset_sizes)},
    )


def run_pivot_rule_ablation(
    design_points: Optional[Sequence[DesignPoint]] = None,
    num_budgets: int = 40,
) -> ExperimentResult:
    """Dantzig vs Bland pivot rule: identical optima, different pivot counts."""
    points = tuple(design_points) if design_points else tuple(table2_design_points())
    budgets = default_budget_grid(points, num_points=num_budgets)
    headers = ["pivot_rule", "mean_iterations", "max_iterations", "mean_objective"]
    rows = []
    objectives = {}
    for rule in (PivotRule.DANTZIG, PivotRule.BLAND):
        allocator = ReapAllocator(AllocatorConfig(pivot_rule=rule))
        iteration_counts = []
        values = []
        for budget in budgets:
            problem = ReapProblem(points, energy_budget_j=float(budget), alpha=1.0)
            allocation = allocator.solve(problem)
            iteration_counts.append(allocator.last_iterations)
            values.append(allocation.objective)
        objectives[rule.value] = np.array(values)
        rows.append(
            [
                rule.value,
                float(np.mean(iteration_counts)),
                int(np.max(iteration_counts)),
                float(np.mean(values)),
            ]
        )
    return ExperimentResult(
        name="Ablation: simplex pivot rule",
        headers=headers,
        rows=rows,
        extras={"objective_gap": float(np.max(np.abs(objectives["dantzig"] - objectives["bland"])))},
    )


def run_alpha_sensitivity_experiment(
    design_points: Optional[Sequence[DesignPoint]] = None,
    alphas: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    budget_j: float = 5.0,
) -> ExperimentResult:
    """How the chosen operating mix shifts with alpha at a fixed budget.

    All alphas are solved in one call to the vectorized batch engine (a
    1-budget x A-alpha grid) instead of one scalar LP per alpha.
    """
    points = tuple(design_points) if design_points else tuple(table2_design_points())
    grid = BatchAllocator(points).solve_grid([budget_j], alphas=[float(a) for a in alphas])
    headers = ["alpha", "expected_accuracy", "active_fraction"] + [dp.name + "_share" for dp in points]
    rows = []
    for alpha_index, alpha in enumerate(grid.alphas):
        allocation = grid.allocation(alpha_index, 0)
        row: List[object] = [
            float(alpha),
            allocation.expected_accuracy,
            allocation.active_fraction,
        ]
        row.extend(allocation.share_for(dp.name) for dp in points)
        rows.append(row)
    return ExperimentResult(
        name=f"Ablation: alpha sensitivity at {budget_j} J",
        headers=headers,
        rows=rows,
        extras={"budget_j": budget_j, "grid": grid},
    )


__all__ = [
    "ExperimentResult",
    "fleet_experiment_result",
    "run_alpha_sensitivity_experiment",
    "run_budget_alpha_grid_experiment",
    "run_figure3_experiment",
    "run_figure4_experiment",
    "run_figure5a_experiment",
    "run_figure5b_experiment",
    "run_figure6_experiment",
    "run_figure7_experiment",
    "run_fleet_campaign_experiment",
    "run_headline_claims_experiment",
    "run_offloading_experiment",
    "run_pareto_subset_ablation",
    "run_pivot_rule_ablation",
    "run_solver_scaling_experiment",
    "run_table2_experiment",
]
