"""Python client for the allocation service (stdlib ``http.client`` only).

:class:`AllocationClient` is a small blocking client for the JSON-over-HTTP
protocol of :mod:`repro.service.server`: one connection per call, typed
requests in, typed responses out.  It doubles as a command-line tool for
shell scripting (the CI smoke test drives a live server with it)::

    python -m repro.service.client --port 8734 health
    python -m repro.service.client --port 8734 allocate --budget 5 --alpha 1
    python -m repro.service.client --port 8734 stats

Each command prints the server's JSON reply on stdout and exits non-zero on
transport or HTTP errors.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.service.requests import AllocationRequest, AllocationResponse


class ServiceError(RuntimeError):
    """The server answered with a non-200 status."""

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class AllocationClient:
    """Blocking client bound to one server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8734, timeout_s: float = 10.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s

    # --- transport --------------------------------------------------------------
    def _call(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Any:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            encoded = None if body is None else json.dumps(body).encode("utf-8")
            headers = {"Content-Type": "application/json"} if encoded else {}
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            payload = json.loads(raw.decode("utf-8")) if raw else None
            if response.status != 200:
                raise ServiceError(response.status, payload)
            return payload
        finally:
            connection.close()

    # --- typed API --------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._call("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``."""
        return self._call("GET", "/stats")

    def allocate(self, request: AllocationRequest) -> AllocationResponse:
        """``POST /allocate`` one typed request."""
        payload = self._call("POST", "/allocate", request.to_json_dict())
        return AllocationResponse.from_json_dict(payload)

    def allocate_batch(
        self, requests: Sequence[AllocationRequest]
    ) -> List[AllocationResponse]:
        """``POST /allocate/batch``: the server coalesces the burst."""
        payload = self._call(
            "POST",
            "/allocate/batch",
            {"requests": [request.to_json_dict() for request in requests]},
        )
        return [
            AllocationResponse.from_json_dict(entry)
            for entry in payload["responses"]
        ]


# --- command-line front ----------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the client's command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro.service.client",
        description="talk to a running REAP allocation service",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8734)
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-call timeout in seconds")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("health", help="liveness probe")
    commands.add_parser("stats", help="cache/batcher/latency counters")

    allocate = commands.add_parser("allocate", help="solve one allocation")
    allocate.add_argument("--budget", type=float, required=True,
                          help="energy budget in joules")
    allocate.add_argument("--alpha", type=float, default=1.0)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Client CLI entry point; prints the server's JSON reply."""
    args = build_parser().parse_args(argv)
    client = AllocationClient(host=args.host, port=args.port, timeout_s=args.timeout)
    try:
        if args.command == "health":
            payload: Any = client.health()
        elif args.command == "stats":
            payload = client.stats()
        else:
            response = client.allocate(
                AllocationRequest(energy_budget_j=args.budget, alpha=args.alpha)
            )
            payload = response.to_json_dict()
    except (ServiceError, OSError) as error:
        print(f"allocation service call failed: {error}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = ["AllocationClient", "ServiceError", "build_parser", "main"]
