"""Python client for the allocation service (stdlib ``http.client`` only).

:class:`AllocationClient` is a small blocking client for the JSON-over-HTTP
protocol of :mod:`repro.service.server`: one connection per call, typed
requests in, typed responses out -- including fleet campaigns submitted
with ``POST /campaign`` and streamed back as chunked NDJSON columns.  It
doubles as a command-line tool for shell scripting (the CI smoke test
drives a live server with it)::

    python -m repro.service.client --port 8734 health
    python -m repro.service.client --port 8734 allocate --budget 5 --alpha 1
    python -m repro.service.client --port 8734 stats          # human summary
    python -m repro.service.client --port 8734 stats --json   # raw counters
    python -m repro.service.client --port 8734 metrics        # Prometheus text
    python -m repro.service.client --port 8734 metrics --scope cluster
    python -m repro.service.client --port 8734 top            # live dashboard
    python -m repro.service.client --port 8734 trace <trace_id>
    python -m repro.service.client --port 8734 campaign events c1
    python -m repro.service.client --port 8734 campaign submit --hours 48
    python -m repro.service.client --port 8734 campaign status c1
    python -m repro.service.client --port 8734 campaign run --hours 48
    python -m repro.service.client --port 8734 campaign columns c1
    python -m repro.service.client --port 8734 campaign cancel c1
    python -m repro.service.client --port 8734 campaign delete c1

Each command prints the server's JSON reply on stdout and exits non-zero on
transport or HTTP errors.  All requests go to the versioned ``/v1/...``
routes; error replies carry the uniform envelope, surfaced through
:attr:`ServiceError.code`.

Every request carries a W3C ``traceparent`` header -- a fresh trace per
call by default, or a fixed one via ``traceparent=`` /
``--traceparent`` -- so any client call can be followed through the
server's span logs and ``GET /trace/<id>``; the id used last is kept on
:attr:`AllocationClient.last_trace_id`.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import tracing
from repro.service.requests import (
    AllocationRequest,
    AllocationResponse,
    CampaignRequest,
    CampaignResponse,
)


class ServiceError(RuntimeError):
    """The server answered with a non-200 status."""

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload

    @property
    def code(self) -> Optional[str]:
        """The stable error code from the ``/v1`` envelope, if present.

        ``/v1`` errors look like ``{"error": {"code": ..., "message": ...,
        "detail": ...}}``; legacy errors carry a bare string under
        ``"error"`` and yield ``None`` here.
        """
        if isinstance(self.payload, dict):
            envelope = self.payload.get("error")
            if isinstance(envelope, dict):
                code = envelope.get("code")
                return str(code) if code is not None else None
        return None

    @property
    def detail(self) -> Any:
        """The envelope's machine-readable ``detail`` field, if present."""
        if isinstance(self.payload, dict):
            envelope = self.payload.get("error")
            if isinstance(envelope, dict):
                return envelope.get("detail")
        return None


class AllocationClient:
    """Blocking client bound to one server address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8734,
        timeout_s: float = 10.0,
        traceparent: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        #: Fixed ``traceparent`` header sent on every request (one trace
        #: spanning all of this client's calls); ``None`` starts a fresh
        #: trace per call.
        self.traceparent = traceparent
        #: Trace id of the most recent request (whatever header was sent).
        self.last_trace_id: Optional[str] = None

    # --- transport --------------------------------------------------------------
    def _trace_headers(self) -> Dict[str, str]:
        """The ``traceparent`` header of one outgoing request."""
        if self.traceparent is not None:
            header = self.traceparent
            context = tracing.parse_traceparent(header)
            self.last_trace_id = context.trace_id if context else None
        else:
            context = tracing.SpanContext(
                tracing.new_trace_id(), tracing.new_span_id()
            )
            header = tracing.format_traceparent(context)
            self.last_trace_id = context.trace_id
        return {"traceparent": header}

    def _call(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Any:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            encoded = None if body is None else json.dumps(body).encode("utf-8")
            headers = self._trace_headers()
            if encoded:
                headers["Content-Type"] = "application/json"
            if extra_headers:
                headers.update(extra_headers)
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            payload = json.loads(raw.decode("utf-8")) if raw else None
            if response.status != 200:
                raise ServiceError(response.status, payload)
            return payload
        finally:
            connection.close()

    def _call_text(self, method: str, path: str) -> str:
        """Like :meth:`_call` for endpoints answering plain text."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            connection.request(method, path, headers=self._trace_headers())
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                try:
                    payload: Any = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    payload = raw.decode("utf-8", "replace")
                raise ServiceError(response.status, payload)
            return raw.decode("utf-8")
        finally:
            connection.close()

    # --- typed API --------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz``."""
        return self._call("GET", "/v1/healthz")

    def stats(self, scope: str = "self") -> Dict[str, Any]:
        """``GET /v1/stats`` (``scope="cluster"`` merges all live procs)."""
        suffix = "" if scope == "self" else f"?scope={scope}"
        return self._call("GET", f"/v1/stats{suffix}")

    def metrics_text(self, scope: str = "self") -> str:
        """``GET /v1/metrics``: the raw Prometheus text exposition.

        ``scope="cluster"`` asks a store-backed multi-process front-end
        for the merged exposition (per-process series under a ``proc``
        label plus synthesized ``repro_cluster_*`` families).
        """
        suffix = "" if scope == "self" else f"?scope={scope}"
        return self._call_text("GET", f"/v1/metrics{suffix}")

    def trace(self, trace_id: str) -> Dict[str, Any]:
        """``GET /v1/trace/<id>``: the recorded spans of one trace."""
        return self._call("GET", f"/v1/trace/{trace_id}")

    def campaign_events(self, campaign_id: str) -> Dict[str, Any]:
        """``GET /v1/campaign/<id>/events``: the journaled job timeline.

        Needs a store-backed server; each event carries ``kind``, ``at``
        (epoch seconds), the owning front-end's ``host:pid``, and
        kind-specific ``details`` (shard cells, steal provenance, ...).
        """
        return self._call("GET", f"/v1/campaign/{campaign_id}/events")

    def allocate(self, request: AllocationRequest) -> AllocationResponse:
        """``POST /v1/allocate`` one typed request."""
        payload = self._call("POST", "/v1/allocate", request.to_json_dict())
        return AllocationResponse.from_json_dict(payload)

    def allocate_batch(
        self, requests: Sequence[AllocationRequest]
    ) -> List[AllocationResponse]:
        """``POST /v1/allocate/batch``: the server coalesces the burst."""
        payload = self._call(
            "POST",
            "/v1/allocate/batch",
            {"requests": [request.to_json_dict() for request in requests]},
        )
        return [
            AllocationResponse.from_json_dict(entry)
            for entry in payload["responses"]
        ]

    # --- campaigns --------------------------------------------------------------
    def submit_campaign(
        self,
        request: CampaignRequest,
        idempotency_key: Optional[str] = None,
    ) -> CampaignResponse:
        """``POST /v1/campaign``: submit a fleet study, returns its id/status.

        ``idempotency_key`` makes the submission safe to retry: the server
        maps the key to the first job it created for it, so a resent
        request (client timeout, network retry) returns the original
        campaign id instead of starting a duplicate run.
        """
        extra = (
            {"Idempotency-Key": idempotency_key}
            if idempotency_key is not None
            else None
        )
        payload = self._call(
            "POST", "/v1/campaign", request.to_json_dict(), extra_headers=extra
        )
        return CampaignResponse.from_json_dict(payload)

    def campaign_status(self, campaign_id: str) -> CampaignResponse:
        """``GET /v1/campaign/<id>``: poll one campaign."""
        payload = self._call("GET", f"/v1/campaign/{campaign_id}")
        return CampaignResponse.from_json_dict(payload)

    def cancel_campaign(self, campaign_id: str) -> CampaignResponse:
        """``POST /v1/campaign/<id>/cancel``: request cancellation.

        Cancellation is cooperative -- a running campaign stops at its
        next shard boundary -- so the returned status may still read
        ``running``; poll until it reaches ``cancelled``.  Cancelling an
        already-finished campaign raises :class:`ServiceError` (HTTP 409,
        code ``conflict``).
        """
        payload = self._call("POST", f"/v1/campaign/{campaign_id}/cancel")
        return CampaignResponse.from_json_dict(payload)

    def delete_campaign(self, campaign_id: str) -> Dict[str, Any]:
        """``DELETE /v1/campaign/<id>``: drop a finished campaign.

        The server frees the retained result; polling the id afterwards
        yields 404.  Deleting a still-running campaign raises
        :class:`ServiceError` (HTTP 409, code ``job_running``).
        """
        return self._call("DELETE", f"/v1/campaign/{campaign_id}")

    def wait_for_campaign(
        self,
        campaign_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.2,
    ) -> CampaignResponse:
        """Poll until the campaign reaches a terminal state.

        ``done`` and ``cancelled`` return the final status; ``failed``
        raises :class:`ServiceError` (status 0); ``TimeoutError`` when
        the deadline passes first.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.campaign_status(campaign_id)
            if status.status == "failed":
                raise ServiceError(0, f"campaign failed: {status.error}")
            if status.finished:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {campaign_id!r} still {status.status} after "
                    f"{timeout_s:g}s"
                )
            time.sleep(poll_s)

    def campaign_payloads(
        self, campaign_id: str
    ) -> Iterator[Dict[str, Any]]:
        """``GET /campaign/<id>/columns``: decode the NDJSON stream lazily.

        Yields the meta payload first, then one payload per (scenario,
        policy) cell, as the chunks arrive -- the whole grid is never
        buffered as one JSON document on either side.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            connection.request(
                "GET",
                f"/v1/campaign/{campaign_id}/columns",
                headers=self._trace_headers(),
            )
            response = connection.getresponse()
            if response.status != 200:
                raw = response.read()
                payload = json.loads(raw.decode("utf-8")) if raw else None
                raise ServiceError(response.status, payload)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def campaign_columns_binary(
        self, campaign_id: str, dtype: str = "f8", codec: str = "zlib"
    ) -> bytes:
        """``GET /campaign/<id>/columns?format=binary``: the raw byte stream.

        ``dtype`` is ``"f8"`` (lossless, the default) or ``"f4"``
        (float32, roughly half the float payload).  ``codec`` is
        ``"zlib"`` (deflated frames, the default) or ``"raw"``
        (uncompressed -- the server streams zero-copy views, trading
        bytes on the wire for no encode cost).  The returned bytes decode
        with :meth:`repro.simulation.fleet.FleetResult.from_binary`.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            connection.request(
                "GET",
                f"/v1/campaign/{campaign_id}/columns"
                f"?format=binary&dtype={dtype}&codec={codec}",
                headers=self._trace_headers(),
            )
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                payload = json.loads(raw.decode("utf-8")) if raw else None
                raise ServiceError(response.status, payload)
            return raw
        finally:
            connection.close()

    def campaign_result(
        self,
        campaign_id: str,
        binary: bool = False,
        dtype: str = "f8",
        codec: str = "zlib",
    ):
        """Rebuild the campaign's full :class:`FleetResult` from the stream.

        The reconstruction equals the local
        :class:`~repro.simulation.fleet.FleetCampaign` run to
        floating-point round-off.  With ``binary`` the columns travel as
        the compact binary wire format instead of NDJSON -- identical
        float64 payloads, a fraction of the bytes.
        """
        # Imported lazily: plain allocate/stats clients never touch the
        # simulation stack.
        from repro.simulation.fleet import FleetResult

        if binary:
            return FleetResult.from_binary(
                self.campaign_columns_binary(campaign_id, dtype=dtype, codec=codec)
            )
        payloads = self.campaign_payloads(campaign_id)
        meta = next(payloads)
        return FleetResult.from_payloads(meta, payloads)

    def run_campaign(
        self,
        request: CampaignRequest,
        timeout_s: float = 300.0,
        binary: bool = False,
    ) -> Tuple[CampaignResponse, Any]:
        """Submit, wait, and fetch: one call from study to FleetResult."""
        submitted = self.submit_campaign(request)
        status = self.wait_for_campaign(
            submitted.campaign_id, timeout_s=timeout_s
        )
        return status, self.campaign_result(submitted.campaign_id, binary=binary)


# --- human-readable stats ---------------------------------------------------------
def format_stats_summary(stats: Dict[str, Any]) -> str:
    """Render a ``/stats`` payload as a short human-readable summary.

    Covers the headline service-health numbers: cache hit rate, batcher
    coalescing ratio, pool utilization, SLO compliance, and per-endpoint
    latency percentiles.  ``stats --json`` prints the raw counters
    instead.
    """
    lines: List[str] = []
    uptime_s = float(stats.get("uptime_s", 0.0))

    cache = stats.get("cache", {})
    lookups = int(cache.get("lookups", 0))
    lines.append(
        "cache      {hits}/{lookups} hits ({rate:.1f}%), "
        "{entries}/{max_entries} entries, {evictions} evictions".format(
            hits=int(cache.get("hits", 0)),
            lookups=lookups,
            rate=100.0 * float(cache.get("hit_rate", 0.0)),
            entries=int(cache.get("entries", 0)),
            max_entries=int(cache.get("max_entries", 0)),
            evictions=int(cache.get("evictions", 0)),
        )
    )

    batcher = stats.get("batcher", {})
    batches = int(batcher.get("batches", 0))
    requests = int(batcher.get("requests", 0))
    coalescing = requests / batches if batches else 0.0
    lines.append(
        f"batcher    {requests} requests in {batches} batches "
        f"({coalescing:.1f}x coalescing, largest "
        f"{int(batcher.get('largest_batch', 0))})"
    )

    pool = stats.get("pool", {})
    workers = int(pool.get("workers", 0))
    busy_ms = float(pool.get("busy_ms", 0.0))
    capacity_ms = uptime_s * 1000.0 * max(workers, 1)
    utilization = 100.0 * busy_ms / capacity_ms if capacity_ms > 0 else 0.0
    lines.append(
        f"pool       {workers} engine + "
        f"{int(pool.get('campaign_workers', 0))} campaign workers, "
        f"{int(pool.get('tasks', 0))} tasks, busy {busy_ms:.1f}ms "
        f"({utilization:.1f}% utilization over {uptime_s:.0f}s)"
    )

    slo = stats.get("slo", {})
    for key, objective in sorted(slo.get("objectives", {}).items()):
        total = int(objective.get("total", 0))
        lines.append(
            "slo        {key}: {compliance:.2f}% <= {threshold:g}ms "
            "({good}/{total}), burn 5m {b5:.2f} / 1h {b1:.2f}".format(
                key=key,
                compliance=100.0 * float(objective.get("compliance", 1.0)),
                threshold=float(objective.get("threshold_ms", 0.0)),
                good=int(objective.get("good", 0)),
                total=total,
                b5=float(objective.get("burn_rate_5m", 0.0)),
                b1=float(objective.get("burn_rate_1h", 0.0)),
            )
        )

    endpoints = stats.get("endpoints", {})
    if endpoints:
        lines.append("endpoint latency (ms):")
        width = max(len(name) for name in endpoints)
        for name in sorted(endpoints):
            entry = endpoints[name]
            lines.append(
                "  {name:<{width}}  n={count:<6d} p50={p50:>8.3f}  "
                "p95={p95:>8.3f}  p99={p99:>8.3f}  max={max_ms:>8.3f}".format(
                    name=name,
                    width=width,
                    count=int(entry.get("count", 0)),
                    p50=float(entry.get("p50_ms", 0.0)),
                    p95=float(entry.get("p95_ms", 0.0)),
                    p99=float(entry.get("p99_ms", 0.0)),
                    max_ms=float(entry.get("max_ms", 0.0)),
                )
            )
    return "\n".join(lines)


# --- live dashboard ---------------------------------------------------------------
def _proc_row(proc: str, stats: Dict[str, Any]) -> Dict[str, Any]:
    """One front-end's headline numbers for a ``repro top`` row."""
    uptime_s = float(stats.get("uptime_s", 0.0)) or 1e-9
    endpoints = stats.get("endpoints", {})
    requests = sum(int(entry.get("count", 0)) for entry in endpoints.values())
    p95_ms = max(
        (float(entry.get("p95_ms", 0.0)) for entry in endpoints.values()),
        default=0.0,
    )
    pool = stats.get("pool", {})
    workers = int(pool.get("workers", 0))
    capacity_ms = uptime_s * 1000.0 * max(workers, 1)
    utilization = 100.0 * float(pool.get("busy_ms", 0.0)) / capacity_ms
    cache = stats.get("cache", {})
    return {
        "proc": proc,
        "rps": requests / uptime_s,
        "p95_ms": p95_ms,
        "util": utilization,
        "requests": requests,
        "hit_rate": 100.0 * float(cache.get("hit_rate", 0.0)),
        "uptime_s": uptime_s,
    }


def format_top(doc: Dict[str, Any]) -> str:
    """Render one ``repro top`` frame from a cluster (or self) stats doc.

    ``doc`` is ``GET /v1/stats?scope=cluster`` -- per-process documents
    under ``procs``, the merged ``slo`` section, active ``jobs``, and
    ``recent_steals``.  A plain ``scope=self`` document renders too (one
    row, no jobs/steals sections) so the dashboard degrades gracefully
    against store-less servers.
    """
    procs = doc.get("procs")
    if procs is None:  # scope=self fallback: treat it as one anonymous proc
        procs = {"(self)": doc}
    lines: List[str] = [
        f"repro top -- {len(procs)} front-end(s), scope={doc.get('scope', 'self')}"
    ]
    lines.append("")
    lines.append(
        f"{'PROC':<22} {'RPS':>8} {'P95MS':>9} {'UTIL%':>7} "
        f"{'REQS':>8} {'HIT%':>6} {'UP_S':>7}"
    )
    for proc in sorted(procs):
        row = _proc_row(proc, procs[proc] or {})
        lines.append(
            f"{row['proc']:<22} {row['rps']:>8.1f} {row['p95_ms']:>9.3f} "
            f"{row['util']:>7.1f} {row['requests']:>8d} "
            f"{row['hit_rate']:>6.1f} {row['uptime_s']:>7.0f}"
        )
    objectives = (doc.get("slo") or {}).get("objectives", {})
    if objectives:
        lines.append("")
        lines.append(
            f"{'SLO':<22} {'COMPLY%':>8} {'BURN_5M':>9} {'BURN_1H':>9} "
            f"{'GOOD/TOTAL':>14}"
        )
        for key in sorted(objectives):
            entry = objectives[key]
            total = int(entry.get("total", 0))
            lines.append(
                f"{key:<22} "
                f"{100.0 * float(entry.get('compliance', 1.0)):>8.2f} "
                f"{float(entry.get('burn_rate_5m', 0.0)):>9.2f} "
                f"{float(entry.get('burn_rate_1h', 0.0)):>9.2f} "
                f"{int(entry.get('good', 0)):>7d}/{total:<6d}"
            )
    if "jobs" in doc:
        lines.append("")
        lines.append(f"{'JOB':<10} {'STATUS':<9} {'SHARDS':>12} OWNER")
        jobs = doc.get("jobs") or []
        for job in jobs:
            total = job.get("cells_total")
            progress = f"{job.get('cells_done', 0)}/{total if total else '?'}"
            lines.append(
                f"{job.get('campaign_id', '?'):<10} "
                f"{job.get('status', '?'):<9} {progress:>12} "
                f"{job.get('owner') or '-'}"
            )
        if not jobs:
            lines.append("(no active jobs)")
    steals = doc.get("recent_steals") or []
    if steals:
        lines.append("")
        lines.append("RECENT LEASE STEALS")
        for steal in steals:
            at = time.strftime(
                "%H:%M:%S", time.localtime(float(steal.get("at", 0.0)))
            )
            lines.append(
                f"  {at} {steal.get('job_id', '?')}: "
                f"{steal.get('owner', '?')} <- "
                f"{steal.get('previous_owner') or '?'}"
            )
    return "\n".join(lines)


def run_top(
    client: "AllocationClient",
    interval_s: float = 2.0,
    once: bool = False,
    iterations: Optional[int] = None,
) -> int:
    """The ``repro top`` loop: fetch, render, refresh until interrupted.

    Prefers ``scope=cluster``; a server without a store answers that with
    HTTP 400, in which case each frame falls back to ``scope=self``.
    ``once`` prints a single frame without clearing the terminal (CI and
    piping); ``iterations`` bounds the loop for tests.
    """
    frame = 0
    while True:
        try:
            doc = client.stats(scope="cluster")
        except ServiceError as error:
            if error.status != 400:
                raise
            doc = client.stats(scope="self")
        rendered = format_top(doc)
        if once:
            print(rendered)
            return 0
        # Clear + home between frames, like top(1) -- no curses dependency.
        sys.stdout.write("\x1b[2J\x1b[H" + rendered + "\n")
        sys.stdout.flush()
        frame += 1
        if iterations is not None and frame >= iterations:
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0


# --- command-line front ----------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the client's command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro.service.client",
        description="talk to a running REAP allocation service",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8734)
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-call timeout in seconds")
    parser.add_argument("--traceparent", default=None,
                        help="fixed W3C traceparent header to send on every "
                             "request (default: a fresh trace per call)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("health", help="liveness probe")
    stats = commands.add_parser(
        "stats",
        help="service health summary (hit rate, coalescing, percentiles)",
    )
    stats.add_argument("--json", action="store_true",
                       help="print the raw /stats counters as JSON instead "
                            "of the human-readable summary")
    stats.add_argument("--scope", default="self", choices=["self", "cluster"],
                       help="cluster merges every live front-end's counters "
                            "(needs a store-backed server)")
    metrics = commands.add_parser(
        "metrics", help="raw Prometheus text from /metrics"
    )
    metrics.add_argument("--scope", default="self",
                         choices=["self", "cluster"],
                         help="cluster merges every live front-end's series "
                              "under a proc label (needs a store)")
    top = commands.add_parser(
        "top",
        help="live refreshing dashboard of the cluster (per-process rows, "
             "SLO burn, active jobs, lease steals)",
    )
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh period in seconds")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit (no screen clearing)")
    trace = commands.add_parser(
        "trace", help="fetch one trace's recorded spans by id"
    )
    trace.add_argument("id", help="32-hex-digit trace id")

    allocate = commands.add_parser("allocate", help="solve one allocation")
    allocate.add_argument("--budget", type=float, required=True,
                          help="energy budget in joules")
    allocate.add_argument("--alpha", type=float, default=1.0)
    allocate.add_argument("--backend", default=None,
                          choices=["numpy", "compiled", "float32"],
                          help="numeric backend to solve with "
                               "(default: the server's)")

    campaign = commands.add_parser(
        "campaign", help="submit/poll/stream fleet campaigns"
    )
    verbs = campaign.add_subparsers(dest="verb", required=True)
    for verb in ("submit", "run"):
        sub = verbs.add_parser(
            verb,
            help=(
                "submit a fleet study"
                if verb == "submit"
                else "submit, wait for completion, print the final status"
            ),
        )
        sub.add_argument("--alphas", type=float, nargs="+", default=[1.0, 2.0])
        sub.add_argument("--baselines", nargs="*", default=["DP1", "DP3", "DP5"])
        sub.add_argument("--exposures", type=float, nargs="+", default=[0.032])
        sub.add_argument("--month", type=int, default=9)
        sub.add_argument("--seed", type=int, default=2015)
        sub.add_argument("--hours", type=int, default=None)
        sub.add_argument("--open-loop", action="store_true")
        sub.add_argument("--planners", nargs="*", default=[],
                         help="forecast-driven planning policies to add "
                              "(horizon and/or mpc)")
        sub.add_argument("--horizon", type=int, default=24)
        sub.add_argument("--forecast", default="perfect")
        sub.add_argument("--forecast-noise", type=float, default=0.2)
        sub.add_argument("--forecast-seed", type=int, default=7)
        sub.add_argument("--backend", default="numpy",
                         choices=["numpy", "compiled", "float32"],
                         help="numeric backend for the campaign's solves "
                              "and scans")
        sub.add_argument("--idempotency-key", default=None,
                         help="retry-safe submission key: resubmitting "
                              "with the same key returns the original "
                              "campaign id instead of a duplicate run")
    status = verbs.add_parser("status", help="poll one campaign by id")
    status.add_argument("id")
    cancel = verbs.add_parser(
        "cancel",
        help="request cancellation (takes effect at the next shard boundary)",
    )
    cancel.add_argument("id")
    delete = verbs.add_parser(
        "delete", help="delete a finished campaign (it 404s afterwards)"
    )
    delete.add_argument("id")
    events = verbs.add_parser(
        "events",
        help="journaled lifecycle timeline of one campaign "
             "(needs a store-backed server)",
    )
    events.add_argument("id")
    columns = verbs.add_parser(
        "columns",
        help="stream a finished campaign's columns (NDJSON by default)",
    )
    columns.add_argument("id")
    columns.add_argument("--binary", action="store_true",
                         help="fetch the compact binary columnar wire "
                              "format and decode it locally")
    columns.add_argument("--dtype", default="f8", choices=["f8", "f4"],
                         help="binary float width (f8 is lossless)")
    columns.add_argument("--codec", default="zlib", choices=["zlib", "raw"],
                         help="binary frame codec (raw streams zero-copy "
                              "views, skipping the deflate pass)")
    return parser


def _campaign_request(args: argparse.Namespace) -> CampaignRequest:
    """Lower the submit/run CLI arguments to a typed campaign request."""
    return CampaignRequest(
        alphas=tuple(args.alphas),
        baselines=tuple(args.baselines),
        exposure_factors=tuple(args.exposures),
        month=args.month,
        seed=args.seed,
        hours=args.hours,
        use_battery=not args.open_loop,
        planners=tuple(args.planners),
        horizon_periods=args.horizon,
        forecast=args.forecast,
        forecast_noise=args.forecast_noise,
        forecast_seed=args.forecast_seed,
        backend=args.backend,
    )


def _campaign_command(client: AllocationClient, args: argparse.Namespace) -> Any:
    """Run one campaign verb; returns the JSON payload to print."""
    if args.verb == "submit":
        return client.submit_campaign(
            _campaign_request(args), idempotency_key=args.idempotency_key
        ).to_json_dict()
    if args.verb == "run":
        submitted = client.submit_campaign(
            _campaign_request(args), idempotency_key=args.idempotency_key
        )
        status = client.wait_for_campaign(submitted.campaign_id)
        return status.to_json_dict()
    if args.verb == "status":
        return client.campaign_status(args.id).to_json_dict()
    if args.verb == "cancel":
        return client.cancel_campaign(args.id).to_json_dict()
    if args.verb == "delete":
        return client.delete_campaign(args.id)
    if args.verb == "events":
        return client.campaign_events(args.id)
    # columns: stream the NDJSON lines straight through, one per payload.
    if args.binary:
        # Fetch over the binary wire, then print the same per-cell lines
        # the NDJSON path would -- identical output, a fraction of the
        # transferred bytes.
        result = client.campaign_result(
            args.id, binary=True, dtype=args.dtype, codec=args.codec
        )
        print(json.dumps(result.meta_payload()))
        for payload in result.cell_payloads():
            print(json.dumps(payload))
        return None
    for payload in client.campaign_payloads(args.id):
        print(json.dumps(payload))
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Client CLI entry point; prints the server's JSON reply."""
    args = build_parser().parse_args(argv)
    client = AllocationClient(
        host=args.host,
        port=args.port,
        timeout_s=args.timeout,
        traceparent=args.traceparent,
    )
    try:
        if args.command == "health":
            payload: Any = client.health()
        elif args.command == "stats":
            if args.json or args.scope == "cluster":
                payload = client.stats(scope=args.scope)
            else:
                print(format_stats_summary(client.stats()))
                return 0
        elif args.command == "metrics":
            print(client.metrics_text(scope=args.scope), end="")
            return 0
        elif args.command == "top":
            return run_top(client, interval_s=args.interval, once=args.once)
        elif args.command == "trace":
            payload = client.trace(args.id)
        elif args.command == "campaign":
            payload = _campaign_command(client, args)
            if payload is None:  # columns already streamed to stdout
                return 0
        else:
            response = client.allocate(
                AllocationRequest(
                    energy_budget_j=args.budget,
                    alpha=args.alpha,
                    backend=args.backend,
                )
            )
            payload = response.to_json_dict()
    except (ServiceError, OSError, TimeoutError) as error:
        code = error.code if isinstance(error, ServiceError) else None
        prefix = f"[{code}] " if code else ""
        print(
            f"allocation service call failed: {prefix}{error}", file=sys.stderr
        )
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = [
    "AllocationClient",
    "ServiceError",
    "build_parser",
    "format_stats_summary",
    "format_top",
    "main",
    "run_top",
]
