"""LRU result cache and service counters.

The allocation problem space is small in practice -- fleets of devices with
the same design-point set asking about a modest set of (budget, alpha)
pairs -- so an LRU map keyed by the canonical problem encoding
(:attr:`repro.service.requests.AllocationRequest.cache_key`) absorbs most of
a production workload before it ever reaches the batch engine.  The cache
itself is thread-safe and keeps hit/miss/eviction counters (note the
surrounding :class:`~repro.service.server.AllocationService` is still
bound to one event loop -- its micro-batcher parks futures on the calling
loop); solve latency is tracked separately by :class:`LatencyRecorder` so
the ``/stats`` endpoint can report both.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Generic, Hashable, Optional, TypeVar

Value = TypeVar("Value")


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of one cache's counters."""

    entries: int
    max_entries: int
    hits: int
    misses: int
    evictions: int

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def to_json_dict(self) -> Dict[str, Any]:
        """Encode for the ``/stats`` endpoint."""
        return {
            "entries": self.entries,
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class AllocationCache(Generic[Value]):
    """Bounded LRU map from canonical problem keys to served responses.

    ``get`` refreshes recency; ``put`` evicts the least recently used entry
    once ``max_entries`` is exceeded.  A ``max_entries`` of zero disables
    caching entirely (every lookup misses, nothing is stored) -- useful for
    benchmarking the solve path.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be non-negative, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, Value]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Value]:
        """Look up a key, refreshing its recency; ``None`` on a miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Value) -> None:
        """Store a key, evicting the least recently used entry when full."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                entries=len(self._entries),
                max_entries=self.max_entries,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )


class LatencyRecorder:
    """Running latency statistics of the solve path (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._total_s = 0.0
        self._max_s = 0.0

    def record(self, seconds: float) -> None:
        """Record one solve's wall-clock latency."""
        with self._lock:
            self._count += 1
            self._total_s += seconds
            if seconds > self._max_s:
                self._max_s = seconds

    def to_json_dict(self) -> Dict[str, Any]:
        """Encode for the ``/stats`` endpoint (milliseconds for humans)."""
        with self._lock:
            mean_ms = (
                self._total_s / self._count * 1000.0 if self._count else 0.0
            )
            return {
                "solves": self._count,
                "mean_ms": mean_ms,
                "max_ms": self._max_s * 1000.0,
            }


class LatencyHistogram:
    """Log-bucketed latency histogram with percentile estimates (thread-safe).

    Buckets double from 1 microsecond up through ~67 seconds plus one
    overflow bucket, so recording is O(1) with a fixed ~30-int footprint
    per endpoint -- safe to keep forever under production traffic, unlike
    a reservoir of raw samples.  Percentiles are read from the cumulative
    bucket counts and reported as each bucket's upper bound: an estimate
    within 2x of the true quantile, which is what latency SLOs need
    (p99 "about 8 ms" vs "about 16 ms", never "about 3 ms" when it's 20).
    """

    #: Upper bounds of the log2 buckets, in seconds (1 us .. ~67 s).
    BOUNDS_S = tuple(1e-6 * 2.0**exponent for exponent in range(27))

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.BOUNDS_S) + 1)  # +1 overflow
        self._count = 0
        self._total_s = 0.0
        self._max_s = 0.0

    def record(self, seconds: float) -> None:
        """Record one observation, in seconds."""
        index = bisect_right(self.BOUNDS_S, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total_s += seconds
            if seconds > self._max_s:
                self._max_s = seconds

    def _percentile_locked(self, fraction: float) -> float:
        rank = fraction * self._count
        cumulative = 0
        for index, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= rank:
                if index < len(self.BOUNDS_S):
                    # Clamped: a bucket's upper bound can exceed the
                    # largest sample actually seen.
                    return min(self.BOUNDS_S[index], self._max_s)
                return self._max_s  # overflow bucket: report the max seen
        return self._max_s

    def to_json_dict(self) -> Dict[str, Any]:
        """Encode for the ``/stats`` endpoint (milliseconds for humans)."""
        with self._lock:
            if self._count == 0:
                return {
                    "count": 0, "mean_ms": 0.0, "max_ms": 0.0,
                    "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
                }
            return {
                "count": self._count,
                "mean_ms": self._total_s / self._count * 1000.0,
                "max_ms": self._max_s * 1000.0,
                "p50_ms": self._percentile_locked(0.50) * 1000.0,
                "p95_ms": self._percentile_locked(0.95) * 1000.0,
                "p99_ms": self._percentile_locked(0.99) * 1000.0,
            }


class EndpointLatencies:
    """Per-endpoint latency histograms for ``/stats`` (thread-safe).

    Endpoints are labelled by route pattern (``"GET /campaign/*"``), not
    raw path, so the map stays bounded regardless of how many campaign
    ids traffic touches.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: Dict[str, LatencyHistogram] = {}

    def observe(self, endpoint: str, seconds: float) -> None:
        """Record one request's latency under its endpoint label."""
        with self._lock:
            histogram = self._histograms.get(endpoint)
            if histogram is None:
                histogram = self._histograms[endpoint] = LatencyHistogram()
        histogram.record(seconds)

    def to_json_dict(self) -> Dict[str, Any]:
        """Encode for the ``/stats`` endpoint, endpoint-sorted."""
        with self._lock:
            histograms = sorted(self._histograms.items())
        return {endpoint: histogram.to_json_dict() for endpoint, histogram in histograms}


__all__ = [
    "AllocationCache",
    "CacheStats",
    "EndpointLatencies",
    "LatencyHistogram",
    "LatencyRecorder",
]
