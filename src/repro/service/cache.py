"""LRU result cache and service counters.

The allocation problem space is small in practice -- fleets of devices with
the same design-point set asking about a modest set of (budget, alpha)
pairs -- so an LRU map keyed by the canonical problem encoding
(:attr:`repro.service.requests.AllocationRequest.cache_key`) absorbs most of
a production workload before it ever reaches the batch engine.  The cache
itself is thread-safe and keeps hit/miss/eviction counters (note the
surrounding :class:`~repro.service.server.AllocationService` is still
bound to one event loop -- its micro-batcher parks futures on the calling
loop); solve latency is tracked separately by :class:`LatencyRecorder` so
the ``/stats`` endpoint can report both.

The latency *histogram* types (:class:`LatencyHistogram`,
:class:`EndpointLatencies`) moved to :mod:`repro.obs.metrics` when the
observability layer landed; they are re-exported here unchanged for
existing imports.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Generic, Hashable, Optional, Tuple, TypeVar

from repro.obs.metrics import EndpointLatencies, LatencyHistogram

Value = TypeVar("Value")


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of one cache's counters."""

    entries: int
    max_entries: int
    hits: int
    misses: int
    evictions: int

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def to_json_dict(self) -> Dict[str, Any]:
        """Encode for the ``/stats`` endpoint."""
        return {
            "entries": self.entries,
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class AllocationCache(Generic[Value]):
    """Bounded LRU map from canonical problem keys to served responses.

    ``get`` refreshes recency; ``put`` evicts the least recently used entry
    once ``max_entries`` is exceeded.  A ``max_entries`` of zero disables
    caching entirely (every lookup misses, nothing is stored) -- useful for
    benchmarking the solve path.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be non-negative, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, Value]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Value]:
        """Look up a key, refreshing its recency; ``None`` on a miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Value) -> None:
        """Store a key, evicting the least recently used entry when full."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                entries=len(self._entries),
                max_entries=self.max_entries,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )


class LatencyRecorder:
    """Running latency statistics of the allocate path, by outcome.

    ``record(seconds)`` counts a batch-engine solve, as it always has;
    ``record(seconds, outcome="cache_hit")`` / ``outcome="error"`` record
    the paths the aggregate block used to silently skip, so the
    ``latency`` block reconciles with the per-endpoint histograms.  The
    top-level ``solves`` / ``mean_ms`` / ``max_ms`` fields keep their
    historical meaning (solve outcome only); other outcomes appear under
    ``by_outcome``.  Thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # outcome -> [count, total_s, max_s]
        self._outcomes: Dict[str, list] = {}

    def record(self, seconds: float, outcome: str = "solve") -> None:
        """Record one observation's wall-clock latency under an outcome."""
        with self._lock:
            stats = self._outcomes.get(outcome)
            if stats is None:
                stats = self._outcomes[outcome] = [0, 0.0, 0.0]
            stats[0] += 1
            stats[1] += seconds
            if seconds > stats[2]:
                stats[2] = seconds

    def count(self, outcome: str = "solve") -> int:
        """Observations recorded under one outcome."""
        with self._lock:
            stats = self._outcomes.get(outcome)
            return 0 if stats is None else stats[0]

    def outcome_counts(self) -> Dict[str, int]:
        """Outcome -> observation count snapshot."""
        with self._lock:
            return {outcome: stats[0] for outcome, stats in self._outcomes.items()}

    def to_json_dict(self) -> Dict[str, Any]:
        """Encode for the ``/stats`` endpoint (milliseconds for humans)."""
        with self._lock:
            snapshot: Dict[str, Tuple[int, float, float]] = {
                outcome: (stats[0], stats[1], stats[2])
                for outcome, stats in self._outcomes.items()
            }
        count, total_s, max_s = snapshot.get("solve", (0, 0.0, 0.0))
        payload: Dict[str, Any] = {
            "solves": count,
            "mean_ms": total_s / count * 1000.0 if count else 0.0,
            "max_ms": max_s * 1000.0,
        }
        payload["by_outcome"] = {
            outcome: {
                "count": ocount,
                "mean_ms": ototal / ocount * 1000.0 if ocount else 0.0,
                "max_ms": omax * 1000.0,
            }
            for outcome, (ocount, ototal, omax) in sorted(snapshot.items())
        }
        return payload


__all__ = [
    "AllocationCache",
    "CacheStats",
    "EndpointLatencies",
    "LatencyHistogram",
    "LatencyRecorder",
]
