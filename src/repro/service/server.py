"""Stdlib-only JSON-over-HTTP front-end of the allocation service.

Architecture (one process, one event loop)::

    HTTP clients ──> asyncio.start_server ──> AllocationService
                                                ├── AllocationCache   (LRU on canonical keys)
                                                ├── MicroBatcher      (coalesces concurrent misses)
                                                └── EngineRegistry    (one BatchAllocator per DP set)

Every connection handler awaits :meth:`AllocationService.allocate`; cache
misses park on the micro-batcher, so *concurrent* requests -- whether they
arrive on separate connections or inside one ``POST /allocate/batch``
payload -- coalesce into a handful of vectorized solves.  The HTTP layer is
a deliberately small HTTP/1.1 subset (one request per connection,
``Content-Length`` bodies) built on :func:`asyncio.start_server`; no
third-party framework is required, mirroring how long-running energy
services keep their protocol surface auditable.

Endpoints
---------
``GET /healthz``
    Liveness probe plus deployment facts: status, package version,
    uptime, worker/backend configuration.
``GET /stats``
    Cache, batcher, worker-pool, latency, and SLO counters as JSON.
``GET /metrics``
    The same counters in Prometheus text exposition format (scrapeable),
    including per-endpoint latency histograms, per-phase campaign timing
    histograms, and SLO burn rates -- see :mod:`repro.obs`.
``GET /trace/<trace_id>``
    Recorded spans of one trace (requests carry W3C ``traceparent``
    headers; the server opens a span per request and child spans through
    batcher, pool, and campaign workers).
``POST /allocate``
    One :class:`~repro.service.requests.AllocationRequest` JSON body ->
    one :class:`~repro.service.requests.AllocationResponse`.
``POST /allocate/batch``
    ``{"requests": [...]}`` -> ``{"responses": [...]}``; the requests are
    submitted concurrently so they share batched solves.
``POST /campaign``
    One :class:`~repro.service.requests.CampaignRequest` JSON body submits
    a fleet study to the pool's campaign workers; replies immediately with
    the campaign id and ``pending``/``running`` status.
``GET /campaign/<id>``
    Poll one campaign: status, grid shape, and per-cell summaries once
    ``done``.
``GET /campaign/<id>/columns``
    Stream the finished campaign's full per-period columns back as
    chunked NDJSON: one meta line, then one line per (scenario, policy)
    cell.  ``?format=binary`` negotiates the compact binary columnar wire
    format instead (length-prefixed zlib-deflated frames, see
    :meth:`repro.simulation.fleet.FleetResult.to_binary_frames`);
    ``?format=binary&dtype=f4`` sends float32 frames and
    ``?format=binary&codec=raw`` skips compression -- for arena-backed
    results the raw stream is zero-copy ``memoryview`` slices of the
    shared-memory pages the workers wrote.  NDJSON stays the default;
    unknown ``format``/``dtype``/``codec`` values answer 400.
``DELETE /campaign/<id>``
    Drop a finished campaign and free its retained columns (including any
    shared-memory arena blocks backing them); the id 404s afterwards.
    Pending/running jobs answer 409.

``/stats`` additionally reports per-endpoint latency histograms
(p50/p95/p99) under ``"endpoints"``, labelled by route pattern.

Use ``python -m repro serve [--workers N]`` to run a server from the
shell and :mod:`repro.service.client` to talk to it.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import re
import threading
import time
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)
from urllib.parse import parse_qsl

from repro import __version__
from repro.core.design_point import DesignPoint
from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker
from repro.service.batcher import EngineRegistry, MicroBatcher
from repro.service.cache import (
    AllocationCache,
    EndpointLatencies,
    LatencyRecorder,
)
from repro.service.pool import WorkerPool
from repro.service.requests import (
    AllocationRequest,
    AllocationResponse,
    CampaignRequest,
    CampaignResponse,
)

#: Largest request body the server will read, in bytes.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Campaign ids are ``c1``, ``c2``, ... within one server process.
_CAMPAIGN_PATH = re.compile(r"^/campaign/([A-Za-z0-9_-]+)(/columns)?$")

#: ``GET /trace/<trace_id>``: 32 lowercase hex chars, as in traceparent.
_TRACE_PATH = re.compile(r"^/trace/([0-9a-f]{32})$")

#: Request log (one INFO line per served request, trace id attached).
_REQUEST_LOGGER = logging.getLogger("repro.service.http")


class CampaignJob:
    """One submitted fleet study: request, lifecycle state, result."""

    def __init__(self, campaign_id: str, request: CampaignRequest) -> None:
        self.campaign_id = campaign_id
        self.request = request
        self.status = "pending"
        self.result = None  # FleetResult once done
        self.error: Optional[str] = None
        self.task: Optional["asyncio.Task"] = None
        #: Actual trace length, known once the request has been built
        #: (requests with ``hours=None`` default to the whole month, so the
        #: submitted hours alone don't determine it).
        self.trace_hours: int = request.hours or 0
        #: Span context of the submitting request; the campaign's worker
        #: spans parent onto it so one trace id follows the job across the
        #: executor threads and shard processes.
        self.trace_ctx: Optional[tracing.SpanContext] = None

    def status_response(self) -> CampaignResponse:
        """Snapshot the job as a :class:`CampaignResponse`."""
        result = self.result
        if result is not None:
            return CampaignResponse(
                campaign_id=self.campaign_id,
                status=self.status,
                cells=result.num_cells,
                trace_hours=result.trace_hours,
                scenario_labels=tuple(result.scenario_labels),
                policy_names=tuple(result.policy_names),
                alphas=tuple(result.alphas),
                summary=tuple(result.cell_summaries()),
                profile=dict(getattr(result, "phase_timings", {}) or {}) or None,
            )
        return CampaignResponse(
            campaign_id=self.campaign_id,
            status=self.status,
            cells=self.request.num_cells,
            trace_hours=self.trace_hours,
            error=self.error,
        )


class AllocationService:
    """Cache-fronted, micro-batched allocation solving (transport-agnostic).

    The HTTP server wraps this class, but it is equally usable in-process:
    run an event loop and await :meth:`allocate` from many tasks to get the
    same coalescing behaviour without any socket.

    ``workers`` sizes the :class:`~repro.service.pool.WorkerPool` that
    solves flushed batches: ``1`` keeps solves inline on the event loop
    (the PR-3 behaviour), ``N > 1`` fans dispatch groups across engine
    worker threads.  Campaign submissions always run on the pool
    (``campaign_workers`` processes, defaulting to ``workers``).
    """

    def __init__(
        self,
        default_points: Optional[Sequence[DesignPoint]] = None,
        cache_size: int = 4096,
        window_s: float = 0.002,
        max_batch: int = 1024,
        workers: int = 1,
        campaign_workers: Optional[int] = None,
        max_campaigns: int = 64,
        default_backend: str = "numpy",
        shared_memory: Optional[bool] = None,
        slo_ms: Optional[Mapping[str, float]] = None,
    ) -> None:
        if max_campaigns < 1:
            raise ValueError(
                f"max_campaigns must be at least 1, got {max_campaigns}"
            )
        self.registry = EngineRegistry(default_points, default_backend=default_backend)
        self.pool = WorkerPool(
            workers=workers,
            registry=self.registry,
            campaign_workers=campaign_workers,
        )
        self.cache: AllocationCache[AllocationResponse] = AllocationCache(cache_size)
        self.batcher = MicroBatcher(
            registry=self.registry,
            window_s=window_s,
            max_batch=max_batch,
            pool=self.pool if workers > 1 else None,
        )
        self.latency = LatencyRecorder()
        self.endpoint_latency = EndpointLatencies()
        #: Per-endpoint latency objectives (``--slo-ms``); burn rates feed
        #: both ``/stats`` and ``/metrics``.
        self.slo = SloTracker(slo_ms)
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.metrics = MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "repro_requests_total",
            "HTTP requests served, by endpoint and status code.",
            ("endpoint", "status"),
        )
        self._campaign_phase = self.metrics.histogram(
            "repro_campaign_phase_seconds",
            "Wall-clock seconds spent per campaign pipeline phase.",
            ("phase",),
        )
        self._register_metrics()
        #: Worker transport for sharded campaigns: ``None`` auto-detects
        #: the shared-memory arena, ``False`` forces pickle, ``True``
        #: requires shared memory (see :mod:`repro.service.shard`).
        self.shared_memory = shared_memory
        #: Retained campaign jobs; finished ones beyond ``max_campaigns``
        #: are evicted oldest-first (a month-long grid's columns are big --
        #: unbounded retention would leak a long-running service to death).
        self.max_campaigns = int(max_campaigns)
        self._campaigns: Dict[str, CampaignJob] = {}
        self._campaign_ids = itertools.count(1)

    def _register_metrics(self) -> None:
        """Expose the pre-existing counter objects on the registry.

        Everything here is a scrape-time callback over state the service
        already keeps (cache/batcher/pool counters, latency histograms,
        SLO windows), so ``/metrics`` adds no per-request bookkeeping
        beyond the two families recorded directly
        (``repro_requests_total``, ``repro_campaign_phase_seconds``).
        """
        metrics = self.metrics
        metrics.callback(
            "repro_build_info",
            "Constant 1, labelled with the package version.",
            "gauge",
            lambda: [("", {"version": __version__}, 1)],
        )
        metrics.callback(
            "repro_uptime_seconds",
            "Seconds since the service started.",
            "gauge",
            lambda: [("", {}, time.monotonic() - self._started_monotonic)],
        )
        def _cache_lookup_samples():
            stats = self.cache.stats
            return [
                ("", {"result": "hit"}, stats.hits),
                ("", {"result": "miss"}, stats.misses),
            ]

        metrics.callback(
            "repro_cache_lookups_total",
            "Allocation cache lookups, by result.",
            "counter",
            _cache_lookup_samples,
        )
        metrics.callback(
            "repro_cache_evictions_total",
            "Allocation cache LRU evictions.",
            "counter",
            lambda: [("", {}, self.cache.stats.evictions)],
        )
        metrics.callback(
            "repro_cache_entries",
            "Entries currently held in the allocation cache.",
            "gauge",
            lambda: [("", {}, len(self.cache))],
        )
        metrics.callback(
            "repro_batcher_requests_total",
            "Allocation requests that reached the micro-batcher.",
            "counter",
            lambda: [("", {}, self.batcher.stats.requests)],
        )
        metrics.callback(
            "repro_batcher_batches_total",
            "Vectorized solve batches flushed by the micro-batcher.",
            "counter",
            lambda: [("", {}, self.batcher.stats.batches)],
        )
        metrics.callback(
            "repro_allocations_total",
            "Allocation calls, by outcome (solve, cache_hit, error).",
            "counter",
            lambda: [
                ("", {"outcome": outcome}, count)
                for outcome, count in sorted(
                    self.latency.outcome_counts().items()
                )
            ],
        )
        metrics.callback(
            "repro_pool_tasks_total",
            "Solve tasks completed by the engine worker pool.",
            "counter",
            lambda: [("", {}, self.pool.stats()["tasks"])],
        )
        metrics.callback(
            "repro_pool_busy_seconds_total",
            "Cumulative busy time across engine workers.",
            "counter",
            lambda: [("", {}, self.pool.stats()["busy_ms"] / 1000.0)],
        )
        metrics.callback(
            "repro_pool_workers",
            "Configured engine (thread) and campaign (process) workers.",
            "gauge",
            lambda: [
                ("", {"kind": "engine"}, self.pool.workers),
                ("", {"kind": "campaign"}, self.pool.campaign_workers),
            ],
        )
        metrics.callback(
            "repro_engines",
            "Distinct allocation engines instantiated in the registry.",
            "gauge",
            lambda: [("", {}, len(self.registry))],
        )
        metrics.callback(
            "repro_campaigns",
            "Retained campaign jobs, by status.",
            "gauge",
            lambda: [
                ("", {"status": status}, count)
                for status, count in sorted(self._campaign_counts().items())
            ],
        )
        metrics.callback(
            "repro_request_duration_seconds",
            "HTTP request latency, by endpoint route pattern.",
            "histogram",
            self.endpoint_latency.prometheus_samples,
        )
        self.slo.register_metrics(metrics)

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self.pool.shutdown()

    async def allocate(self, request: AllocationRequest) -> AllocationResponse:
        """Serve one request: cache lookup, else coalesced batch solve.

        Every path records into :attr:`latency` with an outcome label
        (``solve`` / ``cache_hit`` / ``error``) so the aggregate block
        reconciles with the per-endpoint histograms.
        """
        started = time.perf_counter()
        key = self.registry.cache_key_of(request)
        cached = self.cache.get(key)
        if cached is not None:
            self.latency.record(time.perf_counter() - started, outcome="cache_hit")
            return cached.marked_cache_hit()
        try:
            response = await self.batcher.solve(request)
        except Exception:
            self.latency.record(time.perf_counter() - started, outcome="error")
            raise
        self.latency.record(time.perf_counter() - started)
        self.cache.put(key, response)
        return response

    async def allocate_many(
        self, requests: Sequence[AllocationRequest]
    ) -> Tuple[AllocationResponse, ...]:
        """Serve a burst: cache hits answer immediately, misses go through
        the batcher as one bulk unit (one future, one scatter)."""
        keys = [self.registry.cache_key_of(request) for request in requests]
        served: List[Optional[AllocationResponse]] = [None] * len(requests)
        misses: List[AllocationRequest] = []
        miss_indices: List[int] = []
        started = time.perf_counter()
        for index, (request, key) in enumerate(zip(requests, keys)):
            cached = self.cache.get(key)
            if cached is not None:
                served[index] = cached.marked_cache_hit()
                self.latency.record(
                    time.perf_counter() - started, outcome="cache_hit"
                )
            else:
                misses.append(request)
                miss_indices.append(index)
        if misses:
            started = time.perf_counter()
            try:
                responses = await self.batcher.solve_bulk(misses)
            except Exception:
                self.latency.record(
                    time.perf_counter() - started, outcome="error"
                )
                raise
            self.latency.record(time.perf_counter() - started)
            for index, response in zip(miss_indices, responses):
                self.cache.put(keys[index], response)
                served[index] = response
        # Hits and misses must cover every slot; a hole would misalign the
        # response list with the request list clients zip against.
        assert all(response is not None for response in served)
        return tuple(served)  # type: ignore[arg-type]

    # --- campaigns --------------------------------------------------------------
    async def submit_campaign(self, request: CampaignRequest) -> CampaignResponse:
        """Accept a fleet study; it runs in the background on the pool."""
        job = CampaignJob(f"c{next(self._campaign_ids)}", request)
        # Captured here, on the event loop, because the campaign body runs
        # on executor threads where contextvars don't follow.
        job.trace_ctx = tracing.current_context()
        self._campaigns[job.campaign_id] = job
        job.task = asyncio.get_running_loop().create_task(
            self._run_campaign(job)
        )
        return job.status_response()

    async def _run_campaign(self, job: CampaignJob) -> None:
        """Drive one campaign to a terminal state off the event loop."""
        job.status = "running"
        loop = asyncio.get_running_loop()
        try:
            # The blocking run (request build + process-pool map) happens on
            # the loop's default thread executor, so the server keeps
            # answering allocations while a month-long grid simulates.
            job.result = await loop.run_in_executor(
                None, self._execute_campaign, job
            )
            job.status = "done"
        except Exception as error:
            job.error = f"{type(error).__name__}: {error}"
            job.status = "failed"
        finally:
            self._evict_finished_campaigns()

    def _evict_finished_campaigns(self) -> None:
        """Drop the oldest *finished* jobs beyond ``max_campaigns``.

        Pending/running jobs are never evicted; ids are monotonic, so dict
        insertion order is submission order.
        """
        overflow = len(self._campaigns) - self.max_campaigns
        if overflow <= 0:
            return
        for campaign_id in [
            job.campaign_id
            for job in self._campaigns.values()
            if job.status in ("done", "failed")
        ][:overflow]:
            evicted = self._campaigns.pop(campaign_id)
            if evicted.result is not None:
                evicted.result.release()  # free any arena mappings now

    def _execute_campaign(self, job: CampaignJob):
        # Campaigns simulate the hardware this service is configured for,
        # the same design points its /allocate answers describe.  The span
        # parents onto the submitting request's context so the client's
        # trace id follows the job into the shard workers.
        with tracing.span(
            "campaign.run", parent=job.trace_ctx, campaign_id=job.campaign_id
        ):
            scenarios, labels, policies, trace, config = job.request.build(
                self.registry.default_points
            )
            job.trace_hours = len(trace)
            result = self.pool.run_campaign(
                scenarios,
                policies,
                trace,
                config,
                scenario_labels=labels,
                shared_memory=self.shared_memory,
            )
        for phase, seconds in (getattr(result, "phase_timings", {}) or {}).items():
            self._campaign_phase.observe(seconds, phase=phase)
        return result

    def campaign(self, campaign_id: str) -> CampaignJob:
        """Look one campaign up (raises ``KeyError`` on unknown ids)."""
        return self._campaigns[campaign_id]

    def delete_campaign(self, campaign_id: str) -> CampaignJob:
        """Drop one finished campaign and free its retained result.

        Raises ``KeyError`` for unknown ids and ``RuntimeError`` while the
        job is still pending/running (deleting a job out from under its
        worker would leave the executor computing into the void); callers
        poll to a terminal state first.  Subsequent lookups of a deleted
        id raise ``KeyError`` -- the HTTP layer turns that into a 404.
        """
        job = self._campaigns[campaign_id]
        if job.status not in ("done", "failed"):
            raise RuntimeError(
                f"campaign {campaign_id!r} is {job.status}; only finished "
                "campaigns can be deleted"
            )
        del self._campaigns[campaign_id]
        if job.result is not None:
            job.result.release()  # drop shared-memory mappings with the job
        return job

    def _campaign_counts(self) -> Dict[str, int]:
        """Retained campaign jobs by status."""
        by_status: Dict[str, int] = {}
        for job in self._campaigns.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return by_status

    def observe_request(self, endpoint: str, seconds: float, status: int) -> None:
        """Account one served HTTP request against every surface.

        Feeds the per-endpoint latency histograms, the matching SLO
        objective (if any), and the request counter -- called by the HTTP
        layer once per connection, after the response is written.
        """
        self.endpoint_latency.observe(endpoint, seconds)
        self.slo.observe(endpoint, seconds)
        self._requests_total.inc(endpoint=endpoint, status=str(status))

    def health(self) -> Dict[str, Any]:
        """Payload of ``GET /healthz``: liveness plus deployment facts."""
        shared = {None: "auto", True: "on", False: "off"}[self.shared_memory]
        return {
            "status": "ok",
            "version": __version__,
            "uptime_s": time.monotonic() - self._started_monotonic,
            "workers": self.pool.workers,
            "campaign_workers": self.pool.campaign_workers,
            "backend": self.registry.default_backend,
            "shared_memory": shared,
            "engines": len(self.registry),
        }

    def stats(self) -> Dict[str, Any]:
        """Counters for the ``/stats`` endpoint."""
        return {
            "cache": self.cache.stats.to_json_dict(),
            "batcher": self.batcher.stats.to_json_dict(),
            "latency": self.latency.to_json_dict(),
            "endpoints": self.endpoint_latency.to_json_dict(),
            "engines": len(self.registry),
            "pool": self.pool.stats(),
            "campaigns": self._campaign_counts(),
            "slo": self.slo.to_json_dict(),
            "uptime_s": time.monotonic() - self._started_monotonic,
        }


class _HttpError(Exception):
    """An error that maps to a specific HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _StreamingPayloads:
    """Dispatch result asking for chunked NDJSON instead of one JSON body."""

    def __init__(self, payloads: Iterator[Dict[str, Any]]) -> None:
        self.payloads = payloads


class _StreamingFrames:
    """Dispatch result asking for chunked binary frames (octet-stream)."""

    def __init__(self, frames: Iterable[bytes]) -> None:
        self.frames = frames


class _PlainText:
    """Dispatch result carrying a non-JSON text body (``/metrics``)."""

    def __init__(
        self,
        text: str,
        status: int = 200,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        self.text = text
        self.status = status
        self.content_type = content_type


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _encode_response(
    status: int,
    payload: Dict[str, Any],
    extra_headers: Sequence[str] = (),
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    extras = "".join(f"{header}\r\n" for header in extra_headers)
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extras}"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


def _encode_text_response(
    result: "_PlainText", extra_headers: Sequence[str] = ()
) -> bytes:
    body = result.text.encode("utf-8")
    extras = "".join(f"{header}\r\n" for header in extra_headers)
    head = (
        f"HTTP/1.1 {result.status} "
        f"{_STATUS_TEXT.get(result.status, 'Unknown')}\r\n"
        f"Content-Type: {result.content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extras}"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], Optional[Dict[str, Any]]]:
    """Parse one HTTP request: (method, path, headers, JSON body or None).

    Header names are lower-cased; a repeated header keeps its last value
    (the subset the service reads -- ``content-length``, ``traceparent``
    -- has no list semantics).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        raise _HttpError(400, "malformed HTTP request head")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise _HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    content_length = 0
    if "content-length" in headers:
        try:
            content_length = int(headers["content-length"])
        except ValueError:
            raise _HttpError(400, "invalid Content-Length")
    if content_length < 0:
        raise _HttpError(400, "negative Content-Length")
    if content_length > MAX_BODY_BYTES:
        raise _HttpError(413, "request body too large")
    body: Optional[Dict[str, Any]] = None
    if content_length:
        try:
            raw = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            # A client that promised more bytes than it sent gets a clean
            # 400, not a traceback-bearing 500.
            raise _HttpError(400, "request body shorter than Content-Length")
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"invalid JSON body: {error}")
        if not isinstance(body, dict):
            raise _HttpError(400, "JSON body must be an object")
    return method, path, headers, body


class AllocationServer:
    """Binds an :class:`AllocationService` to a TCP host/port."""

    def __init__(
        self,
        service: Optional[AllocationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service if service is not None else AllocationService()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def bound_port(self) -> int:
        """The actual port after binding (resolves ``port=0`` ephemera)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @staticmethod
    def _endpoint_label(method: str, path: str) -> str:
        """Route-pattern label for the per-endpoint latency histograms.

        Campaign ids are collapsed to ``*`` and unknown paths to one
        shared bucket, so histogram cardinality is bounded by the route
        table, not by traffic.
        """
        path = path.partition("?")[0]
        match = _CAMPAIGN_PATH.match(path)
        if match:
            suffix = "/columns" if match.group(2) else ""
            return f"{method} /campaign/*{suffix}"
        if _TRACE_PATH.match(path):
            return f"{method} /trace/*"
        if path in ("/healthz", "/stats", "/metrics", "/allocate",
                    "/allocate/batch", "/campaign"):
            return f"{method} {path}"
        return f"{method} (other)"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        label: Optional[str] = None
        trace_ctx: Optional[tracing.SpanContext] = None
        started = time.perf_counter()
        try:
            try:
                method, path, headers, body = await _read_request(reader)
                label = self._endpoint_label(method, path)
                # Every request runs inside an ``http.request`` span: a
                # client-sent traceparent continues that trace, otherwise a
                # fresh one starts here.  Awaiting the dispatch keeps the
                # span's contextvar visible to everything downstream on
                # this task (batcher enqueue, campaign submission).
                parent = tracing.parse_traceparent(headers.get("traceparent"))
                with tracing.span(
                    "http.request", parent=parent, endpoint=label
                ) as http_span:
                    trace_ctx = http_span.context
                    result = await self._dispatch(method, path, body)
            except _HttpError as error:
                result = error.status, {"error": str(error)}
            except Exception as error:  # never kill the accept loop
                result = 500, {"error": f"{type(error).__name__}: {error}"}
            extra_headers = (
                (f"traceparent: {trace_ctx.traceparent()}",) if trace_ctx else ()
            )
            if isinstance(result, _StreamingPayloads):
                status = 200
                await self._write_stream(writer, result, extra_headers)
            elif isinstance(result, _StreamingFrames):
                status = 200
                await self._write_frames(writer, result, extra_headers)
            elif isinstance(result, _PlainText):
                status = result.status
                writer.write(_encode_text_response(result, extra_headers))
                await writer.drain()
            else:
                status, payload = result
                writer.write(_encode_response(status, payload, extra_headers))
                await writer.drain()
            if label is not None:
                elapsed = time.perf_counter() - started
                self.service.observe_request(label, elapsed, status)
                _REQUEST_LOGGER.info(
                    "%s %d %.3fms",
                    label,
                    status,
                    elapsed * 1000.0,
                    extra={
                        "endpoint": label,
                        "status": status,
                        "duration_ms": elapsed * 1000.0,
                        "trace_id": trace_ctx.trace_id if trace_ctx else None,
                    },
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    @staticmethod
    async def _write_frames(
        writer: asyncio.StreamWriter,
        stream: "_StreamingFrames",
        extra_headers: Sequence[str] = (),
    ) -> None:
        """Write binary wire frames with chunked transfer encoding.

        One HTTP chunk per frame, drained as produced -- mirrors
        :meth:`_write_stream`, with ``application/octet-stream`` bytes in
        place of NDJSON lines.  Frames may be ``memoryview`` slices of
        shared-memory pages (the zero-copy raw codec): sizes come from
        ``nbytes`` (``len`` of a non-byte view counts elements) and each
        piece is written separately -- concatenating would both copy and
        raise (``bytes + memoryview`` is a ``TypeError``).
        """
        extras = "".join(f"{header}\r\n" for header in extra_headers)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/octet-stream\r\n"
            "Transfer-Encoding: chunked\r\n"
            f"{extras}"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        writer.write(head)
        await writer.drain()
        for frame in stream.frames:
            nbytes = (
                frame.nbytes if isinstance(frame, memoryview) else len(frame)
            )
            if not nbytes:
                continue  # zero-length HTTP chunk would terminate the stream
            writer.write(f"{nbytes:x}\r\n".encode("ascii"))
            writer.write(frame)
            writer.write(b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    async def _write_stream(
        writer: asyncio.StreamWriter,
        stream: "_StreamingPayloads",
        extra_headers: Sequence[str] = (),
    ) -> None:
        """Write NDJSON payloads with chunked transfer encoding.

        One HTTP chunk per JSON line, drained as produced -- a client can
        decode cell by cell while later cells are still being encoded.
        """
        extras = "".join(f"{header}\r\n" for header in extra_headers)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            f"{extras}"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        writer.write(head)
        await writer.drain()
        for payload in stream.payloads:
            line = (json.dumps(payload) + "\n").encode("utf-8")
            writer.write(f"{len(line):x}\r\n".encode("ascii") + line + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _dispatch(
        self, method: str, path: str, body: Optional[Dict[str, Any]]
    ):
        path, _, raw_query = path.partition("?")
        query = dict(parse_qsl(raw_query, keep_blank_values=True))
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            return 200, self.service.health()
        if path == "/stats":
            if method != "GET":
                raise _HttpError(405, "stats is GET-only")
            return 200, self.service.stats()
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "metrics is GET-only")
            return _PlainText(self.service.metrics.render())
        trace_match = _TRACE_PATH.match(path)
        if trace_match:
            if method != "GET":
                raise _HttpError(405, "trace lookup is GET-only")
            trace_id = trace_match.group(1)
            spans = tracing.recorder().spans(trace_id)
            if spans is None:
                raise _HttpError(404, f"unknown trace {trace_id!r}")
            return 200, {"trace_id": trace_id, "spans": spans}
        if path == "/allocate":
            if method != "POST":
                raise _HttpError(405, "allocate is POST-only")
            if body is None:
                raise _HttpError(400, "allocate needs a JSON body")
            request = self._decode_request(body)
            response = await self.service.allocate(request)
            return 200, response.to_json_dict()
        if path == "/allocate/batch":
            if method != "POST":
                raise _HttpError(405, "allocate/batch is POST-only")
            if body is None or not isinstance(body.get("requests"), list):
                raise _HttpError(
                    400, "allocate/batch needs {'requests': [...]} in the body"
                )
            requests = [self._decode_request(entry) for entry in body["requests"]]
            responses = await self.service.allocate_many(requests)
            return 200, {
                "responses": [response.to_json_dict() for response in responses]
            }
        if path == "/campaign":
            if method != "POST":
                raise _HttpError(405, "campaign submission is POST-only")
            if body is None:
                raise _HttpError(400, "campaign needs a JSON body")
            try:
                request = CampaignRequest.from_json_dict(body)
            except (ValueError, KeyError, TypeError) as error:
                raise _HttpError(400, f"invalid campaign request: {error}")
            response = await self.service.submit_campaign(request)
            return 200, response.to_json_dict()
        match = _CAMPAIGN_PATH.match(path)
        if match:
            campaign_id, wants_columns = match.group(1), bool(match.group(2))
            if method == "DELETE" and not wants_columns:
                try:
                    self.service.delete_campaign(campaign_id)
                except KeyError:
                    raise _HttpError(404, f"unknown campaign {campaign_id!r}")
                except RuntimeError as error:
                    raise _HttpError(409, str(error))
                return 200, {"campaign_id": campaign_id, "deleted": True}
            if method != "GET":
                raise _HttpError(405, "campaign polling is GET-only")
            try:
                job = self.service.campaign(campaign_id)
            except KeyError:
                raise _HttpError(404, f"unknown campaign {campaign_id!r}")
            if not wants_columns:
                return 200, job.status_response().to_json_dict()
            if job.status != "done":
                raise _HttpError(
                    409,
                    f"campaign {campaign_id!r} is {job.status}; columns "
                    "stream only once done",
                )
            result = job.result
            assert result is not None
            columns_format = query.get("format", "ndjson")
            if columns_format == "ndjson":
                return _StreamingPayloads(
                    itertools.chain(
                        [result.meta_payload()], result.cell_payloads()
                    )
                )
            if columns_format == "binary":
                dtype_name = query.get("dtype", "f8")
                dtype = {"f8": "<f8", "f4": "<f4"}.get(dtype_name)
                if dtype is None:
                    raise _HttpError(
                        400,
                        f"unknown columns dtype {dtype_name!r}; "
                        "expected 'f8' or 'f4'",
                    )
                codec = query.get("codec", "zlib")
                if codec not in ("zlib", "raw"):
                    raise _HttpError(
                        400,
                        f"unknown columns codec {codec!r}; "
                        "expected 'zlib' or 'raw'",
                    )
                return _StreamingFrames(
                    result.to_binary_frames(dtype, compress=codec == "zlib")
                )
            raise _HttpError(
                400,
                f"unknown columns format {columns_format!r}; "
                "expected 'ndjson' or 'binary'",
            )
        raise _HttpError(404, f"unknown path {path!r}")

    @staticmethod
    def _decode_request(payload: Dict[str, Any]) -> AllocationRequest:
        try:
            return AllocationRequest.from_json_dict(payload)
        except (ValueError, KeyError, TypeError) as error:
            raise _HttpError(400, f"invalid allocation request: {error}")


async def serve(
    service: Optional[AllocationService] = None,
    host: str = "127.0.0.1",
    port: int = 8734,
    port_file: Optional[str] = None,
    ready: Optional["asyncio.Event"] = None,
    announce: bool = True,
) -> None:
    """Run the server until cancelled.

    ``port=0`` binds an ephemeral port; ``port_file`` (written after the
    bind) lets shell callers discover it -- the CI smoke test starts the
    server with ``--port 0 --port-file`` and reads the file.  ``ready`` is
    an optional event set once the socket is listening (for in-process
    supervisors like :func:`start_in_thread`).
    """
    server = AllocationServer(service, host=host, port=port)
    await server.start()
    bound = server.bound_port
    if port_file:
        with open(port_file, "w", encoding="ascii") as handle:
            handle.write(f"{bound}\n")
    if announce:
        print(f"allocation service listening on http://{host}:{bound}", flush=True)
    if ready is not None:
        ready.set()
    try:
        await asyncio.Event().wait()  # park until cancelled
    finally:
        await server.stop()


def run_server(
    service: Optional[AllocationService] = None,
    host: str = "127.0.0.1",
    port: int = 8734,
    port_file: Optional[str] = None,
) -> int:
    """Blocking entry point used by ``python -m repro serve``."""
    try:
        asyncio.run(
            serve(service=service, host=host, port=port, port_file=port_file)
        )
    except KeyboardInterrupt:
        print("allocation service stopped", flush=True)
    finally:
        if service is not None:
            service.close()
    return 0


class ServerHandle:
    """A running background server: address plus a ``stop()`` switch."""

    def __init__(
        self,
        host: str,
        port: int,
        service: AllocationService,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        task: "asyncio.Task",
    ) -> None:
        self.host = host
        self.port = port
        self.service = service
        self._thread = thread
        self._loop = loop
        self._task = task

    @property
    def base_url(self) -> str:
        """Root URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout_s: float = 5.0) -> None:
        """Cancel the server task and join its thread."""
        self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(timeout=timeout_s)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def start_in_thread(
    service: Optional[AllocationService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    timeout_s: float = 10.0,
) -> ServerHandle:
    """Start a server on a daemon thread and wait until it is listening.

    This is the test/demo harness: callers get a :class:`ServerHandle` with
    the bound ephemeral port and a ``stop()`` method (also usable as a
    context manager).
    """
    service = service if service is not None else AllocationService()
    started = threading.Event()
    holder: Dict[str, Any] = {}

    def _runner() -> None:
        async def _main() -> None:
            ready: "asyncio.Event" = asyncio.Event()
            server = AllocationServer(service, host=host, port=port)
            await server.start()
            holder["port"] = server.bound_port
            holder["loop"] = asyncio.get_running_loop()
            holder["task"] = asyncio.current_task()
            started.set()
            try:
                await ready.wait()  # parked until the task is cancelled
            except asyncio.CancelledError:
                pass
            finally:
                await server.stop()

        asyncio.run(_main())

    thread = threading.Thread(target=_runner, name="allocation-server", daemon=True)
    thread.start()
    if not started.wait(timeout=timeout_s):
        raise RuntimeError("allocation server failed to start in time")
    return ServerHandle(
        host=host,
        port=holder["port"],
        service=service,
        thread=thread,
        loop=holder["loop"],
        task=holder["task"],
    )


__all__ = [
    "AllocationServer",
    "AllocationService",
    "CampaignJob",
    "ServerHandle",
    "run_server",
    "serve",
    "start_in_thread",
]
