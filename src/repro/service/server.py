"""Stdlib-only JSON-over-HTTP front-end of the allocation service.

Architecture (one process, one event loop)::

    HTTP clients ──> asyncio.start_server ──> AllocationService
                                                ├── AllocationCache   (LRU on canonical keys)
                                                ├── MicroBatcher      (coalesces concurrent misses)
                                                └── EngineRegistry    (one BatchAllocator per DP set)

Every connection handler awaits :meth:`AllocationService.allocate`; cache
misses park on the micro-batcher, so *concurrent* requests -- whether they
arrive on separate connections or inside one ``POST /allocate/batch``
payload -- coalesce into a handful of vectorized solves.  The HTTP layer is
a deliberately small HTTP/1.1 subset (one request per connection,
``Content-Length`` bodies) built on :func:`asyncio.start_server`; no
third-party framework is required, mirroring how long-running energy
services keep their protocol surface auditable.

The service API is versioned: every endpoint lives under ``/v1/...`` and
every ``/v1`` error body is the uniform envelope ``{"error": {"code",
"message", "detail"}}`` with stable machine-readable codes
(``bad_request``, ``job_running``, ``not_found``, ``store_unavailable``,
...).  The legacy unversioned paths keep working through a shim that
serves the same handlers with the pre-v1 string error bodies and adds a
``Deprecation: true`` header plus a ``Link: </v1/...>;
rel="successor-version"`` pointer.  See ``docs/service_api.md``.

Campaign jobs follow an explicit lifecycle -- ``queued -> running -> done
| failed | cancelled`` -- and, when the service is built with a
:class:`~repro.service.store.CampaignStore` (``repro serve --store
PATH``), every transition is journaled *before* it is acknowledged: a
submitted campaign id survives ``SIGKILL``, a restarted server re-adopts
unfinished jobs (re-running only the shards with no journaled result),
and evicted finished jobs are re-served from disk.  Multiple server
processes can share one port (``--procs N``, ``SO_REUSEPORT``) and
coordinate through the store alone -- see :mod:`repro.service.frontend`.

Endpoints (shown unversioned; prefix with ``/v1`` for the stable API)
---------------------------------------------------------------------
``GET /healthz``
    Liveness probe plus deployment facts: status, package version,
    uptime, pid, worker/backend/store configuration.
``GET /stats``
    Cache, batcher, worker-pool, latency, and SLO counters as JSON.
``GET /metrics``
    The same counters in Prometheus text exposition format (scrapeable),
    including per-endpoint latency histograms, per-phase campaign timing
    histograms, and SLO burn rates -- see :mod:`repro.obs`.
``GET /trace/<trace_id>``
    Recorded spans of one trace (requests carry W3C ``traceparent``
    headers; the server opens a span per request and child spans through
    batcher, pool, and campaign workers).
``POST /allocate``
    One :class:`~repro.service.requests.AllocationRequest` JSON body ->
    one :class:`~repro.service.requests.AllocationResponse`.
``POST /allocate/batch``
    ``{"requests": [...]}`` -> ``{"responses": [...]}``; the requests are
    submitted concurrently so they share batched solves.
``POST /campaign``
    One :class:`~repro.service.requests.CampaignRequest` JSON body submits
    a fleet study to the pool's campaign workers; replies immediately with
    the campaign id and ``queued``/``running`` status.  With a store the
    id is journaled before the reply (persist-then-ack); an
    ``Idempotency-Key`` header makes retries exactly-once (same key ->
    same job id, replayed from the store).
``GET /campaign/<id>``
    Poll one campaign: status, grid shape, and per-cell summaries once
    ``done``.  With a store, ids this process has never seen (another
    front-end's jobs, pre-restart jobs, evicted results) are answered
    from the journal.
``POST /campaign/<id>/cancel``
    Request cancellation of a queued/running campaign; the job stops at
    the next shard boundary and reports ``cancelled``.  Terminal jobs
    answer 409.
``GET /campaign/<id>/columns``
    Stream the finished campaign's full per-period columns back as
    chunked NDJSON: one meta line, then one line per (scenario, policy)
    cell.  ``?format=binary`` negotiates the compact binary columnar wire
    format instead (length-prefixed zlib-deflated frames, see
    :meth:`repro.simulation.fleet.FleetResult.to_binary_frames`);
    ``?format=binary&dtype=f4`` sends float32 frames and
    ``?format=binary&codec=raw`` skips compression -- for arena-backed
    results the raw stream is zero-copy ``memoryview`` slices of the
    shared-memory pages the workers wrote.  NDJSON stays the default;
    unknown ``format``/``dtype``/``codec`` values answer 400.
``DELETE /campaign/<id>``
    Drop a finished campaign and free its retained columns (including any
    shared-memory arena blocks backing them); the id 404s afterwards.
    Pending/running jobs answer 409.

``/stats`` additionally reports per-endpoint latency histograms
(p50/p95/p99) under ``"endpoints"``, labelled by route pattern.

Use ``python -m repro serve [--workers N]`` to run a server from the
shell and :mod:`repro.service.client` to talk to it.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
import os
import platform
import re
import threading
import time
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)
from urllib.parse import parse_qsl

from repro import __version__
from repro.core.design_point import DesignPoint
from repro.obs import cluster as obs_cluster
from repro.obs import tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker
from repro.service.batcher import EngineRegistry, MicroBatcher
from repro.service.cache import (
    AllocationCache,
    EndpointLatencies,
    LatencyRecorder,
)
from repro.service.pool import WorkerPool
from repro.service.requests import (
    AllocationRequest,
    AllocationResponse,
    CampaignRequest,
    CampaignResponse,
)
from repro.service.store import (
    RESUMABLE_STATUSES,
    CampaignStore,
    StoreError,
)

#: Largest request body the server will read, in bytes.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Campaign ids are ``c1``, ``c2``, ... (per process, or store-wide when a
#: durable store allocates them).
_CAMPAIGN_PATH = re.compile(
    r"^/campaign/([A-Za-z0-9_-]+)(/columns|/cancel|/events)?$"
)

#: Version prefix of the stable API; legacy paths omit it (and get a
#: ``Deprecation`` header on the way out).
_API_PREFIX = "/v1"

#: ``GET /trace/<trace_id>``: 32 lowercase hex chars, as in traceparent.
_TRACE_PATH = re.compile(r"^/trace/([0-9a-f]{32})$")

#: Request log (one INFO line per served request, trace id attached).
_REQUEST_LOGGER = logging.getLogger("repro.service.http")


class CampaignCancelled(Exception):
    """A campaign stopped at a shard boundary because it was cancelled."""


class _LeaseLost(Exception):
    """Another front-end holds the job's run lease; stand down quietly."""


class CampaignJob:
    """One submitted fleet study: request, lifecycle state, result."""

    def __init__(self, campaign_id: str, request: CampaignRequest) -> None:
        self.campaign_id = campaign_id
        self.request = request
        self.status = "queued"
        self.result = None  # FleetResult once done
        self.error: Optional[str] = None
        self.task: Optional["asyncio.Task"] = None
        #: Set by ``POST /campaign/<id>/cancel``; the executor checks it
        #: (and the store's journal) at every shard boundary.
        self.cancel_requested = False
        #: Whether this job object was rebuilt from the journal rather
        #: than submitted to this process.
        self.recovered = False
        #: Actual trace length, known once the request has been built
        #: (requests with ``hours=None`` default to the whole month, so the
        #: submitted hours alone don't determine it).
        self.trace_hours: int = request.hours or 0
        #: Span context of the submitting request; the campaign's worker
        #: spans parent onto it so one trace id follows the job across the
        #: executor threads and shard processes.
        self.trace_ctx: Optional[tracing.SpanContext] = None

    def status_response(self) -> CampaignResponse:
        """Snapshot the job as a :class:`CampaignResponse`."""
        result = self.result
        if result is not None:
            return CampaignResponse(
                campaign_id=self.campaign_id,
                status=self.status,
                cells=result.num_cells,
                trace_hours=result.trace_hours,
                scenario_labels=tuple(result.scenario_labels),
                policy_names=tuple(result.policy_names),
                alphas=tuple(result.alphas),
                summary=tuple(result.cell_summaries()),
                profile=dict(getattr(result, "phase_timings", {}) or {}) or None,
            )
        return CampaignResponse(
            campaign_id=self.campaign_id,
            status=self.status,
            cells=self.request.num_cells,
            trace_hours=self.trace_hours,
            error=self.error,
        )


class AllocationService:
    """Cache-fronted, micro-batched allocation solving (transport-agnostic).

    The HTTP server wraps this class, but it is equally usable in-process:
    run an event loop and await :meth:`allocate` from many tasks to get the
    same coalescing behaviour without any socket.

    ``workers`` sizes the :class:`~repro.service.pool.WorkerPool` that
    solves flushed batches: ``1`` keeps solves inline on the event loop
    (the PR-3 behaviour), ``N > 1`` fans dispatch groups across engine
    worker threads.  Campaign submissions always run on the pool
    (``campaign_workers`` processes, defaulting to ``workers``).
    """

    def __init__(
        self,
        default_points: Optional[Sequence[DesignPoint]] = None,
        cache_size: int = 4096,
        window_s: float = 0.002,
        max_batch: int = 1024,
        workers: int = 1,
        campaign_workers: Optional[int] = None,
        max_campaigns: int = 64,
        default_backend: str = "numpy",
        shared_memory: Optional[bool] = None,
        slo_ms: Optional[Mapping[str, float]] = None,
        store: Optional[Any] = None,
    ) -> None:
        if max_campaigns < 1:
            raise ValueError(
                f"max_campaigns must be at least 1, got {max_campaigns}"
            )
        #: Durable campaign job store (:mod:`repro.service.store`), or
        #: ``None`` for the in-memory-only service.  A string is treated
        #: as a store path and opened with default durability settings.
        self.store: Optional[CampaignStore] = (
            CampaignStore(store) if isinstance(store, str) else store
        )
        self.registry = EngineRegistry(default_points, default_backend=default_backend)
        self.pool = WorkerPool(
            workers=workers,
            registry=self.registry,
            campaign_workers=campaign_workers,
        )
        self.cache: AllocationCache[AllocationResponse] = AllocationCache(cache_size)
        self.batcher = MicroBatcher(
            registry=self.registry,
            window_s=window_s,
            max_batch=max_batch,
            pool=self.pool if workers > 1 else None,
        )
        self.latency = LatencyRecorder()
        self.endpoint_latency = EndpointLatencies()
        #: Per-endpoint latency objectives (``--slo-ms``); burn rates feed
        #: both ``/stats`` and ``/metrics``.
        self.slo = SloTracker(slo_ms)
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        #: Cluster-wide identity of this process (``host:pid``) -- the
        #: ``proc`` label on published snapshots and liveness gauges.
        self.proc = obs_cluster.proc_identity()
        #: High-water mark into the trace recorder's drain buffer; spans
        #: filed after it are persisted on the next snapshot publication.
        self._span_seq = 0
        self.metrics = MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "repro_requests_total",
            "HTTP requests served, by endpoint and status code.",
            ("endpoint", "status"),
        )
        self._campaign_phase = self.metrics.histogram(
            "repro_campaign_phase_seconds",
            "Wall-clock seconds spent per campaign pipeline phase.",
            ("phase",),
        )
        self._register_metrics()
        #: Worker transport for sharded campaigns: ``None`` auto-detects
        #: the shared-memory arena, ``False`` forces pickle, ``True``
        #: requires shared memory (see :mod:`repro.service.shard`).
        self.shared_memory = shared_memory
        #: Retained campaign jobs; finished ones beyond ``max_campaigns``
        #: are evicted oldest-first (a month-long grid's columns are big --
        #: unbounded retention would leak a long-running service to death).
        self.max_campaigns = int(max_campaigns)
        self._campaigns: Dict[str, CampaignJob] = {}
        self._campaign_ids = itertools.count(1)
        #: Best-effort in-process idempotency map (key -> campaign id)
        #: for services without a store; with a store the mapping is
        #: durable and lives in its ``idempotency`` table.
        self._idempotency: Dict[str, str] = {}

    def _register_metrics(self) -> None:
        """Expose the pre-existing counter objects on the registry.

        Everything here is a scrape-time callback over state the service
        already keeps (cache/batcher/pool counters, latency histograms,
        SLO windows), so ``/metrics`` adds no per-request bookkeeping
        beyond the two families recorded directly
        (``repro_requests_total``, ``repro_campaign_phase_seconds``).
        """
        metrics = self.metrics
        metrics.callback(
            "repro_build_info",
            "Constant 1, labelled with the package version, default "
            "engine backend, and Python version.",
            "gauge",
            lambda: [(
                "",
                {
                    "version": __version__,
                    "backend": self.registry.default_backend,
                    "python": platform.python_version(),
                },
                1,
            )],
        )
        metrics.callback(
            "repro_frontend_up",
            "Liveness of this front-end process (1 while serving), "
            "labelled with its host:pid identity.",
            "gauge",
            lambda: [("", {"proc": self.proc}, 1)],
        )
        metrics.callback(
            "repro_uptime_seconds",
            "Seconds since the service started.",
            "gauge",
            lambda: [("", {}, time.monotonic() - self._started_monotonic)],
        )
        def _cache_lookup_samples():
            stats = self.cache.stats
            return [
                ("", {"result": "hit"}, stats.hits),
                ("", {"result": "miss"}, stats.misses),
            ]

        metrics.callback(
            "repro_cache_lookups_total",
            "Allocation cache lookups, by result.",
            "counter",
            _cache_lookup_samples,
        )
        metrics.callback(
            "repro_cache_evictions_total",
            "Allocation cache LRU evictions.",
            "counter",
            lambda: [("", {}, self.cache.stats.evictions)],
        )
        metrics.callback(
            "repro_cache_entries",
            "Entries currently held in the allocation cache.",
            "gauge",
            lambda: [("", {}, len(self.cache))],
        )
        metrics.callback(
            "repro_batcher_requests_total",
            "Allocation requests that reached the micro-batcher.",
            "counter",
            lambda: [("", {}, self.batcher.stats.requests)],
        )
        metrics.callback(
            "repro_batcher_batches_total",
            "Vectorized solve batches flushed by the micro-batcher.",
            "counter",
            lambda: [("", {}, self.batcher.stats.batches)],
        )
        metrics.callback(
            "repro_allocations_total",
            "Allocation calls, by outcome (solve, cache_hit, error).",
            "counter",
            lambda: [
                ("", {"outcome": outcome}, count)
                for outcome, count in sorted(
                    self.latency.outcome_counts().items()
                )
            ],
        )
        metrics.callback(
            "repro_pool_tasks_total",
            "Solve tasks completed by the engine worker pool.",
            "counter",
            lambda: [("", {}, self.pool.stats()["tasks"])],
        )
        metrics.callback(
            "repro_pool_busy_seconds_total",
            "Cumulative busy time across engine workers.",
            "counter",
            lambda: [("", {}, self.pool.stats()["busy_ms"] / 1000.0)],
        )
        metrics.callback(
            "repro_pool_workers",
            "Configured engine (thread) and campaign (process) workers.",
            "gauge",
            lambda: [
                ("", {"kind": "engine"}, self.pool.workers),
                ("", {"kind": "campaign"}, self.pool.campaign_workers),
            ],
        )
        metrics.callback(
            "repro_engines",
            "Distinct allocation engines instantiated in the registry.",
            "gauge",
            lambda: [("", {}, len(self.registry))],
        )
        metrics.callback(
            "repro_campaigns",
            "Retained campaign jobs, by status.",
            "gauge",
            lambda: [
                ("", {"status": status}, count)
                for status, count in sorted(self._campaign_counts().items())
            ],
        )
        metrics.callback(
            "repro_request_duration_seconds",
            "HTTP request latency, by endpoint route pattern.",
            "histogram",
            self.endpoint_latency.prometheus_samples,
        )

        def _store_append_samples():
            if self.store is None:
                return []
            stats = self.store.stats.to_json_dict()
            return [
                ("", {"kind": kind}, count)
                for kind, count in stats["appends"].items()
            ]

        def _store_lease_samples():
            if self.store is None:
                return []
            leases = self.store.stats.to_json_dict()["leases"]
            return [
                ("", {"event": event}, count)
                for event, count in sorted(leases.items())
            ]

        def _store_scalar(name):
            def sample():
                if self.store is None:
                    return []
                return [("", {}, self.store.stats.to_json_dict()[name])]

            return sample

        metrics.callback(
            "repro_store_appends_total",
            "Campaign journal records appended, by record kind.",
            "counter",
            _store_append_samples,
        )
        metrics.callback(
            "repro_store_append_bytes_total",
            "Campaign journal payload bytes appended.",
            "counter",
            _store_scalar("append_bytes"),
        )
        metrics.callback(
            "repro_store_leases_total",
            "Campaign job lease events (acquired, stolen, rejected).",
            "counter",
            _store_lease_samples,
        )
        metrics.callback(
            "repro_store_jobs_recovered_total",
            "Interrupted campaign jobs re-adopted from the journal.",
            "counter",
            _store_scalar("jobs_recovered"),
        )
        metrics.callback(
            "repro_store_records_dropped_total",
            "Torn journal records dropped during recovery.",
            "counter",
            _store_scalar("records_dropped"),
        )
        self.slo.register_metrics(metrics)

    def close(self) -> None:
        """Shut the worker pool and the store down (idempotent)."""
        self.pool.shutdown()
        if self.store is not None:
            self.store.close()

    async def allocate(self, request: AllocationRequest) -> AllocationResponse:
        """Serve one request: cache lookup, else coalesced batch solve.

        Every path records into :attr:`latency` with an outcome label
        (``solve`` / ``cache_hit`` / ``error``) so the aggregate block
        reconciles with the per-endpoint histograms.
        """
        started = time.perf_counter()
        key = self.registry.cache_key_of(request)
        cached = self.cache.get(key)
        if cached is not None:
            self.latency.record(time.perf_counter() - started, outcome="cache_hit")
            return cached.marked_cache_hit()
        try:
            response = await self.batcher.solve(request)
        except Exception:
            self.latency.record(time.perf_counter() - started, outcome="error")
            raise
        self.latency.record(time.perf_counter() - started)
        self.cache.put(key, response)
        return response

    async def allocate_many(
        self, requests: Sequence[AllocationRequest]
    ) -> Tuple[AllocationResponse, ...]:
        """Serve a burst: cache hits answer immediately, misses go through
        the batcher as one bulk unit (one future, one scatter)."""
        keys = [self.registry.cache_key_of(request) for request in requests]
        served: List[Optional[AllocationResponse]] = [None] * len(requests)
        misses: List[AllocationRequest] = []
        miss_indices: List[int] = []
        started = time.perf_counter()
        for index, (request, key) in enumerate(zip(requests, keys)):
            cached = self.cache.get(key)
            if cached is not None:
                served[index] = cached.marked_cache_hit()
                self.latency.record(
                    time.perf_counter() - started, outcome="cache_hit"
                )
            else:
                misses.append(request)
                miss_indices.append(index)
        if misses:
            started = time.perf_counter()
            try:
                responses = await self.batcher.solve_bulk(misses)
            except Exception:
                self.latency.record(
                    time.perf_counter() - started, outcome="error"
                )
                raise
            self.latency.record(time.perf_counter() - started)
            for index, response in zip(miss_indices, responses):
                self.cache.put(keys[index], response)
                served[index] = response
        # Hits and misses must cover every slot; a hole would misalign the
        # response list with the request list clients zip against.
        assert all(response is not None for response in served)
        return tuple(served)  # type: ignore[arg-type]

    # --- campaigns --------------------------------------------------------------
    async def submit_campaign(
        self,
        request: CampaignRequest,
        idempotency_key: Optional[str] = None,
    ) -> CampaignResponse:
        """Accept a fleet study; it runs in the background on the pool.

        With a store the submission is journaled -- and committed -- before
        this returns (persist-then-ack): the id in the response survives
        ``SIGKILL``.  ``idempotency_key`` makes retries exactly-once: a
        key seen before returns the existing job's current status instead
        of starting a second run (durable across restarts with a store;
        best-effort within this process without one -- a replay whose job
        was already evicted starts a fresh run, since the evicted result
        is gone).
        """
        loop = asyncio.get_running_loop()
        if self.store is not None:
            campaign_id, created = await loop.run_in_executor(
                None, self.store.submit, request, idempotency_key
            )
            if not created:
                return (await self.campaign_lookup(campaign_id)).status_response()
            job = CampaignJob(campaign_id, request)
        else:
            if idempotency_key is not None:
                existing = self._idempotency.get(idempotency_key)
                if existing is not None and existing in self._campaigns:
                    return self._campaigns[existing].status_response()
            job = CampaignJob(f"c{next(self._campaign_ids)}", request)
            if idempotency_key is not None:
                self._idempotency[idempotency_key] = job.campaign_id
        # Captured here, on the event loop, because the campaign body runs
        # on executor threads where contextvars don't follow.
        job.trace_ctx = tracing.current_context()
        self._campaigns[job.campaign_id] = job
        job.task = loop.create_task(self._run_campaign(job))
        return job.status_response()

    async def _run_campaign(self, job: CampaignJob) -> None:
        """Drive one campaign to a terminal state off the event loop."""
        job.status = "running"
        loop = asyncio.get_running_loop()
        try:
            # The blocking run (request build + process-pool map) happens on
            # the loop's default thread executor, so the server keeps
            # answering allocations while a month-long grid simulates.
            job.result = await loop.run_in_executor(
                None, self._execute_campaign, job
            )
            job.status = "done"
        except CampaignCancelled:
            job.status = "cancelled"
        except _LeaseLost:
            # Another front-end is driving this job.  Forget our local
            # copy so later lookups re-read the journal instead of a
            # stale in-memory snapshot.
            self._campaigns.pop(job.campaign_id, None)
            job.status = "running"
        except Exception as error:
            job.error = f"{type(error).__name__}: {error}"
            job.status = "failed"
            if self.store is not None:
                try:
                    self.store.fail(job.campaign_id, job.error)
                except StoreError:
                    pass  # the failure may *be* a broken store
        finally:
            self._evict_finished_campaigns()

    def _evict_finished_campaigns(self) -> None:
        """Drop the oldest *finished* jobs beyond ``max_campaigns``.

        Queued/running jobs are never evicted; ids are monotonic, so dict
        insertion order is submission order.  With a store an evicted id
        is a cache miss, not a 404 -- lookups re-serve it from the journal.
        """
        overflow = len(self._campaigns) - self.max_campaigns
        if overflow <= 0:
            return
        for campaign_id in [
            job.campaign_id
            for job in self._campaigns.values()
            if job.status in CampaignResponse.TERMINAL_STATUSES
        ][:overflow]:
            evicted = self._campaigns.pop(campaign_id)
            if evicted.result is not None:
                evicted.result.release()  # free any arena mappings now

    def _durable_shards(self) -> int:
        """Chunk count for journaled campaigns.

        Finer than one chunk per worker so a kill loses at most a quarter
        of a worker's wall-clock; 1 when campaigns run inline (chunking a
        single-threaded run would only add journal records).
        """
        workers = self.pool.campaign_workers
        return workers * 4 if workers > 1 else 1

    def _execute_campaign(self, job: CampaignJob):
        # Campaigns simulate the hardware this service is configured for,
        # the same design points its /allocate answers describe.  The span
        # parents onto the submitting request's context so the client's
        # trace id follows the job into the shard workers.
        with tracing.span(
            "campaign.run", parent=job.trace_ctx, campaign_id=job.campaign_id
        ):
            scenarios, labels, policies, trace, config = job.request.build(
                self.registry.default_points
            )
            job.trace_hours = len(trace)
            store = self.store
            completed = None
            on_shard_done = None
            shards = None
            if store is not None:
                campaign_id = job.campaign_id
                if not store.acquire_lease(campaign_id):
                    raise _LeaseLost(campaign_id)
                if job.cancel_requested or store.is_cancelled(campaign_id):
                    raise CampaignCancelled(campaign_id)
                store.start(campaign_id, len(trace))
                # Cells journaled by a previous (killed) run are final;
                # only the rest are simulated.
                completed = store.done_cells(campaign_id)
                shards = self._durable_shards()

                def journal_shard(cells) -> None:
                    store.shard_done(campaign_id, cells)
                    store.renew_lease(campaign_id)
                    if job.cancel_requested or store.is_cancelled(campaign_id):
                        raise CampaignCancelled(campaign_id)

                on_shard_done = journal_shard
            elif job.cancel_requested:
                raise CampaignCancelled(job.campaign_id)
            try:
                result = self.pool.run_campaign(
                    scenarios,
                    policies,
                    trace,
                    config,
                    scenario_labels=labels,
                    shared_memory=self.shared_memory,
                    completed=completed,
                    on_shard_done=on_shard_done,
                    shards=shards,
                )
                if store is not None:
                    store.finish(job.campaign_id, result)
            finally:
                if store is not None:
                    store.release_lease(job.campaign_id)
        for phase, seconds in (getattr(result, "phase_timings", {}) or {}).items():
            self._campaign_phase.observe(seconds, phase=phase)
        return result

    def campaign(self, campaign_id: str) -> CampaignJob:
        """Look one campaign up in memory (``KeyError`` on unknown ids).

        The synchronous, memory-only lookup; the HTTP layer uses
        :meth:`campaign_lookup`, which falls back to the store.
        """
        return self._campaigns[campaign_id]

    async def campaign_lookup(self, campaign_id: str) -> CampaignJob:
        """Look one campaign up, falling back to the durable store.

        Memory answers directly.  With a store, unknown ids are replayed
        from the journal: finished jobs get their result reassembled from
        the journaled shard frames (and re-cached -- eviction is a cache
        miss, not data loss), terminal failures/cancellations are
        reported as such, and an interrupted job nobody is driving (its
        lease is absent, expired, or owned by a dead process) is adopted
        and resumed by this process.  Raises ``KeyError`` for ids in
        neither memory nor journal.
        """
        job = self._campaigns.get(campaign_id)
        if job is not None:
            return job
        if self.store is None:
            raise KeyError(campaign_id)
        loop = asyncio.get_running_loop()
        record = await loop.run_in_executor(None, self.store.job, campaign_id)
        if record is None or record.request is None:
            raise KeyError(campaign_id)
        job = CampaignJob(campaign_id, record.request)
        job.recovered = True
        job.trace_hours = record.trace_hours or (record.request.hours or 0)
        if record.status == "done":
            job.result = await loop.run_in_executor(
                None, self.store.load_result, campaign_id
            )
            job.status = "done"
            self._campaigns[campaign_id] = job
            self._evict_finished_campaigns()
            return job
        if record.status in ("failed", "cancelled"):
            # Ephemeral snapshot: terminal, no columns to retain.
            job.status = record.status
            job.error = record.error
            return job
        if self.store.lease_abandoned(campaign_id):
            # Journaled as queued/running but nobody is driving it (the
            # owner was killed): adopt and resume the unfinished shards.
            return self._adopt_job(job)
        # Another live front-end owns the lease; report its progress.
        job.status = record.status
        return job

    def _adopt_job(self, job: CampaignJob) -> CampaignJob:
        """Resume an interrupted job in this process (store mode only)."""
        with tracing.span("job.recover", campaign_id=job.campaign_id) as span:
            job.trace_ctx = span.context
            job.status = "queued"
            self._campaigns[job.campaign_id] = job
            job.task = asyncio.get_running_loop().create_task(
                self._run_campaign(job)
            )
        try:
            self.store.recover(job.campaign_id)
        except StoreError:
            pass  # the adoption stands; the timeline event is best-effort
        self.store.stats.bump("jobs_recovered")
        return job

    async def recover_campaigns(self) -> List[str]:
        """Re-adopt unfinished journaled jobs at startup.

        Called after the listening socket binds (so ``GET`` works during
        recovery) and before readiness is announced.  Jobs whose lease a
        live process still holds are left alone -- in a ``--procs N``
        fleet only orphaned jobs get a new owner.  Returns the adopted
        ids.
        """
        if self.store is None:
            return []
        loop = asyncio.get_running_loop()
        records = await loop.run_in_executor(None, self.store.jobs)
        adopted: List[str] = []
        for campaign_id, record in sorted(records.items()):
            if record.status not in RESUMABLE_STATUSES:
                continue
            if record.request is None or campaign_id in self._campaigns:
                continue
            if not self.store.lease_abandoned(campaign_id):
                continue
            job = CampaignJob(campaign_id, record.request)
            job.recovered = True
            job.trace_hours = record.trace_hours or (record.request.hours or 0)
            self._adopt_job(job)
            adopted.append(campaign_id)
        return adopted

    def cancel_campaign(self, campaign_id: str) -> CampaignJob:
        """Request cancellation of a queued/running campaign.

        The running executor notices at its next shard boundary (already
        journaled shards are kept -- a later un-cancel... does not exist,
        but the frames would still be valid for debugging).  Raises
        ``KeyError`` for unknown ids, ``RuntimeError`` for jobs already
        in a terminal state.
        """
        job = self._campaigns.get(campaign_id)
        if job is None:
            if self.store is None:
                raise KeyError(campaign_id)
            record = self.store.job(campaign_id)
            if record is None or record.request is None:
                raise KeyError(campaign_id)
            if record.finished:
                raise RuntimeError(
                    f"campaign {campaign_id!r} is {record.status}; only "
                    "queued/running campaigns can be cancelled"
                )
            # Another front-end runs it; the journal is the coordination
            # channel -- its executor polls for the cancel record at every
            # shard boundary.
            self.store.cancel(campaign_id)
            job = CampaignJob(campaign_id, record.request)
            job.status = record.status
            job.cancel_requested = True
            return job
        if job.status in CampaignResponse.TERMINAL_STATUSES:
            raise RuntimeError(
                f"campaign {campaign_id!r} is {job.status}; only "
                "queued/running campaigns can be cancelled"
            )
        job.cancel_requested = True
        if self.store is not None and not self.store.is_cancelled(campaign_id):
            self.store.cancel(campaign_id)
        return job

    def delete_campaign(self, campaign_id: str) -> CampaignJob:
        """Drop one finished campaign and free its retained result.

        Raises ``KeyError`` for unknown ids and ``RuntimeError`` while the
        job is still queued/running (deleting a job out from under its
        worker would leave the executor computing into the void); callers
        poll to a terminal state first.  Subsequent lookups of a deleted
        id raise ``KeyError`` -- the HTTP layer turns that into a 404.
        With a store the deletion is journaled, so the id stays deleted
        across restarts and front-ends.
        """
        job = self._campaigns.get(campaign_id)
        if job is None:
            if self.store is None:
                raise KeyError(campaign_id)
            record = self.store.job(campaign_id)
            if record is None or record.request is None:
                raise KeyError(campaign_id)
            if not record.finished:
                raise RuntimeError(
                    f"campaign {campaign_id!r} is {record.status}; only "
                    "finished campaigns can be deleted"
                )
            self.store.delete(campaign_id)
            deleted = CampaignJob(campaign_id, record.request)
            deleted.status = record.status
            return deleted
        if job.status not in CampaignResponse.TERMINAL_STATUSES:
            raise RuntimeError(
                f"campaign {campaign_id!r} is {job.status}; only finished "
                "campaigns can be deleted"
            )
        del self._campaigns[campaign_id]
        if self.store is not None:
            self.store.delete(campaign_id)
        if job.result is not None:
            job.result.release()  # drop shared-memory mappings with the job
        return job

    def _campaign_counts(self) -> Dict[str, int]:
        """Retained campaign jobs by status."""
        by_status: Dict[str, int] = {}
        for job in self._campaigns.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return by_status

    def observe_request(self, endpoint: str, seconds: float, status: int) -> None:
        """Account one served HTTP request against every surface.

        Feeds the per-endpoint latency histograms, the matching SLO
        objective (if any), and the request counter -- called by the HTTP
        layer once per connection, after the response is written.
        """
        self.endpoint_latency.observe(endpoint, seconds)
        self.slo.observe(endpoint, seconds)
        self._requests_total.inc(endpoint=endpoint, status=str(status))

    def health(self) -> Dict[str, Any]:
        """Payload of ``GET /healthz``: liveness plus deployment facts."""
        shared = {None: "auto", True: "on", False: "off"}[self.shared_memory]
        return {
            "status": "ok",
            "version": __version__,
            "uptime_s": time.monotonic() - self._started_monotonic,
            "pid": os.getpid(),
            "workers": self.pool.workers,
            "campaign_workers": self.pool.campaign_workers,
            "backend": self.registry.default_backend,
            "shared_memory": shared,
            "store": None if self.store is None else self.store.path,
            "engines": len(self.registry),
        }

    def stats(self) -> Dict[str, Any]:
        """Counters for the ``/stats`` endpoint."""
        return {
            "cache": self.cache.stats.to_json_dict(),
            "batcher": self.batcher.stats.to_json_dict(),
            "latency": self.latency.to_json_dict(),
            "endpoints": self.endpoint_latency.to_json_dict(),
            "engines": len(self.registry),
            "pool": self.pool.stats(),
            "campaigns": self._campaign_counts(),
            "slo": self.slo.to_json_dict(),
            "store": None if self.store is None else self.store.to_json_dict(),
            "uptime_s": time.monotonic() - self._started_monotonic,
        }

    # --- cluster scope ----------------------------------------------------------
    def publish_observability(self) -> None:
        """Publish this process's snapshot and drain finished spans.

        One beat of the cluster-scope pipeline (blocking; callers on the
        event loop run it in an executor): the current metric families,
        SLO epochs, and ``/stats`` document go into the store's
        ``snapshots`` table keyed by ``host:pid``, and spans completed
        since the last beat go into its bounded ``spans`` ring.  No-op
        without a store; a store hiccup leaves the span high-water mark
        unchanged so the next beat retries the same records.
        """
        if self.store is None:
            return
        payload = obs_cluster.build_snapshot(
            self.metrics, self.slo, stats=self.stats(), proc=self.proc
        )
        try:
            self.store.publish_snapshot(
                obs_cluster.encode_snapshot(payload), proc=self.proc
            )
            seq, records = tracing.recorder().records_since(self._span_seq)
            if records:
                self.store.persist_spans(records)
            self._span_seq = seq
        except StoreError:
            pass  # observability must never take the service down

    def _live_cluster_snapshots(self) -> List[Dict[str, Any]]:
        """Fresh decoded snapshots, this process's own published first.

        Publishing before reading makes the serving process's own data
        deterministic in every cluster answer (no waiting on the 2 s
        publisher beat) and bounds staleness of the rest at the TTL.
        """
        self.publish_observability()
        payloads: List[Dict[str, Any]] = []
        for _proc, raw, _published_at in self.store.live_snapshots():
            try:
                payloads.append(obs_cluster.decode_snapshot(raw))
            except (ValueError, UnicodeDecodeError):
                continue  # a torn/corrupt snapshot hides one proc, not all
        return payloads

    def cluster_metrics_text(self) -> str:
        """``GET /metrics?scope=cluster``: merged Prometheus exposition."""
        if self.store is None:
            raise ValueError(
                "scope=cluster requires a durable store (repro serve --store)"
            )
        return obs_cluster.render_cluster(self._live_cluster_snapshots())

    def cluster_stats_doc(self) -> Dict[str, Any]:
        """``GET /stats?scope=cluster``: per-proc stats, merged SLOs, jobs.

        Adds the store-derived sections ``repro top`` renders alongside
        the per-process rows: active jobs (with shard progress and lease
        owner) and the most recent lease steals.
        """
        if self.store is None:
            raise ValueError(
                "scope=cluster requires a durable store (repro serve --store)"
            )
        doc = obs_cluster.cluster_stats(self._live_cluster_snapshots())
        jobs: List[Dict[str, Any]] = []
        for campaign_id, record in sorted(self.store.jobs().items()):
            if record.status not in ("queued", "running"):
                continue
            holder = self.store.lease_holder(campaign_id)
            jobs.append({
                "campaign_id": campaign_id,
                "status": record.status,
                "cells_done": len(set(record.done_cells)),
                "cells_total": (
                    record.request.num_cells
                    if record.request is not None else None
                ),
                "owner": None if holder is None else holder[0],
            })
        doc["jobs"] = jobs
        doc["recent_steals"] = self.store.recent_lease_steals()
        return doc

    def trace_lookup(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        """Spans of one trace: local recorder merged with the store ring.

        The store fallback is what makes ``GET /trace/<id>`` answerable
        from a front-end that never handled the request (and after a
        restart).  Spans present in both places dedupe by ``span_id``;
        returns ``None`` when neither side knows the trace.
        """
        spans = list(tracing.recorder().spans(trace_id) or ())
        if self.store is not None:
            try:
                stored = self.store.trace_spans(trace_id)
            except StoreError:
                stored = []
            seen = {record.get("span_id") for record in spans}
            spans.extend(
                record for record in stored
                if record.get("span_id") not in seen
            )
        if not spans:
            return None
        spans.sort(key=lambda record: record.get("start_s", 0.0))
        return spans


#: Default machine-readable error code per status; individual raise sites
#: override (e.g. ``job_running`` for 409s caused by a non-terminal job).
_DEFAULT_ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    413: "payload_too_large",
    500: "internal",
    503: "store_unavailable",
}


class _HttpError(Exception):
    """An error that maps to a specific HTTP status code.

    ``code`` is the stable machine-readable identifier of the ``/v1``
    error envelope (legacy paths only see the message); ``detail``
    carries optional structured context (``None`` stays in the envelope
    so its shape is constant).
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: Optional[str] = None,
        detail: Any = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code or _DEFAULT_ERROR_CODES.get(status, "error")
        self.detail = detail

    def envelope(self) -> Dict[str, Any]:
        """The ``/v1`` error body."""
        return {
            "error": {
                "code": self.code,
                "message": str(self),
                "detail": self.detail,
            }
        }


class _StreamingPayloads:
    """Dispatch result asking for chunked NDJSON instead of one JSON body."""

    def __init__(self, payloads: Iterator[Dict[str, Any]]) -> None:
        self.payloads = payloads


class _StreamingFrames:
    """Dispatch result asking for chunked binary frames (octet-stream)."""

    def __init__(self, frames: Iterable[bytes]) -> None:
        self.frames = frames


class _PlainText:
    """Dispatch result carrying a non-JSON text body (``/metrics``)."""

    def __init__(
        self,
        text: str,
        status: int = 200,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        self.text = text
        self.status = status
        self.content_type = content_type


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _encode_response(
    status: int,
    payload: Dict[str, Any],
    extra_headers: Sequence[str] = (),
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    extras = "".join(f"{header}\r\n" for header in extra_headers)
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extras}"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


def _encode_text_response(
    result: "_PlainText", extra_headers: Sequence[str] = ()
) -> bytes:
    body = result.text.encode("utf-8")
    extras = "".join(f"{header}\r\n" for header in extra_headers)
    head = (
        f"HTTP/1.1 {result.status} "
        f"{_STATUS_TEXT.get(result.status, 'Unknown')}\r\n"
        f"Content-Type: {result.content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extras}"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], Optional[Dict[str, Any]]]:
    """Parse one HTTP request: (method, path, headers, JSON body or None).

    Header names are lower-cased; a repeated header keeps its last value
    (the subset the service reads -- ``content-length``, ``traceparent``
    -- has no list semantics).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        raise _HttpError(400, "malformed HTTP request head")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise _HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    content_length = 0
    if "content-length" in headers:
        try:
            content_length = int(headers["content-length"])
        except ValueError:
            raise _HttpError(400, "invalid Content-Length")
    if content_length < 0:
        raise _HttpError(400, "negative Content-Length")
    if content_length > MAX_BODY_BYTES:
        raise _HttpError(413, "request body too large")
    body: Optional[Dict[str, Any]] = None
    if content_length:
        try:
            raw = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            # A client that promised more bytes than it sent gets a clean
            # 400, not a traceback-bearing 500.
            raise _HttpError(400, "request body shorter than Content-Length")
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"invalid JSON body: {error}")
        if not isinstance(body, dict):
            raise _HttpError(400, "JSON body must be an object")
    return method, path, headers, body


class AllocationServer:
    """Binds an :class:`AllocationService` to a TCP host/port."""

    def __init__(
        self,
        service: Optional[AllocationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
    ) -> None:
        self.service = service if service is not None else AllocationService()
        self.host = host
        self.port = port
        #: ``SO_REUSEPORT``: lets N independent server processes bind the
        #: same port and have the kernel spread connections across them
        #: (see :mod:`repro.service.frontend`).
        self.reuse_port = reuse_port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def bound_port(self) -> int:
        """The actual port after binding (resolves ``port=0`` ephemera)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            reuse_port=self.reuse_port or None,
        )

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @staticmethod
    def _endpoint_label(method: str, path: str) -> str:
        """Route-pattern label for the per-endpoint latency histograms.

        Campaign ids are collapsed to ``*`` and unknown paths to one
        shared bucket, so histogram cardinality is bounded by the route
        table, not by traffic.  The ``/v1`` prefix is collapsed too:
        both spellings hit the same handler, so they share one metric
        series (dashboards and SLOs keyed on ``POST /allocate`` keep
        working; deprecated traffic stays visible via the request log's
        ``Deprecation`` responses).
        """
        path = path.partition("?")[0]
        if path == _API_PREFIX or path.startswith(_API_PREFIX + "/"):
            path = path[len(_API_PREFIX):] or "/"
        match = _CAMPAIGN_PATH.match(path)
        if match:
            suffix = match.group(2) or ""
            return f"{method} /campaign/*{suffix}"
        if _TRACE_PATH.match(path):
            return f"{method} /trace/*"
        if path in ("/healthz", "/stats", "/metrics", "/allocate",
                    "/allocate/batch", "/campaign"):
            return f"{method} {path}"
        return f"{method} (other)"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        label: Optional[str] = None
        trace_ctx: Optional[tracing.SpanContext] = None
        is_v1 = False
        deprecation_headers: Tuple[str, ...] = ()
        started = time.perf_counter()
        try:
            try:
                method, path, headers, body = await _read_request(reader)
                label = self._endpoint_label(method, path)
                bare_path = path.partition("?")[0]
                is_v1 = bare_path == _API_PREFIX or bare_path.startswith(
                    _API_PREFIX + "/"
                )
                if not is_v1 and "(other)" not in label:
                    # Known route reached by its pre-v1 spelling: serve it,
                    # but tell the client where the stable API lives.
                    deprecation_headers = (
                        "Deprecation: true",
                        f'Link: <{_API_PREFIX}{bare_path}>; '
                        'rel="successor-version"',
                    )
                # Every request runs inside an ``http.request`` span: a
                # client-sent traceparent continues that trace, otherwise a
                # fresh one starts here.  Awaiting the dispatch keeps the
                # span's contextvar visible to everything downstream on
                # this task (batcher enqueue, campaign submission).
                parent = tracing.parse_traceparent(headers.get("traceparent"))
                with tracing.span(
                    "http.request", parent=parent, endpoint=label
                ) as http_span:
                    trace_ctx = http_span.context
                    result = await self._dispatch(method, path, headers, body)
            except StoreError as error:
                http_error = _HttpError(503, str(error))
                result = http_error.status, (
                    http_error.envelope() if is_v1
                    else {"error": str(http_error)}
                )
            except _HttpError as error:
                result = error.status, (
                    error.envelope() if is_v1 else {"error": str(error)}
                )
            except Exception as error:  # never kill the accept loop
                message = f"{type(error).__name__}: {error}"
                result = 500, (
                    _HttpError(500, message).envelope() if is_v1
                    else {"error": message}
                )
            extra_headers = (
                (f"traceparent: {trace_ctx.traceparent()}",) if trace_ctx else ()
            ) + deprecation_headers
            if isinstance(result, _StreamingPayloads):
                status = 200
                await self._write_stream(writer, result, extra_headers)
            elif isinstance(result, _StreamingFrames):
                status = 200
                await self._write_frames(writer, result, extra_headers)
            elif isinstance(result, _PlainText):
                status = result.status
                writer.write(_encode_text_response(result, extra_headers))
                await writer.drain()
            else:
                status, payload = result
                writer.write(_encode_response(status, payload, extra_headers))
                await writer.drain()
            if label is not None:
                elapsed = time.perf_counter() - started
                self.service.observe_request(label, elapsed, status)
                _REQUEST_LOGGER.info(
                    "%s %d %.3fms",
                    label,
                    status,
                    elapsed * 1000.0,
                    extra={
                        "endpoint": label,
                        "status": status,
                        "duration_ms": elapsed * 1000.0,
                        "trace_id": trace_ctx.trace_id if trace_ctx else None,
                    },
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    @staticmethod
    async def _write_frames(
        writer: asyncio.StreamWriter,
        stream: "_StreamingFrames",
        extra_headers: Sequence[str] = (),
    ) -> None:
        """Write binary wire frames with chunked transfer encoding.

        One HTTP chunk per frame, drained as produced -- mirrors
        :meth:`_write_stream`, with ``application/octet-stream`` bytes in
        place of NDJSON lines.  Frames may be ``memoryview`` slices of
        shared-memory pages (the zero-copy raw codec): sizes come from
        ``nbytes`` (``len`` of a non-byte view counts elements) and each
        piece is written separately -- concatenating would both copy and
        raise (``bytes + memoryview`` is a ``TypeError``).
        """
        extras = "".join(f"{header}\r\n" for header in extra_headers)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/octet-stream\r\n"
            "Transfer-Encoding: chunked\r\n"
            f"{extras}"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        writer.write(head)
        await writer.drain()
        for frame in stream.frames:
            nbytes = (
                frame.nbytes if isinstance(frame, memoryview) else len(frame)
            )
            if not nbytes:
                continue  # zero-length HTTP chunk would terminate the stream
            writer.write(f"{nbytes:x}\r\n".encode("ascii"))
            writer.write(frame)
            writer.write(b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    async def _write_stream(
        writer: asyncio.StreamWriter,
        stream: "_StreamingPayloads",
        extra_headers: Sequence[str] = (),
    ) -> None:
        """Write NDJSON payloads with chunked transfer encoding.

        One HTTP chunk per JSON line, drained as produced -- a client can
        decode cell by cell while later cells are still being encoded.
        """
        extras = "".join(f"{header}\r\n" for header in extra_headers)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            f"{extras}"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        writer.write(head)
        await writer.drain()
        for payload in stream.payloads:
            line = (json.dumps(payload) + "\n").encode("utf-8")
            writer.write(f"{len(line):x}\r\n".encode("ascii") + line + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    def _scope_of(query: Mapping[str, str]) -> str:
        """Validated ``?scope=`` of /stats and /metrics (default self)."""
        scope = query.get("scope", "self")
        if scope not in ("self", "cluster"):
            raise _HttpError(
                400, f"unknown scope {scope!r}; expected 'self' or 'cluster'"
            )
        return scope

    async def _run_cluster_read(self, fn):
        """Run one blocking cluster read off-loop; map its errors to HTTP."""
        try:
            return await asyncio.get_running_loop().run_in_executor(None, fn)
        except ValueError as error:
            raise _HttpError(400, str(error))
        except StoreError as error:
            raise _HttpError(503, f"store unavailable: {error}")

    async def _dispatch(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: Optional[Dict[str, Any]],
    ):
        path, _, raw_query = path.partition("?")
        query = dict(parse_qsl(raw_query, keep_blank_values=True))
        if path == _API_PREFIX or path.startswith(_API_PREFIX + "/"):
            # The v1 prefix selects the error dialect (see
            # _handle_connection); the route table itself is shared.
            path = path[len(_API_PREFIX):] or "/"
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            return 200, self.service.health()
        if path == "/stats":
            if method != "GET":
                raise _HttpError(405, "stats is GET-only")
            scope = self._scope_of(query)
            if scope == "cluster":
                doc = await self._run_cluster_read(
                    self.service.cluster_stats_doc
                )
                return 200, doc
            return 200, self.service.stats()
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "metrics is GET-only")
            scope = self._scope_of(query)
            if scope == "cluster":
                text = await self._run_cluster_read(
                    self.service.cluster_metrics_text
                )
                return _PlainText(text)
            return _PlainText(self.service.metrics.render())
        trace_match = _TRACE_PATH.match(path)
        if trace_match:
            if method != "GET":
                raise _HttpError(405, "trace lookup is GET-only")
            trace_id = trace_match.group(1)
            # The service merges the local recorder with the store's span
            # ring, so any front-end resolves traces handled by another
            # process (and traces that predate a restart).
            spans = await asyncio.get_running_loop().run_in_executor(
                None, self.service.trace_lookup, trace_id
            )
            if spans is None:
                raise _HttpError(404, f"unknown trace {trace_id!r}")
            return 200, {"trace_id": trace_id, "spans": spans}
        if path == "/allocate":
            if method != "POST":
                raise _HttpError(405, "allocate is POST-only")
            if body is None:
                raise _HttpError(400, "allocate needs a JSON body")
            request = self._decode_request(body)
            response = await self.service.allocate(request)
            return 200, response.to_json_dict()
        if path == "/allocate/batch":
            if method != "POST":
                raise _HttpError(405, "allocate/batch is POST-only")
            if body is None or not isinstance(body.get("requests"), list):
                raise _HttpError(
                    400, "allocate/batch needs {'requests': [...]} in the body"
                )
            requests = [self._decode_request(entry) for entry in body["requests"]]
            responses = await self.service.allocate_many(requests)
            return 200, {
                "responses": [response.to_json_dict() for response in responses]
            }
        if path == "/campaign":
            if method != "POST":
                raise _HttpError(405, "campaign submission is POST-only")
            if body is None:
                raise _HttpError(400, "campaign needs a JSON body")
            try:
                request = CampaignRequest.from_json_dict(body)
            except (ValueError, KeyError, TypeError) as error:
                raise _HttpError(400, f"invalid campaign request: {error}")
            response = await self.service.submit_campaign(
                request, idempotency_key=headers.get("idempotency-key")
            )
            return 200, response.to_json_dict()
        match = _CAMPAIGN_PATH.match(path)
        if match:
            campaign_id, suffix = match.group(1), match.group(2) or ""
            wants_columns = suffix == "/columns"
            if suffix == "/events":
                if method != "GET":
                    raise _HttpError(405, "campaign events are GET-only")
                store = self.service.store
                if store is None:
                    raise _HttpError(
                        400,
                        "campaign events need a durable store "
                        "(repro serve --store)",
                    )
                events = await asyncio.get_running_loop().run_in_executor(
                    None, store.events, campaign_id
                )
                if not events:
                    raise _HttpError(404, f"unknown campaign {campaign_id!r}")
                return 200, {"campaign_id": campaign_id, "events": events}
            if suffix == "/cancel":
                if method != "POST":
                    raise _HttpError(405, "campaign cancel is POST-only")
                try:
                    job = self.service.cancel_campaign(campaign_id)
                except KeyError:
                    raise _HttpError(404, f"unknown campaign {campaign_id!r}")
                except RuntimeError as error:
                    raise _HttpError(
                        409, str(error), code="conflict",
                        detail={"campaign_id": campaign_id},
                    )
                return 200, job.status_response().to_json_dict()
            if method == "DELETE" and not wants_columns:
                try:
                    self.service.delete_campaign(campaign_id)
                except KeyError:
                    raise _HttpError(404, f"unknown campaign {campaign_id!r}")
                except RuntimeError as error:
                    raise _HttpError(
                        409, str(error), code="job_running",
                        detail={"campaign_id": campaign_id},
                    )
                return 200, {"campaign_id": campaign_id, "deleted": True}
            if method != "GET":
                raise _HttpError(405, "campaign polling is GET-only")
            try:
                job = await self.service.campaign_lookup(campaign_id)
            except KeyError:
                raise _HttpError(404, f"unknown campaign {campaign_id!r}")
            if not wants_columns:
                return 200, job.status_response().to_json_dict()
            if job.status != "done":
                raise _HttpError(
                    409,
                    f"campaign {campaign_id!r} is {job.status}; columns "
                    "stream only once done",
                    code="job_running",
                    detail={
                        "campaign_id": campaign_id, "status": job.status,
                    },
                )
            result = job.result
            assert result is not None
            columns_format = query.get("format", "ndjson")
            if columns_format == "ndjson":
                return _StreamingPayloads(
                    itertools.chain(
                        [result.meta_payload()], result.cell_payloads()
                    )
                )
            if columns_format == "binary":
                dtype_name = query.get("dtype", "f8")
                dtype = {"f8": "<f8", "f4": "<f4"}.get(dtype_name)
                if dtype is None:
                    raise _HttpError(
                        400,
                        f"unknown columns dtype {dtype_name!r}; "
                        "expected 'f8' or 'f4'",
                    )
                codec = query.get("codec", "zlib")
                if codec not in ("zlib", "raw"):
                    raise _HttpError(
                        400,
                        f"unknown columns codec {codec!r}; "
                        "expected 'zlib' or 'raw'",
                    )
                return _StreamingFrames(
                    result.to_binary_frames(dtype, compress=codec == "zlib")
                )
            raise _HttpError(
                400,
                f"unknown columns format {columns_format!r}; "
                "expected 'ndjson' or 'binary'",
            )
        raise _HttpError(404, f"unknown path {path!r}")

    @staticmethod
    def _decode_request(payload: Dict[str, Any]) -> AllocationRequest:
        try:
            return AllocationRequest.from_json_dict(payload)
        except (ValueError, KeyError, TypeError) as error:
            raise _HttpError(400, f"invalid allocation request: {error}")


async def _publish_observability_loop(service: AllocationService) -> None:
    """Periodic snapshot/span publication behind the cluster scope.

    Runs for the lifetime of the server (cancelled on shutdown).  Each
    beat is blocking SQLite work, so it runs in an executor; any failure
    is swallowed -- the next beat retries, and a front-end that cannot
    publish merely goes stale in cluster scrapes until it recovers.
    """
    loop = asyncio.get_running_loop()
    while True:
        try:
            await loop.run_in_executor(None, service.publish_observability)
        except asyncio.CancelledError:
            raise
        except Exception:
            _REQUEST_LOGGER.debug(
                "observability publish beat failed", exc_info=True
            )
        await asyncio.sleep(obs_cluster.PUBLISH_INTERVAL_S)


def _start_publisher(service: AllocationService) -> Optional["asyncio.Task"]:
    """The publisher task for a store-backed service (else ``None``)."""
    if service.store is None:
        return None
    return asyncio.get_running_loop().create_task(
        _publish_observability_loop(service)
    )


async def serve(
    service: Optional[AllocationService] = None,
    host: str = "127.0.0.1",
    port: int = 8734,
    port_file: Optional[str] = None,
    ready: Optional["asyncio.Event"] = None,
    announce: bool = True,
    reuse_port: bool = False,
) -> None:
    """Run the server until cancelled.

    ``port=0`` binds an ephemeral port; ``port_file`` (written after the
    bind) lets shell callers discover it -- the CI smoke test starts the
    server with ``--port 0 --port-file`` and reads the file.  ``ready`` is
    an optional event set once the socket is listening (for in-process
    supervisors like :func:`start_in_thread`).  ``reuse_port`` opts into
    ``SO_REUSEPORT`` for multi-process front-ends.

    When the service carries a durable store, unfinished journaled jobs
    are re-adopted right after the bind -- before readiness is announced,
    so "the port answers" implies "recovery has been kicked off".
    """
    server = AllocationServer(service, host=host, port=port, reuse_port=reuse_port)
    await server.start()
    bound = server.bound_port
    adopted = await server.service.recover_campaigns()
    if adopted and announce:
        print(
            f"recovered {len(adopted)} campaign(s) from the store: "
            f"{', '.join(adopted)}",
            flush=True,
        )
    if port_file:
        with open(port_file, "w", encoding="ascii") as handle:
            handle.write(f"{bound}\n")
    if announce:
        print(f"allocation service listening on http://{host}:{bound}", flush=True)
    if ready is not None:
        ready.set()
    publisher = _start_publisher(server.service)
    try:
        await asyncio.Event().wait()  # park until cancelled
    finally:
        if publisher is not None:
            publisher.cancel()
        await server.stop()


def run_server(
    service: Optional[AllocationService] = None,
    host: str = "127.0.0.1",
    port: int = 8734,
    port_file: Optional[str] = None,
    reuse_port: bool = False,
) -> int:
    """Blocking entry point used by ``python -m repro serve``."""
    try:
        asyncio.run(
            serve(
                service=service,
                host=host,
                port=port,
                port_file=port_file,
                reuse_port=reuse_port,
            )
        )
    except KeyboardInterrupt:
        print("allocation service stopped", flush=True)
    finally:
        if service is not None:
            service.close()
    return 0


class ServerHandle:
    """A running background server: address plus a ``stop()`` switch."""

    def __init__(
        self,
        host: str,
        port: int,
        service: AllocationService,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        task: "asyncio.Task",
    ) -> None:
        self.host = host
        self.port = port
        self.service = service
        self._thread = thread
        self._loop = loop
        self._task = task

    @property
    def base_url(self) -> str:
        """Root URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout_s: float = 5.0) -> None:
        """Cancel the server task and join its thread."""
        self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(timeout=timeout_s)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def start_in_thread(
    service: Optional[AllocationService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    timeout_s: float = 10.0,
) -> ServerHandle:
    """Start a server on a daemon thread and wait until it is listening.

    This is the test/demo harness: callers get a :class:`ServerHandle` with
    the bound ephemeral port and a ``stop()`` method (also usable as a
    context manager).
    """
    service = service if service is not None else AllocationService()
    started = threading.Event()
    holder: Dict[str, Any] = {}

    def _runner() -> None:
        async def _main() -> None:
            ready: "asyncio.Event" = asyncio.Event()
            server = AllocationServer(service, host=host, port=port)
            await server.start()
            await service.recover_campaigns()
            holder["port"] = server.bound_port
            holder["loop"] = asyncio.get_running_loop()
            holder["task"] = asyncio.current_task()
            started.set()
            publisher = _start_publisher(service)
            try:
                await ready.wait()  # parked until the task is cancelled
            except asyncio.CancelledError:
                pass
            finally:
                if publisher is not None:
                    publisher.cancel()
                await server.stop()

        asyncio.run(_main())

    thread = threading.Thread(target=_runner, name="allocation-server", daemon=True)
    thread.start()
    if not started.wait(timeout=timeout_s):
        raise RuntimeError("allocation server failed to start in time")
    return ServerHandle(
        host=host,
        port=holder["port"],
        service=service,
        thread=thread,
        loop=holder["loop"],
        task=holder["task"],
    )


__all__ = [
    "AllocationServer",
    "AllocationService",
    "CampaignJob",
    "ServerHandle",
    "run_server",
    "serve",
    "start_in_thread",
]
