"""Worker pool: fan batched solves and campaign cells across N workers.

One allocation service process has two kinds of heavy work:

* **Engine dispatch groups.**  The micro-batcher coalesces concurrent
  requests into per-engine groups, each solved by one vectorized NumPy
  pass.  Those passes release the GIL for their array work, so a
  :class:`~concurrent.futures.ThreadPoolExecutor` of *engine workers* can
  run several groups -- or slices of one large group -- in parallel while
  the asyncio event loop keeps accepting connections.

* **Campaign cells.**  A fleet study submitted over HTTP is a grid of
  (scenario x policy) campaign cells.  Cells are whole simulations (LP
  solves plus Python accounting), so they scale across a
  :class:`~concurrent.futures.ProcessPoolExecutor` instead, reusing the
  sharded runner of :mod:`repro.service.shard`.

:class:`WorkerPool` owns both executors (the process pool is created
lazily, on the first campaign) plus per-worker counters that the server
merges into its ``/stats`` payload.  ``workers=1`` keeps every solve
inline on the calling thread -- that is the single-worker baseline the
pooled benchmark in ``benchmarks/bench_service.py`` must beat.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import tracing
from repro.service.batcher import EngineRegistry, group_requests, solve_group
from repro.service.requests import AllocationRequest, AllocationResponse

#: Smallest per-worker slice of one dispatch group.  Splitting below this
#: size trades more executor overhead than the parallel solve wins back.
MIN_SLICE = 16


class WorkerStats:
    """Counters of one engine worker (identified by its thread name)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.tasks = 0
        self.requests = 0
        self.busy_s = 0.0

    def record(self, num_requests: int, busy_s: float) -> None:
        """Account one completed solve task."""
        self.tasks += 1
        self.requests += num_requests
        self.busy_s += busy_s

    def to_json_dict(self) -> Dict[str, Any]:
        """Encode for the ``/stats`` endpoint."""
        return {
            "tasks": self.tasks,
            "requests": self.requests,
            "busy_ms": self.busy_s * 1000.0,
        }


class WorkerPool:
    """N engine workers for solve groups, process workers for campaigns.

    Parameters
    ----------
    workers:
        Engine (thread) workers.  ``1`` keeps solves inline on the calling
        thread; ``N > 1`` fans dispatch groups -- and slices of large
        groups -- across a thread pool.
    registry:
        Shared :class:`EngineRegistry`; one is created when omitted.
        Engines are built lazily under the registry's lock, so all workers
        share one engine per key.
    campaign_workers:
        Process workers for campaign grids (defaults to ``workers``).  The
        :class:`ProcessPoolExecutor` is created on the first campaign and
        reused across campaigns until :meth:`shutdown`.
    min_slice:
        Smallest per-worker slice when splitting one dispatch group.
    """

    def __init__(
        self,
        workers: int = 1,
        registry: Optional[EngineRegistry] = None,
        campaign_workers: Optional[int] = None,
        min_slice: int = MIN_SLICE,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if campaign_workers is not None and campaign_workers < 1:
            raise ValueError(
                f"campaign_workers must be at least 1, got {campaign_workers}"
            )
        if min_slice < 1:
            raise ValueError(f"min_slice must be at least 1, got {min_slice}")
        self.workers = int(workers)
        self.registry = registry if registry is not None else EngineRegistry()
        self.campaign_workers = int(
            campaign_workers if campaign_workers is not None else workers
        )
        self.min_slice = int(min_slice)
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="engine-worker"
            )
            if self.workers > 1
            else None
        )
        self._campaign_executor: Optional[ProcessPoolExecutor] = None
        self._campaign_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._worker_stats: Dict[str, WorkerStats] = {}
        self._campaigns = 0
        self._closed = False

    # --- lifecycle --------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`shutdown` has been called."""
        return self._closed

    def shutdown(self, wait: bool = True, cancel_pending: bool = True) -> None:
        """Stop both executors; idempotent.

        ``cancel_pending`` cancels queued-but-unstarted solve tasks (their
        futures report cancelled); running tasks always finish.  With
        ``wait`` the call returns only after every worker thread/process
        has joined.
        """
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)
        with self._campaign_lock:
            if self._campaign_executor is not None:
                self._campaign_executor.shutdown(
                    wait=wait, cancel_futures=cancel_pending
                )
                self._campaign_executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("worker pool is shut down")

    # --- engine-worker side -----------------------------------------------------
    def _slices(self, indices: List[int]) -> List[List[int]]:
        """Split one group's indices into at most ``workers`` even slices.

        Slices never go below ``min_slice`` requests (except the natural
        remainder), so small groups stay whole and large groups fan out.
        """
        if self.workers == 1 or len(indices) < 2 * self.min_slice:
            return [indices]
        num_slices = min(self.workers, len(indices) // self.min_slice)
        base, extra = divmod(len(indices), num_slices)
        slices: List[List[int]] = []
        start = 0
        for slice_index in range(num_slices):
            size = base + (1 if slice_index < extra else 0)
            slices.append(indices[start : start + size])
            start += size
        return slices

    def _plan(
        self, requests: Sequence[AllocationRequest]
    ) -> List[tuple]:
        """(indices, sub-requests, group size) per executor task."""
        tasks = []
        for indices in group_requests(requests, self.registry).values():
            for chunk in self._slices(indices):
                tasks.append(
                    (chunk, [requests[i] for i in chunk], len(indices))
                )
        return tasks

    def _solve_task(
        self,
        requests: List[AllocationRequest],
        group_size: int,
        parent: Optional[tracing.SpanContext] = None,
    ) -> List[AllocationResponse]:
        """Worker body: one vectorized solve over one group slice.

        ``parent`` is the caller's span context, passed explicitly because
        contextvars don't follow work into executor threads; when set, the
        slice emits a ``pool.slice`` span under it.
        """
        wall_start = time.time()
        started = time.perf_counter()
        engine = self.registry.engine_for(requests[0])
        responses = solve_group(engine, requests, batch_size=group_size)
        elapsed = time.perf_counter() - started
        name = threading.current_thread().name
        with self._stats_lock:
            stats = self._worker_stats.get(name)
            if stats is None:
                stats = self._worker_stats[name] = WorkerStats(name)
            stats.record(len(requests), elapsed)
        if parent is not None:
            tracing.record_span(
                "pool.slice",
                parent,
                wall_start,
                elapsed,
                worker=name,
                requests=len(requests),
                group_size=group_size,
            )
        return responses

    @staticmethod
    def _scatter(
        plan: List[tuple],
        shares: Sequence[List[AllocationResponse]],
        num_requests: int,
    ) -> List[AllocationResponse]:
        """Reassemble per-slice shares into input order."""
        responses: List[Optional[AllocationResponse]] = [None] * num_requests
        for (indices, _, _), share in zip(plan, shares):
            for index, response in zip(indices, share):
                responses[index] = response
        # The plan's slices partition every index; a hole would misalign
        # responses with requests for callers that zip by position.
        assert all(response is not None for response in responses)
        return responses  # type: ignore[return-value]

    def solve_batch(
        self, requests: Sequence[AllocationRequest]
    ) -> List[AllocationResponse]:
        """Solve a bag of requests, fanned across the engine workers.

        Blocking variant (benchmarks, scripts).  Responses come back in
        input order and report the *logical* group size as ``batch_size``
        even when a group was sliced across several workers.
        """
        self._check_open()
        requests = list(requests)
        if not requests:
            return []
        plan = self._plan(requests)
        parent = tracing.current_context()
        if self._executor is None:
            shares = [
                self._solve_task(chunk, size, parent)
                for _, chunk, size in plan
            ]
        else:
            futures = [
                self._executor.submit(self._solve_task, chunk, size, parent)
                for _, chunk, size in plan
            ]
            shares = [future.result() for future in futures]
        return self._scatter(plan, shares, len(requests))

    async def solve_batch_async(
        self, requests: Sequence[AllocationRequest]
    ) -> List[AllocationResponse]:
        """Async variant of :meth:`solve_batch` for the micro-batcher.

        With one worker the solve runs inline on the event loop (identical
        to the pre-pool service); with more, every slice becomes a
        ``run_in_executor`` task so the loop stays responsive while the
        workers crunch.
        """
        self._check_open()
        requests = list(requests)
        if not requests:
            return []
        if self._executor is None:
            return self.solve_batch(requests)
        loop = asyncio.get_running_loop()
        plan = self._plan(requests)
        parent = tracing.current_context()
        shares = await asyncio.gather(
            *(
                loop.run_in_executor(
                    self._executor, self._solve_task, chunk, size, parent
                )
                for _, chunk, size in plan
            )
        )
        return self._scatter(plan, shares, len(requests))

    # --- campaign side ----------------------------------------------------------
    def _ensure_campaign_executor(self) -> Optional[ProcessPoolExecutor]:
        if self.campaign_workers == 1:
            return None
        with self._campaign_lock:
            # Re-checked under the lock: a concurrent shutdown() may have
            # closed the pool after our caller's _check_open -- recreating
            # the executor here would leak worker processes nobody stops.
            self._check_open()
            if self._campaign_executor is None:
                # The initializer replays the parent's logging config in
                # spawn-started workers (the default inside a spawn-context
                # front-end child), so shard span lines reach the shared
                # log stream no matter the worker start method.
                self._campaign_executor = ProcessPoolExecutor(
                    max_workers=self.campaign_workers,
                    initializer=tracing.init_worker_logging,
                    initargs=(tracing.active_log_format(),),
                )
            return self._campaign_executor

    def run_campaign(
        self,
        scenarios,
        policies,
        trace,
        config=None,
        scenario_labels=None,
        shared_memory=None,
        completed=None,
        on_shard_done=None,
        shards=None,
    ):
        """Run a fleet campaign grid on the pool's process workers.

        Delegates to :func:`repro.service.shard.run_sharded_campaign` with
        this pool's persistent executor (``campaign_workers=1`` runs the
        plain in-process fleet engine); results are identical to the
        single-process run to floating-point round-off.  ``shared_memory``
        selects the worker transport (``None`` auto-detects the
        shared-memory arena; see the shard runner).  The persistent pool's
        workers keep their engine and campaign-context caches warm across
        campaigns.

        ``completed``/``on_shard_done`` are the durable-store hooks (skip
        journaled cells, journal each shard as it lands -- see the shard
        runner); ``shards`` overrides the chunk count so durable campaigns
        can journal at a finer grain than one chunk per worker while the
        executor stays sized at ``campaign_workers``.
        """
        self._check_open()
        # Imported here: the campaign stack (simulation + shard) is only
        # pulled in by services that actually run campaigns.
        from repro.service.shard import run_sharded_campaign

        result = run_sharded_campaign(
            scenarios,
            policies,
            trace,
            config,
            scenario_labels=scenario_labels,
            jobs=shards if shards is not None else self.campaign_workers,
            executor=self._ensure_campaign_executor(),
            shared_memory=shared_memory,
            completed=completed,
            on_shard_done=on_shard_done,
        )
        with self._stats_lock:
            self._campaigns += 1
        return result

    # --- stats ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Pool counters for the ``/stats`` endpoint (per-worker merge)."""
        with self._stats_lock:
            per_worker = {
                name: stats.to_json_dict()
                for name, stats in sorted(self._worker_stats.items())
            }
            campaigns = self._campaigns
        return {
            "workers": self.workers,
            "campaign_workers": self.campaign_workers,
            "tasks": sum(entry["tasks"] for entry in per_worker.values()),
            "requests": sum(entry["requests"] for entry in per_worker.values()),
            "busy_ms": sum(entry["busy_ms"] for entry in per_worker.values()),
            "campaigns": campaigns,
            "per_worker": per_worker,
        }


__all__ = ["MIN_SLICE", "WorkerPool", "WorkerStats"]
