"""Multi-process front-end for the allocation service.

One server process is a single asyncio event loop: plenty for the
micro-batched ``/allocate`` path, but every front-end duty -- JSON
encode/decode, chunked streaming, journal replay -- shares that loop.
:func:`run_frontend` runs **N independent server processes accepting on
one port** via ``SO_REUSEPORT`` (the kernel load-balances accepted
connections across the listening sockets), each with its own
:class:`~repro.service.server.AllocationService`, worker pool and store
connection::

    python -m repro serve --procs 4 --store /var/lib/repro/jobs.db

The processes never talk to each other.  They coordinate solely through
the shared :class:`~repro.service.store.CampaignStore`:

- ``POST /v1/campaign`` journals the submission before acking, so *any*
  front-end can answer ``GET /v1/campaign/<id>`` for *any* job -- a
  status hit on a sibling's job is a store read, not a proxy hop.
- Advisory job leases (owner = ``host:pid:token``) ensure exactly one
  front-end executes a given job's shards; the rest observe its progress
  through the journal.
- On restart, each front-end re-adopts unfinished journaled jobs whose
  lease is abandoned -- whichever process wins the lease re-runs only
  the shards the journal is missing.

``--procs`` above 1 therefore *requires* ``--store``: without a journal
the processes would be N unrelated services behind one port.

The parent process is a plain supervisor: it resolves the port (an
ephemeral ``--port 0`` is bound once, so all children agree), spawns the
children through the ``spawn`` context (no inherited event loops or
locks), forwards SIGTERM/SIGINT, and exits non-zero if any child dies
unexpectedly.
"""

from __future__ import annotations

import signal
import socket
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FrontendConfig", "build_service", "run_frontend"]


@dataclass(frozen=True)
class FrontendConfig:
    """Picklable bundle of every ``repro serve`` knob.

    The multi-process path ships this to ``spawn``-context children, so
    it must stay plain data: strings, numbers, ``None`` -- no sockets,
    services or parsed objects.  ``slo_ms`` is the parsed spec (a plain
    dict survives pickling fine); ``shared_memory`` is the
    ``Optional[bool]`` transport switch.
    """

    host: str = "127.0.0.1"
    port: int = 8734
    port_file: Optional[str] = None
    procs: int = 1
    store: Optional[str] = None
    store_sync: str = "normal"
    cache_size: int = 4096
    window_ms: float = 2.0
    max_batch: int = 1024
    workers: int = 1
    campaign_workers: Optional[int] = None
    backend: str = "numpy"
    shared_memory: Optional[bool] = None
    log_format: str = "text"
    slo_ms: Optional[Dict[str, float]] = field(default=None)


def build_service(config: FrontendConfig) -> Any:
    """Construct one front-end's :class:`AllocationService` from the config.

    Each process builds its own service -- and with ``--store``, its own
    :class:`~repro.service.store.CampaignStore` connection to the shared
    journal (SQLite connections must not cross process boundaries).
    """
    # Imported here so ``python -m repro fleet`` never pays for the
    # service stack, and so spawn-context children import it fresh.
    from repro.service.server import AllocationService
    from repro.service.store import CampaignStore

    store = None
    if config.store:
        store = CampaignStore(config.store, sync=config.store_sync)
    return AllocationService(
        cache_size=config.cache_size,
        window_s=config.window_ms / 1000.0,
        max_batch=config.max_batch,
        workers=config.workers,
        campaign_workers=config.campaign_workers,
        default_backend=config.backend,
        shared_memory=config.shared_memory,
        slo_ms=config.slo_ms,
        store=store,
    )


def _child_main(config: FrontendConfig, port: int, index: int) -> None:
    """Entry point of one front-end process (spawn context).

    Every child binds the same ``port`` with ``SO_REUSEPORT``.  Child 0
    is the spokesperson: it announces the address and writes
    ``--port-file``; its siblings serve silently.
    """
    import asyncio

    from repro.obs.tracing import configure_logging
    from repro.service.server import serve

    configure_logging(config.log_format)
    # The parent owns process-group signal handling; children exit on the
    # default SIGTERM and turn SIGINT into a clean KeyboardInterrupt stop.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    service = build_service(config)
    try:
        asyncio.run(
            serve(
                service=service,
                host=config.host,
                port=port,
                port_file=config.port_file if index == 0 else None,
                announce=index == 0,
                reuse_port=True,
            )
        )
    except KeyboardInterrupt:
        pass
    finally:
        service.close()


def _resolve_port(config: FrontendConfig) -> int:
    """Pin down the port every child will bind.

    ``--port 0`` asks the kernel for an ephemeral port -- but N children
    must agree on *one* number, so the parent binds a throwaway
    ``SO_REUSEPORT`` socket first and hands the chosen port to the
    children.  (The probe closes before the children bind; the reuse
    flag keeps the number immediately rebindable.)
    """
    if config.port != 0:
        return config.port
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        probe.bind((config.host, 0))
        return int(probe.getsockname()[1])
    finally:
        probe.close()


def run_frontend(config: FrontendConfig) -> int:
    """Run ``--procs`` front-end processes on one port; block until exit.

    ``procs == 1`` degenerates to the classic single-process server (no
    ``SO_REUSEPORT``, no supervisor).  Above 1, the store is mandatory
    and the parent supervises: SIGTERM/SIGINT fan out to the children,
    and a child dying on its own tears the fleet down with exit code 1.
    """
    if config.procs <= 1:
        from repro.obs.tracing import configure_logging
        from repro.service.server import run_server

        configure_logging(config.log_format)
        service = build_service(config)
        return run_server(
            service,
            host=config.host,
            port=config.port,
            port_file=config.port_file,
        )

    if not config.store:
        print(
            "--procs above 1 requires --store: independent front-ends "
            "coordinate only through the shared campaign journal",
            file=sys.stderr,
        )
        return 2
    if not hasattr(socket, "SO_REUSEPORT"):
        print(
            "--procs above 1 requires SO_REUSEPORT, which this platform "
            "does not provide",
            file=sys.stderr,
        )
        return 2

    import multiprocessing

    port = _resolve_port(config)
    context = multiprocessing.get_context("spawn")
    children: List[Any] = [
        context.Process(
            target=_child_main,
            args=(config, port, index),
            name=f"repro-frontend-{index}",
            daemon=False,
        )
        for index in range(config.procs)
    ]
    for child in children:
        child.start()

    stopping = False

    def _forward(signum: int, _frame: Any) -> None:
        nonlocal stopping
        stopping = True
        for child in children:
            if child.is_alive():
                child.terminate()

    previous: List[Tuple[int, Any]] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous.append((signum, signal.signal(signum, _forward)))
    try:
        # Supervise: leave as soon as any child exits.  A requested stop
        # drains them all; an unrequested death takes the fleet down.
        while True:
            alive = [child for child in children if child.is_alive()]
            if stopping or len(alive) < len(children):
                break
            time.sleep(0.1)
        if not stopping and any(
            child.exitcode not in (0, None) or not child.is_alive()
            for child in children
        ):
            for child in children:
                if child.is_alive():
                    child.terminate()
        for child in children:
            child.join(timeout=10.0)
        for child in children:
            if child.is_alive():  # pragma: no cover - last-resort cleanup
                child.kill()
                child.join(timeout=5.0)
    finally:
        for signum, handler in previous:
            signal.signal(signum, handler)

    if stopping:
        print("allocation service stopped", flush=True)
        return 0
    failed = [
        child.name for child in children if child.exitcode not in (0, -15)
    ]
    if failed:
        print(
            f"front-end process(es) exited unexpectedly: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0
