"""Micro-batching coalescer: many concurrent requests, one batched solve.

The batch engine of :mod:`repro.core.batch` is dramatically faster *per
problem* when it solves many problems at once, but service traffic arrives
one request at a time.  This module closes that gap in two layers:

* :func:`solve_batch` is the synchronous core: it takes any bag of resolved
  :class:`~repro.service.requests.AllocationRequest` objects, groups them by
  engine key (design-point set, period, off power), and dispatches each
  group as **one** vectorized solve -- ``solve_arrays`` over the budget
  vector when the group shares a single alpha, ``solve_grid`` over
  (budgets x distinct alphas) otherwise -- then scatters the per-request
  responses back in input order.

* :class:`MicroBatcher` is the asyncio front: concurrent ``solve`` calls
  within a configurable time window (or up to a maximum batch size) are
  parked on futures and flushed together through :func:`solve_batch`, so a
  burst of 256 independent HTTP requests costs a couple of NumPy passes
  instead of 256 scalar LP solves.

Engines are built once per distinct engine key and reused across batches
via :class:`EngineRegistry`, mirroring how policies share their lazily
built :class:`~repro.core.batch.BatchAllocator`.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core import kernels
from repro.obs import tracing
from repro.core.batch import BatchAllocator
from repro.core.design_point import DesignPoint, canonical_design_key
from repro.data.table2 import table2_design_points
from repro.service.requests import AllocationRequest, AllocationResponse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.pool import WorkerPool


class EngineRegistry:
    """Builds and reuses one :class:`BatchAllocator` per engine key.

    The registry also owns the service's *default* design-point set, used to
    resolve requests that leave ``design_points`` unset (the common case:
    devices ask about budgets, not about alternative hardware).  Engine
    construction is guarded by a lock so worker-pool threads can share one
    registry.
    """

    def __init__(
        self,
        default_points: Optional[Sequence[DesignPoint]] = None,
        default_backend: str = "numpy",
    ) -> None:
        self.default_points: Tuple[DesignPoint, ...] = tuple(
            default_points if default_points is not None else table2_design_points()
        )
        self.default_backend = kernels.validate_backend(default_backend)
        # Precomputed once: requests that leave design_points unset (the hot
        # path of a production workload) get their keys without materialising
        # a resolved request copy per call.
        self._default_dp_key = canonical_design_key(self.default_points)
        self._engines: Dict[tuple, BatchAllocator] = {}
        self._build_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._engines)

    def resolve(self, request: AllocationRequest) -> AllocationRequest:
        """Fill a request's unset design points with the registry default."""
        return request.resolve(self.default_points)

    def backend_of(self, request: AllocationRequest) -> str:
        """The backend serving ``request`` (its own, or the registry default)."""
        if request.backend is not None:
            return request.backend
        return self.default_backend

    def engine_key_of(self, request: AllocationRequest) -> tuple:
        """``request.engine_key`` with defaults (points, backend) resolved lazily.

        Mirrors :meth:`BatchAllocator.engine_key`: the reference backend
        keeps the historical three-element key; accelerated backends append
        theirs, so cached results never cross backends.
        """
        if request.design_points is None:
            key: tuple = (
                self._default_dp_key,
                float(request.period_s),
                float(request.off_power_w),
            )
        else:
            key = (
                canonical_design_key(request.design_points),
                float(request.period_s),
                float(request.off_power_w),
            )
        backend = self.backend_of(request)
        if backend != "numpy":
            key = key + (backend,)
        return key

    def cache_key_of(self, request: AllocationRequest) -> tuple:
        """``request.cache_key`` with the default set resolved lazily."""
        return self.engine_key_of(request) + (
            float(request.energy_budget_j),
            float(request.alpha),
        )

    def engine_for(self, request: AllocationRequest) -> BatchAllocator:
        """The shared engine serving ``request`` (built on first use)."""
        key = self.engine_key_of(request)
        engine = self._engines.get(key)
        if engine is None:
            with self._build_lock:
                engine = self._engines.get(key)
                if engine is None:
                    backend = self.backend_of(request)
                    request = self.resolve(request)
                    engine = BatchAllocator(
                        request.design_points,
                        period_s=request.period_s,
                        off_power_w=request.off_power_w,
                        backend=backend,
                    )
                    self._engines[key] = engine
        return engine


def group_requests(
    requests: Sequence[AllocationRequest], registry: EngineRegistry
) -> Dict[tuple, List[int]]:
    """Partition request indices by engine key (insertion-ordered)."""
    groups: Dict[tuple, List[int]] = {}
    for index, request in enumerate(requests):
        groups.setdefault(registry.engine_key_of(request), []).append(index)
    return groups


def solve_group(
    engine: BatchAllocator,
    requests: Sequence[AllocationRequest],
    batch_size: Optional[int] = None,
) -> List[AllocationResponse]:
    """Solve requests that all share ``engine`` as one vectorized dispatch.

    ``solve_arrays`` over the budget vector when the group shares a single
    alpha, ``solve_grid`` over (budgets x distinct alphas) otherwise.
    ``batch_size`` is what the responses report as their coalesced group
    size; worker pools slicing one logical group across workers pass the
    full group size so clients still observe the coalescing.
    """
    if batch_size is None:
        batch_size = len(requests)
    names = [dp.name for dp in engine.design_points]
    budgets = np.array([request.energy_budget_j for request in requests])
    alphas = [request.alpha for request in requests]
    distinct_alphas = sorted(set(alphas))
    if len(distinct_alphas) == 1:
        arrays = engine.solve_arrays(budgets, alpha=distinct_alphas[0])
        return [
            AllocationResponse.from_arrays(
                arrays, row, batch_size=batch_size, names=names
            )
            for row in range(len(requests))
        ]
    # Mixed alphas still dispatch as one call: solve the full
    # (alpha x budget) grid and gather each request's cell.
    grid = engine.solve_grid(budgets, alphas=distinct_alphas)
    alpha_row = {alpha: row for row, alpha in enumerate(distinct_alphas)}
    return [
        AllocationResponse.from_grid(
            grid, alpha_row[alphas[row]], row, batch_size=batch_size
        )
        for row in range(len(requests))
    ]


def solve_batch(
    requests: Sequence[AllocationRequest],
    registry: Optional[EngineRegistry] = None,
) -> List[AllocationResponse]:
    """Solve a bag of requests with one vectorized dispatch per engine group.

    Responses come back in input order; each carries ``batch_size`` -- how
    many requests shared its group's solve -- so callers can observe the
    coalescing.  An empty bag returns an empty list without touching any
    engine.
    """
    if registry is None:
        registry = EngineRegistry()
    responses: List[Optional[AllocationResponse]] = [None] * len(requests)
    for indices in group_requests(requests, registry).values():
        engine = registry.engine_for(requests[indices[0]])
        group = solve_group(engine, [requests[i] for i in indices])
        for index, response in zip(indices, group):
            responses[index] = response
    # The groups partition every index; a hole would misalign responses
    # with requests for callers that zip by position.
    assert all(response is not None for response in responses)
    return responses  # type: ignore[return-value]


class BatcherStats:
    """Counters describing how the coalescer has been behaving."""

    def __init__(self) -> None:
        self.requests = 0
        self.batches = 0
        self.largest_batch = 0

    def record(self, batch_size: int) -> None:
        """Account one dispatched batch."""
        self.requests += batch_size
        self.batches += 1
        if batch_size > self.largest_batch:
            self.largest_batch = batch_size

    @property
    def mean_batch_size(self) -> float:
        """Average requests per dispatched batch (0.0 before any)."""
        if self.batches == 0:
            return 0.0
        return self.requests / self.batches

    def to_json_dict(self) -> Dict[str, float]:
        """Encode for the ``/stats`` endpoint."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.mean_batch_size,
        }


class MicroBatcher:
    """Coalesces concurrent asyncio solve calls into batched dispatches.

    Two entry points share one pending queue and one flush: :meth:`solve`
    parks a single request on its own future (one HTTP connection), while
    :meth:`solve_bulk` parks a whole burst on a single future (one
    ``POST /allocate/batch`` payload) -- bursts therefore pay one future
    and one scatter, not one per request, and singles arriving inside the
    same window still merge into the burst's dispatch.

    A batcher is bound to a single event loop: the pending queue is
    unlocked and futures resolve on the loop that created them.  Do not
    share one instance (or the :class:`AllocationService` wrapping it)
    across threads running separate loops -- run one service per loop, or
    talk to a shared server over HTTP.

    Parameters
    ----------
    registry:
        Shared engine registry (one is created when omitted).
    window_s:
        How long the first request of a batch may wait for company.  Zero
        still coalesces whatever lands in the same event-loop turn.
    max_batch:
        Flush immediately once this many requests are pending, and split
        oversize bursts into solve chunks of at most this size.
    pool:
        Optional :class:`~repro.service.pool.WorkerPool`.  When present,
        flushed chunks are fanned across the pool's engine workers off the
        event loop (the loop keeps serving connections while workers
        solve); when absent, chunks are solved inline on the loop exactly
        as before.
    """

    def __init__(
        self,
        registry: Optional[EngineRegistry] = None,
        window_s: float = 0.002,
        max_batch: int = 1024,
        pool: Optional["WorkerPool"] = None,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window must be non-negative, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        self.registry = registry if registry is not None else EngineRegistry()
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.pool = pool
        self.stats = BatcherStats()
        # Entries are (burst, future, trace_ctx): a single request is a
        # burst of one whose future resolves to one response; solve_bulk
        # futures resolve to the whole burst's response list.  trace_ctx is
        # the span context active when the burst was enqueued -- flushes
        # run on a separate task, so each burst's span parent is carried
        # explicitly rather than through contextvars.
        self._pending: List[
            Tuple[
                List[AllocationRequest],
                "asyncio.Future",
                Optional[tracing.SpanContext],
            ]
        ] = []
        self._pending_requests = 0
        self._timer: Optional[asyncio.TimerHandle] = None
        # Pool flushes run as loop tasks; keep strong references so they
        # are not garbage-collected mid-dispatch.
        self._inflight: Set["asyncio.Task"] = set()

    @property
    def num_pending(self) -> int:
        """Requests currently parked waiting for a flush."""
        return self._pending_requests

    def _enqueue(self, burst: List[AllocationRequest]) -> "asyncio.Future":
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._pending.append((burst, future, tracing.current_context()))
        self._pending_requests += len(burst)
        if self._pending_requests >= self.max_batch:
            self.flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.window_s, self.flush)
        return future

    async def solve(self, request: AllocationRequest) -> AllocationResponse:
        """Park one request; resolves when its batch is dispatched."""
        return (await self._enqueue([request]))[0]

    async def solve_bulk(
        self, requests: Sequence[AllocationRequest]
    ) -> List[AllocationResponse]:
        """Park a burst as one unit; one future, one scatter for all of it."""
        if not requests:
            return []
        return list(await self._enqueue(list(requests)))

    async def solve_many(
        self, requests: Sequence[AllocationRequest]
    ) -> List[AllocationResponse]:
        """Submit a burst as independent concurrent singles (test harness).

        Unlike :meth:`solve_bulk` this exercises the per-request future
        path, mimicking many simultaneous connections.
        """
        return list(
            await asyncio.gather(*(self.solve(request) for request in requests))
        )

    def flush(self) -> None:
        """Dispatch everything pending now (no-op on an empty batch)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self._pending_requests = 0
        flat: List[AllocationRequest] = []
        for burst, _, _ in pending:
            flat.extend(burst)
        # One dispatch loop for both modes: the pooled path awaits the
        # workers (keeping the event loop free), the pool-less path solves
        # inline on the loop within the same task.
        task = asyncio.get_running_loop().create_task(
            self._flush_async(pending, flat)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _flush_async(
        self,
        pending: List[
            Tuple[
                List[AllocationRequest],
                "asyncio.Future",
                Optional[tracing.SpanContext],
            ]
        ],
        flat: List[AllocationRequest],
    ) -> None:
        """Solve the flushed chunks (of at most ``max_batch``), then scatter.

        A burst spanning chunks is reassembled before its future resolves
        (the scatter walks the pending list, not the chunks).
        """
        wall_start = time.time()
        dispatch_start = time.perf_counter()
        responses: List[AllocationResponse] = []
        error: Optional[Exception] = None
        for start in range(0, len(flat), self.max_batch):
            chunk = flat[start : start + self.max_batch]
            try:
                if self.pool is not None:
                    responses.extend(await self.pool.solve_batch_async(chunk))
                else:
                    responses.extend(solve_batch(chunk, self.registry))
            except Exception as failure:  # propagate to every waiter
                error = failure
                break
            self.stats.record(len(chunk))
        elapsed = time.perf_counter() - dispatch_start
        # One batcher.solve span per *traced* burst: the dispatch served
        # every pending burst at once, so each traced requester sees the
        # same duration attributed under its own trace.
        for burst, _, ctx in pending:
            if ctx is not None:
                tracing.record_span(
                    "batcher.solve",
                    ctx,
                    wall_start,
                    elapsed,
                    requests=len(burst),
                    batch_size=len(flat),
                    **({"error": type(error).__name__} if error else {}),
                )
        self._scatter(pending, responses, error)

    @staticmethod
    def _scatter(
        pending: List[
            Tuple[
                List[AllocationRequest],
                "asyncio.Future",
                Optional[tracing.SpanContext],
            ]
        ],
        responses: List[AllocationResponse],
        error: Optional[Exception],
    ) -> None:
        """Resolve every parked future with its burst's share of responses."""
        cursor = 0
        for burst, future, _ in pending:
            share = responses[cursor : cursor + len(burst)]
            cursor += len(burst)
            if future.done():
                continue
            if len(share) < len(burst):
                future.set_exception(
                    error
                    if error is not None
                    else RuntimeError("batch dispatch lost responses")
                )
            else:
                future.set_result(share)


__all__ = [
    "BatcherStats",
    "EngineRegistry",
    "MicroBatcher",
    "group_requests",
    "solve_batch",
    "solve_group",
]
