"""Allocation service: the engines of PR 1/2 behind a concurrent API.

The ROADMAP's north star frames the REAP allocator as a decision *service*
devices consult at production scale.  This package is that layer:

* :mod:`repro.service.requests` -- typed request/response messages with a
  canonical, hashable problem encoding (permutation-invariant over design
  points, collision-free over budgets/alphas);
* :mod:`repro.service.batcher` -- a micro-batching coalescer that turns
  bursts of concurrent requests into single
  :class:`~repro.core.batch.BatchAllocator` dispatches;
* :mod:`repro.service.cache` -- an LRU result cache keyed by the canonical
  encoding, with hit/miss/latency counters;
* :mod:`repro.service.pool` -- a worker pool fanning batched dispatch
  groups across engine (thread) workers and campaign cells across a
  persistent :class:`~concurrent.futures.ProcessPoolExecutor`
  (``repro serve --workers N``);
* :mod:`repro.service.shard` -- fleet campaign grids split across worker
  processes (cell-wise, or time-wise for open-loop studies) and merged
  exactly;
* :mod:`repro.service.server` / :mod:`repro.service.client` -- a
  stdlib-only asyncio JSON-over-HTTP front-end (``python -m repro serve``)
  with campaign submission/polling/streaming endpoints, and the matching
  blocking client / CLI.
"""

from repro.service.batcher import (
    BatcherStats,
    EngineRegistry,
    MicroBatcher,
    group_requests,
    solve_batch,
    solve_group,
)
from repro.service.cache import AllocationCache, CacheStats, LatencyRecorder
from repro.service.pool import WorkerPool, WorkerStats
from repro.service.requests import (
    AllocationRequest,
    AllocationResponse,
    CampaignRequest,
    CampaignResponse,
)
from repro.service.server import (
    AllocationServer,
    AllocationService,
    CampaignJob,
    ServerHandle,
    run_server,
    serve,
    start_in_thread,
)
from repro.service.shard import run_sharded_campaign, shard_cells


def __getattr__(name: str):
    # The client is imported lazily so `python -m repro.service.client` does
    # not see the module pre-imported by this package (runpy warns on that).
    if name in ("AllocationClient", "ServiceError"):
        from repro.service import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AllocationCache",
    "AllocationClient",
    "AllocationRequest",
    "AllocationResponse",
    "AllocationServer",
    "AllocationService",
    "BatcherStats",
    "CacheStats",
    "CampaignJob",
    "CampaignRequest",
    "CampaignResponse",
    "EngineRegistry",
    "LatencyRecorder",
    "MicroBatcher",
    "ServerHandle",
    "ServiceError",
    "WorkerPool",
    "WorkerStats",
    "group_requests",
    "run_server",
    "run_sharded_campaign",
    "serve",
    "shard_cells",
    "solve_batch",
    "solve_group",
    "start_in_thread",
]
