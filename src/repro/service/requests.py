"""Typed request/response contract of the allocation service.

The service speaks one message pair: an :class:`AllocationRequest` describes
a single REAP decision (design-point set, energy budget, alpha, period, off
power) and an :class:`AllocationResponse` carries the optimum back together
with service metadata (cache hit, coalesced batch size).  Both sides are
frozen dataclasses with lossless JSON codecs, so the stdlib HTTP front-end
(:mod:`repro.service.server`) and the Python client
(:mod:`repro.service.client`) share one wire format with no third-party
dependencies.

Canonical problem encoding
--------------------------
Every request has a *canonical key*: the order-independent hashable tuple
defined by :meth:`repro.core.problem.ReapProblem.canonical_key`.  Two
requests that permute the same design points encode identically; requests
that differ in any solver-relevant value (budget, alpha, period, off power,
any design-point field) never collide, because floats enter the key exactly
(no rounding).  The key's engine-level prefix equals
:meth:`repro.core.batch.BatchAllocator.engine_key`, which is how the
micro-batcher groups concurrent requests onto shared batch engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core import kernels
from repro.core.batch import BatchArrays, BatchGridResult
from repro.core.design_point import (
    DesignPoint,
    canonical_design_key,
    validate_design_points,
)
from repro.core.objective import validate_alpha
from repro.core.problem import ReapProblem
from repro.data.paper_constants import ACTIVITY_PERIOD_S, OFF_STATE_POWER_W


@dataclass(frozen=True)
class AllocationRequest:
    """One REAP allocation decision to be served.

    ``design_points`` may be left ``None``, meaning "the server's default
    set" (the Table 2 points unless the service was configured otherwise);
    the service resolves the default before keying its cache, so a request
    spelling the default set out explicitly and one leaving it ``None`` hit
    the same cache entry.
    """

    energy_budget_j: float
    alpha: float = 1.0
    design_points: Optional[Tuple[DesignPoint, ...]] = None
    period_s: float = ACTIVITY_PERIOD_S
    off_power_w: float = OFF_STATE_POWER_W
    #: Numeric backend to solve with (see :mod:`repro.core.kernels`);
    #: ``None`` means "the server's default backend".  Participates in the
    #: engine/cache keys, so cached results never cross backends.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.energy_budget_j < 0:
            raise ValueError(
                f"energy budget must be non-negative, got {self.energy_budget_j}"
            )
        validate_alpha(self.alpha)
        if self.period_s <= 0:
            raise ValueError(f"period must be positive, got {self.period_s}")
        if self.off_power_w < 0:
            raise ValueError(
                f"off-state power must be non-negative, got {self.off_power_w}"
            )
        if self.backend is not None:
            kernels.validate_backend(self.backend)
        if self.design_points is not None:
            validate_design_points(self.design_points)
            object.__setattr__(self, "design_points", tuple(self.design_points))

    # --- canonical encoding ----------------------------------------------------
    @property
    def is_resolved(self) -> bool:
        """Whether the design-point set has been filled in."""
        return self.design_points is not None

    def resolve(self, default_points: Sequence[DesignPoint]) -> "AllocationRequest":
        """Fill an unset design-point field with the service default."""
        if self.design_points is not None:
            return self
        return replace(self, design_points=tuple(default_points))

    @property
    def engine_key(self) -> tuple:
        """Engine-level key: which :class:`BatchAllocator` can serve this.

        Equals :meth:`repro.core.batch.BatchAllocator.engine_key` of a
        matching engine.
        """
        if self.design_points is None:
            raise ValueError(
                "request has no design points; resolve() it against the "
                "service defaults first"
            )
        key = (
            canonical_design_key(self.design_points),
            float(self.period_s),
            float(self.off_power_w),
        )
        # Mirror BatchAllocator.engine_key(): the default backend keeps the
        # historical three-element key, accelerated backends append theirs.
        if self.backend is not None and self.backend != "numpy":
            key = key + (self.backend,)
        return key

    @property
    def cache_key(self) -> tuple:
        """Canonical problem encoding (the service result-cache key)."""
        return self.engine_key + (float(self.energy_budget_j), float(self.alpha))

    def to_problem(self) -> ReapProblem:
        """Lower to the scalar :class:`ReapProblem` (reference semantics)."""
        if self.design_points is None:
            raise ValueError(
                "request has no design points; resolve() it against the "
                "service defaults first"
            )
        return ReapProblem(
            design_points=self.design_points,
            energy_budget_j=self.energy_budget_j,
            period_s=self.period_s,
            alpha=self.alpha,
            off_power_w=self.off_power_w,
        )

    # --- JSON codec -------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """Encode as a JSON-ready dictionary (the wire format)."""
        payload: Dict[str, Any] = {
            "energy_budget_j": self.energy_budget_j,
            "alpha": self.alpha,
            "period_s": self.period_s,
            "off_power_w": self.off_power_w,
        }
        if self.backend is not None:
            payload["backend"] = self.backend
        if self.design_points is not None:
            payload["design_points"] = [
                {"name": dp.name, "accuracy": dp.accuracy, "power_w": dp.power_w}
                for dp in self.design_points
            ]
        return payload

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "AllocationRequest":
        """Decode the wire format (raises ``ValueError`` on bad payloads)."""
        if "energy_budget_j" not in payload:
            raise ValueError("allocation request needs an 'energy_budget_j' field")
        points: Optional[Tuple[DesignPoint, ...]] = None
        raw_points = payload.get("design_points")
        if raw_points is not None:
            points = tuple(
                DesignPoint(
                    name=str(entry["name"]),
                    accuracy=float(entry["accuracy"]),
                    power_w=float(entry["power_w"]),
                )
                for entry in raw_points
            )
        backend = payload.get("backend")
        return cls(
            energy_budget_j=float(payload["energy_budget_j"]),
            alpha=float(payload.get("alpha", 1.0)),
            design_points=points,
            period_s=float(payload.get("period_s", ACTIVITY_PERIOD_S)),
            off_power_w=float(payload.get("off_power_w", OFF_STATE_POWER_W)),
            backend=None if backend is None else str(backend),
        )


@dataclass(frozen=True)
class AllocationResponse:
    """The served optimum plus service metadata.

    ``times_s`` maps design-point names to active seconds (zero entries are
    kept so clients see the full schedule).  ``cache_hit`` and
    ``batch_size`` describe how the service produced the answer: whether it
    came straight from the result cache, and how many concurrent requests
    shared the batched solve that computed it.
    """

    times_s: Dict[str, float]
    off_time_s: float
    objective: float
    expected_accuracy: float
    active_time_s: float
    energy_j: float
    budget_feasible: bool
    energy_budget_j: float
    alpha: float
    cache_hit: bool = False
    batch_size: int = 1

    def marked_cache_hit(self) -> "AllocationResponse":
        """Copy of this response flagged as served from the cache."""
        return replace(self, cache_hit=True)

    # --- constructors from engine results ---------------------------------------
    @classmethod
    def from_arrays(
        cls,
        arrays: BatchArrays,
        index: int,
        batch_size: int = 1,
        names: Optional[Sequence[str]] = None,
    ) -> "AllocationResponse":
        """Build the response of one row of a raw-array batch solve.

        ``names`` lets bulk callers hoist the design-point name list out of
        a scatter loop (it must match ``arrays.design_points``).
        """
        if names is None:
            names = [dp.name for dp in arrays.design_points]
        times = arrays.times_s[index]
        active = float(arrays.active_time_s[index])
        return cls(
            times_s={name: float(t) for name, t in zip(names, times)},
            off_time_s=max(0.0, float(arrays.period_s) - active),
            objective=float(arrays.objective[index]),
            expected_accuracy=float(arrays.expected_accuracy[index]),
            active_time_s=active,
            energy_j=float(arrays.energy_j[index]),
            budget_feasible=bool(arrays.feasible[index]),
            energy_budget_j=float(arrays.budgets_j[index]),
            alpha=float(arrays.alpha),
            batch_size=batch_size,
        )

    @classmethod
    def from_grid(
        cls,
        grid: BatchGridResult,
        alpha_index: int,
        budget_index: int,
        batch_size: int = 1,
    ) -> "AllocationResponse":
        """Build the response of one (alpha, budget) cell of a grid solve."""
        names = [dp.name for dp in grid.design_points]
        times = grid.times_s[alpha_index, budget_index]
        active = float(grid.active_time_s[alpha_index, budget_index])
        return cls(
            times_s={name: float(t) for name, t in zip(names, times)},
            off_time_s=max(0.0, float(grid.period_s) - active),
            objective=float(grid.objective[alpha_index, budget_index]),
            expected_accuracy=float(
                grid.expected_accuracy[alpha_index, budget_index]
            ),
            active_time_s=active,
            energy_j=float(grid.energy_j[alpha_index, budget_index]),
            budget_feasible=bool(grid.budget_feasible[budget_index]),
            energy_budget_j=float(grid.budgets_j[budget_index]),
            alpha=float(grid.alphas[alpha_index]),
            batch_size=batch_size,
        )

    # --- JSON codec -------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """Encode as a JSON-ready dictionary (the wire format)."""
        return {
            "times_s": dict(self.times_s),
            "off_time_s": self.off_time_s,
            "objective": self.objective,
            "expected_accuracy": self.expected_accuracy,
            "active_time_s": self.active_time_s,
            "energy_j": self.energy_j,
            "budget_feasible": self.budget_feasible,
            "energy_budget_j": self.energy_budget_j,
            "alpha": self.alpha,
            "cache_hit": self.cache_hit,
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "AllocationResponse":
        """Decode the wire format."""
        return cls(
            times_s={
                str(name): float(t) for name, t in payload["times_s"].items()
            },
            off_time_s=float(payload["off_time_s"]),
            objective=float(payload["objective"]),
            expected_accuracy=float(payload["expected_accuracy"]),
            active_time_s=float(payload["active_time_s"]),
            energy_j=float(payload["energy_j"]),
            budget_feasible=bool(payload["budget_feasible"]),
            energy_budget_j=float(payload["energy_budget_j"]),
            alpha=float(payload["alpha"]),
            cache_hit=bool(payload.get("cache_hit", False)),
            batch_size=int(payload.get("batch_size", 1)),
        )


@dataclass(frozen=True)
class CampaignRequest:
    """One fleet study to be run by the service's campaign workers.

    Mirrors the surface of the ``repro fleet`` command: every
    (exposure-factor scenario x policy) cell of the grid is simulated over
    one synthetic solar trace, with a REAP policy plus the named static
    baselines at every alpha.  The server lowers this to
    :func:`repro.service.shard.run_sharded_campaign` on its worker pool,
    so a remote campaign equals the local
    :class:`~repro.simulation.fleet.FleetCampaign` run to floating-point
    round-off.
    """

    alphas: Tuple[float, ...] = (1.0, 2.0)
    baselines: Tuple[str, ...] = ("DP1", "DP3", "DP5")
    exposure_factors: Tuple[float, ...] = (0.032,)
    month: int = 9
    seed: int = 2015
    hours: Optional[int] = None
    use_battery: bool = True
    #: Forecast-driven planning policies added at every alpha: each entry
    #: is a planner kind (``"horizon"`` / ``"mpc"``); the lookahead and
    #: forecast settings below are shared by all of them.
    planners: Tuple[str, ...] = ()
    horizon_periods: int = 24
    forecast: str = "perfect"
    forecast_noise: float = 0.2
    forecast_seed: int = 7
    #: Numeric backend threaded through every policy and the campaign's
    #: battery/plan scans (see :mod:`repro.core.kernels`).
    backend: str = "numpy"

    def __post_init__(self) -> None:
        # Imported here (not module level) to keep the allocation-only
        # service path free of the planning stack at import time.
        from repro.planning import validate_forecast_kind, validate_planner_kind

        object.__setattr__(self, "alphas", tuple(float(a) for a in self.alphas))
        object.__setattr__(
            self, "baselines", tuple(str(name) for name in self.baselines)
        )
        object.__setattr__(
            self,
            "exposure_factors",
            tuple(float(f) for f in self.exposure_factors),
        )
        object.__setattr__(
            self, "planners", tuple(str(name) for name in self.planners)
        )
        if not self.alphas:
            raise ValueError("campaign needs at least one alpha")
        for alpha in self.alphas:
            validate_alpha(alpha)
        if not self.exposure_factors:
            raise ValueError("campaign needs at least one exposure factor")
        if any(factor <= 0 for factor in self.exposure_factors):
            raise ValueError(
                f"exposure factors must be positive, got {self.exposure_factors}"
            )
        if not 1 <= int(self.month) <= 12:
            raise ValueError(f"month must be in [1, 12], got {self.month}")
        if self.hours is not None and self.hours < 1:
            raise ValueError(f"hours must be at least 1, got {self.hours}")
        for planner in self.planners:
            validate_planner_kind(planner)
        if self.planners and not self.use_battery:
            raise ValueError(
                "planning policies need a battery to plan against; drop the "
                "planners or run the campaign closed-loop (use_battery=True)"
            )
        validate_forecast_kind(self.forecast)
        if self.horizon_periods < 1:
            raise ValueError(
                f"horizon must be >= 1 period, got {self.horizon_periods}"
            )
        if self.forecast_noise < 0:
            raise ValueError(
                f"forecast noise must be non-negative, got {self.forecast_noise}"
            )
        kernels.validate_backend(self.backend)

    @property
    def num_policies(self) -> int:
        """Policies per scenario: REAP + baselines + planners, per alpha."""
        return len(self.alphas) * (1 + len(self.baselines) + len(self.planners))

    @property
    def num_cells(self) -> int:
        """Total (scenario x policy) campaign cells the study simulates."""
        return len(self.exposure_factors) * self.num_policies

    def build(self, design_points: Optional[Sequence[DesignPoint]] = None):
        """Materialise (scenarios, labels, policies, trace, config).

        This is the single source of truth for lowering a campaign request
        to simulator objects -- the server and any local parity check both
        call it, so "remote equals local" can never drift on construction
        details.  ``design_points`` is the hardware the study simulates: a
        service passes its configured default set (so campaigns describe
        the same hardware its ``/allocate`` answers do), ``None`` means
        the published Table 2 points.  Imports are local: the
        allocation-only service path never pays for the simulation stack.
        """
        from repro.data.table2 import table2_design_points
        from repro.harvesting.solar import SyntheticSolarModel
        from repro.harvesting.solar_cell import HarvestScenario, SolarCellModel
        from repro.harvesting.traces import SolarTrace
        from repro.simulation.fleet import CampaignConfig
        from repro.simulation.policies import (
            PlanningPolicy,
            ReapPolicy,
            StaticPolicy,
        )

        points = tuple(
            design_points if design_points is not None
            else table2_design_points()
        )
        trace = SyntheticSolarModel(seed=self.seed).generate_month(self.month)
        if self.hours is not None:
            if self.hours > len(trace):
                raise ValueError(
                    f"hours must be in [1, {len(trace)}], got {self.hours}"
                )
            trace = SolarTrace(trace.hours[: self.hours], name=trace.name)
        scenarios = [
            HarvestScenario(cell=SolarCellModel(exposure_factor=factor))
            for factor in self.exposure_factors
        ]
        labels = [f"exposure={factor:g}" for factor in self.exposure_factors]
        policies: List[object] = []
        for alpha in self.alphas:
            policies.append(ReapPolicy(points, alpha=alpha, backend=self.backend))
            policies.extend(
                StaticPolicy(points, name, alpha=alpha, backend=self.backend)
                for name in self.baselines
            )
            policies.extend(
                PlanningPolicy(
                    points,
                    planner=planner,
                    horizon_periods=self.horizon_periods,
                    forecast=self.forecast,
                    forecast_noise=self.forecast_noise,
                    forecast_seed=self.forecast_seed,
                    alpha=alpha,
                    backend=self.backend,
                )
                for planner in self.planners
            )
        return scenarios, labels, policies, trace, CampaignConfig(
            use_battery=self.use_battery,
            backend=self.backend,
        )

    # --- JSON codec -------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """Encode as a JSON-ready dictionary (the wire format)."""
        return {
            "alphas": list(self.alphas),
            "baselines": list(self.baselines),
            "exposure_factors": list(self.exposure_factors),
            "month": self.month,
            "seed": self.seed,
            "hours": self.hours,
            "use_battery": self.use_battery,
            "planners": list(self.planners),
            "horizon_periods": self.horizon_periods,
            "forecast": self.forecast,
            "forecast_noise": self.forecast_noise,
            "forecast_seed": self.forecast_seed,
            "backend": self.backend,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "CampaignRequest":
        """Decode the wire format (raises ``ValueError`` on bad payloads)."""
        known = {
            "alphas", "baselines", "exposure_factors", "month", "seed",
            "hours", "use_battery", "planners", "horizon_periods",
            "forecast", "forecast_noise", "forecast_seed", "backend",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown campaign request fields: {sorted(unknown)}"
            )
        hours = payload.get("hours")
        return cls(
            alphas=tuple(payload.get("alphas", (1.0, 2.0))),
            baselines=tuple(payload.get("baselines", ("DP1", "DP3", "DP5"))),
            exposure_factors=tuple(payload.get("exposure_factors", (0.032,))),
            month=int(payload.get("month", 9)),
            seed=int(payload.get("seed", 2015)),
            hours=None if hours is None else int(hours),
            use_battery=bool(payload.get("use_battery", True)),
            planners=tuple(payload.get("planners", ())),
            horizon_periods=int(payload.get("horizon_periods", 24)),
            forecast=str(payload.get("forecast", "perfect")),
            forecast_noise=float(payload.get("forecast_noise", 0.2)),
            forecast_seed=int(payload.get("forecast_seed", 7)),
            backend=str(payload.get("backend", "numpy")),
        )


@dataclass(frozen=True)
class CampaignResponse:
    """Status of one submitted campaign (the ``/campaign/<id>`` payload)."""

    campaign_id: str
    status: str
    cells: int
    trace_hours: int
    scenario_labels: Tuple[str, ...] = ()
    policy_names: Tuple[str, ...] = ()
    alphas: Tuple[float, ...] = ()
    error: Optional[str] = None
    summary: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)
    #: Per-phase wall-clock seconds of the finished run (see
    #: :attr:`repro.simulation.fleet.FleetResult.phase_timings`); ``None``
    #: until the campaign is done.
    profile: Optional[Dict[str, float]] = None

    #: Legal lifecycle states, in order:
    #: ``queued -> running -> done | failed | cancelled``.
    STATUSES = ("queued", "running", "done", "failed", "cancelled")

    #: Terminal states -- nothing transitions out of these.
    TERMINAL_STATUSES = ("done", "failed", "cancelled")

    def __post_init__(self) -> None:
        if self.status not in self.STATUSES:
            raise ValueError(
                f"status must be one of {self.STATUSES}, got {self.status!r}"
            )

    @property
    def finished(self) -> bool:
        """Whether the campaign has reached a terminal state."""
        return self.status in self.TERMINAL_STATUSES

    def to_json_dict(self) -> Dict[str, Any]:
        """Encode as a JSON-ready dictionary (the wire format)."""
        return {
            "campaign_id": self.campaign_id,
            "status": self.status,
            "cells": self.cells,
            "trace_hours": self.trace_hours,
            "scenario_labels": list(self.scenario_labels),
            "policy_names": list(self.policy_names),
            "alphas": list(self.alphas),
            "error": self.error,
            "summary": [dict(entry) for entry in self.summary],
            "profile": dict(self.profile) if self.profile else None,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "CampaignResponse":
        """Decode the wire format.

        ``"pending"`` (the pre-v1 name of the initial state) is mapped to
        ``"queued"`` so new clients can read old servers.
        """
        status = str(payload["status"])
        if status == "pending":
            status = "queued"
        return cls(
            campaign_id=str(payload["campaign_id"]),
            status=status,
            cells=int(payload["cells"]),
            trace_hours=int(payload["trace_hours"]),
            scenario_labels=tuple(payload.get("scenario_labels", ())),
            policy_names=tuple(payload.get("policy_names", ())),
            alphas=tuple(float(a) for a in payload.get("alphas", ())),
            error=payload.get("error"),
            summary=tuple(payload.get("summary", ())),
            profile=(
                {str(k): float(v) for k, v in payload["profile"].items()}
                if payload.get("profile")
                else None
            ),
        )


__all__ = [
    "AllocationRequest",
    "AllocationResponse",
    "CampaignRequest",
    "CampaignResponse",
]
