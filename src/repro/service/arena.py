"""Shared-memory column arena for zero-copy sharded campaigns.

The sharded campaign runner of :mod:`repro.service.shard` historically
moved every worker's results back to the parent by pickle: ten ``(H,)``
column arrays plus the per-DP time matrix and battery trajectory per grid
cell, re-encoded and copied through the executor's result pipe.  This
module replaces that round trip with POSIX shared memory
(:mod:`multiprocessing.shared_memory`):

* **Workers** pack each cell's :class:`~repro.simulation.metrics.CampaignColumns`
  frames directly into one segment per task (:func:`write_cells`) and
  return only a small :class:`ArenaShard` descriptor -- segment name plus
  per-cell offsets/shapes -- over the pipe.
* **The parent** attaches each segment once (:class:`ArenaBlock`),
  *unlinks it immediately* (POSIX keeps the mapping alive until the last
  close, so a crash after attach can never leak the name), and rebuilds
  the columns as zero-copy NumPy views over the mapping
  (:func:`read_cell`).  The merged
  :class:`~repro.simulation.fleet.FleetResult` keeps the blocks alive for
  as long as its views are used; :meth:`ArenaBlock.close` releases the
  pages (deferred automatically while views still export the buffer).
* **Context blobs** ship the campaign inputs (trace, config, policies)
  the same way: :func:`publish_context` writes one pickled payload into a
  segment the parent owns, and every worker loads and caches it once per
  campaign (:func:`load_context`) instead of unpickling it per task.

Ownership always ends at exactly one process: creators hand their
resource-tracker registration off right after creation
(:func:`_untrack`), so the parent's attach/unlink pair is the only one the
tracker sees and no "leaked shared_memory" warnings fire at shutdown.

On platforms without usable shared memory (no ``/dev/shm``, locked-down
containers) :func:`arena_available` reports ``False`` and the shard
runner degrades to the pickle path -- same results, more copying.
"""

from __future__ import annotations

import hashlib
import pickle
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.metrics import (
    _BINARY_COLUMN_LAYOUT,
    CampaignColumns,
    CampaignResult,
)

#: Segment names are short on purpose: POSIX limits them to 255 bytes and
#: macOS to 31, and they cross the executor pipe with every task.
_NAME_PREFIX = "reap"

_ARENA_AVAILABLE: Optional[bool] = None


def arena_available() -> bool:
    """Whether this platform can create and attach shared-memory segments.

    Probed once per process with a tiny create/attach/unlink round trip;
    the shard runner falls back to pickled results when this is ``False``.
    """
    global _ARENA_AVAILABLE
    if _ARENA_AVAILABLE is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _ARENA_AVAILABLE = True
        except Exception:
            _ARENA_AVAILABLE = False
    return _ARENA_AVAILABLE


def new_segment_name() -> str:
    """A short collision-resistant segment name the parent assigns up front.

    Pre-assigning names (rather than letting workers pick) is what makes
    crash cleanup possible: on any failure the parent can sweep every name
    it handed out (:func:`release_segment`), including segments whose
    descriptors were computed but never collected.
    """
    return f"{_NAME_PREFIX}{secrets.token_hex(8)}"


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Hand this process's resource-tracker registration off.

    Creating *or* attaching a segment registers it with the (shared)
    resource tracker; a segment registered by a worker but unlinked by the
    parent would be double-unlinked -- and warned about -- at shutdown.
    Every creator/attacher that does not own the unlink calls this right
    away so exactly one registration (the parent's) survives.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass  # tracker internals moved or tracking disabled: only warnings lost


def release_segment(name: str) -> bool:
    """Best-effort unlink of one segment by name (crash-cleanup sweep).

    Returns ``True`` when a segment existed and was released.  Missing
    segments are fine -- the worker never created it, or it was already
    attached-and-unlinked.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    shm.close()
    return True


# --- cell layout ------------------------------------------------------------------
@dataclass(frozen=True)
class CellSlot:
    """Where one campaign cell lives inside a segment.

    Field offsets are not stored: the layout is deterministic given the
    shape facts below (see :func:`_field_layout`), which keeps descriptors
    a few hundred bytes regardless of the trace length.
    """

    scenario_index: int
    policy_index: int
    policy_name: str
    alpha: float
    offset: int          #: cell base offset into the segment, 8-byte aligned
    num_periods: int
    design_point_names: Tuple[str, ...]  #: empty = no per-DP time matrix
    battery_len: int     #: 0 = open-loop cell, no battery trajectory


@dataclass(frozen=True)
class ArenaShard:
    """Descriptor of one worker task's results: segment name + cell slots.

    ``phase_s`` and ``spans`` carry the worker's observability sidecar --
    per-phase (name, seconds) timings and finished span records -- back
    across the executor pipe alongside the descriptor (they are a few
    hundred bytes, so the ~100-byte-descriptor property effectively
    holds).  :func:`write_cells` leaves them empty; the worker attaches
    them via :func:`dataclasses.replace` after timing itself.
    """

    segment_name: str
    nbytes: int
    cells: Tuple[CellSlot, ...]
    phase_s: Tuple[Tuple[str, float], ...] = ()
    spans: Tuple[Dict[str, Any], ...] = ()


def _field_layout(slot: CellSlot) -> List[Tuple[str, int, str, tuple]]:
    """(field, offset, dtype, shape) for every array of one cell slot.

    All fields are 8-byte scalars (``<i8`` ints, ``<f8`` floats), so a
    cell that starts 8-byte aligned keeps every view aligned.
    """
    layout: List[Tuple[str, int, str, tuple]] = []
    offset = slot.offset
    for name, kind in _BINARY_COLUMN_LAYOUT:
        dtype = "<i8" if kind == "int" else "<f8"
        layout.append((name, offset, dtype, (slot.num_periods,)))
        offset += slot.num_periods * 8
    if slot.design_point_names:
        shape = (slot.num_periods, len(slot.design_point_names))
        layout.append(("times_by_design_point_s", offset, "<f8", shape))
        offset += shape[0] * shape[1] * 8
    if slot.battery_len:
        layout.append(("battery_charge_j", offset, "<f8", (slot.battery_len,)))
        offset += slot.battery_len * 8
    return layout


def _cell_nbytes(slot: CellSlot) -> int:
    layout = _field_layout(slot)
    _, offset, dtype, shape = layout[-1]
    return offset - slot.offset + int(np.prod(shape)) * 8


def write_cells(
    segment_name: str,
    cells: Sequence[Tuple[int, int, CampaignResult]],
) -> ArenaShard:
    """Pack a worker's finished cells into one shared-memory segment.

    ``cells`` are ``(scenario_index, policy_index, result)`` triples whose
    results carry columnar outcomes (the fleet engine always produces
    them).  Creates the segment, copies every column in, unregisters it
    from this process's resource tracker (ownership passes to whoever
    attaches next) and closes the local mapping.  On any error the
    segment is unlinked before the exception propagates -- a crashing
    worker leaves nothing behind.
    """
    slots: List[CellSlot] = []
    offset = 0
    for scenario_index, policy_index, result in cells:
        columns = result.columns
        if columns is None:
            raise ValueError("arena cells need columnar campaign results")
        battery = result.battery_charge_j
        slot = CellSlot(
            scenario_index=scenario_index,
            policy_index=policy_index,
            policy_name=result.policy_name,
            alpha=float(result.alpha),
            offset=offset,
            num_periods=len(columns),
            design_point_names=(
                tuple(columns.design_point_names)
                if columns.times_by_design_point_s is not None
                else ()
            ),
            battery_len=0 if battery is None else int(battery.size),
        )
        slots.append(slot)
        offset += _cell_nbytes(slot)

    shm = shared_memory.SharedMemory(
        name=segment_name, create=True, size=max(offset, 1)
    )
    try:
        _untrack(shm)
        for slot, (_, _, result) in zip(slots, cells):
            columns = result.columns
            assert columns is not None
            for field, field_offset, dtype, shape in _field_layout(slot):
                if field == "battery_charge_j":
                    source = result.battery_charge_j
                else:
                    source = getattr(columns, field)
                view = np.ndarray(
                    shape, dtype=dtype, buffer=shm.buf, offset=field_offset
                )
                view[...] = source
    except BaseException:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        shm.close()
        raise
    shm.close()
    return ArenaShard(
        segment_name=segment_name, nbytes=max(offset, 1), cells=tuple(slots)
    )


class ArenaBlock:
    """One attached segment, already unlinked, owning the parent's mapping.

    Attaching unlinks the name immediately: the pages stay mapped (and the
    NumPy views over them stay valid) until :meth:`close`, but no process
    crash after this point can leak a named segment.  ``close`` is
    idempotent and tolerates still-exported views -- the mapping is then
    released when the last view is garbage collected.
    """

    def __init__(self, shm: shared_memory.SharedMemory, nbytes: int) -> None:
        self._shm = shm
        self.nbytes = nbytes
        self.closed = False

    @classmethod
    def attach(cls, shard: ArenaShard) -> "ArenaBlock":
        shm = shared_memory.SharedMemory(name=shard.segment_name)
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        return cls(shm, shard.nbytes)

    @property
    def buf(self) -> memoryview:
        """The segment's buffer (valid until :meth:`close`)."""
        return self._shm.buf

    def close(self) -> None:
        """Release the mapping; safe to call repeatedly.

        While NumPy views still export the buffer the underlying mmap
        cannot close; the attempt is swallowed and the pages are freed
        when the views die (the name is already unlinked either way).
        """
        if self.closed:
            return
        self.closed = True
        try:
            self._shm.close()
        except BufferError:
            pass


def read_cell(
    block: ArenaBlock, slot: CellSlot
) -> Tuple[CampaignColumns, Optional[np.ndarray]]:
    """Rebuild one cell as zero-copy views over an attached block.

    Returns ``(columns, battery_charge_j)``; every array is a read-only
    view into the block's buffer -- no bytes are copied.  The caller must
    keep the block alive for as long as the views are used.
    """
    arrays: Dict[str, np.ndarray] = {}
    for field, offset, dtype, shape in _field_layout(slot):
        view = np.ndarray(shape, dtype=dtype, buffer=block.buf, offset=offset)
        view.flags.writeable = False
        arrays[field] = view
    battery = arrays.pop("battery_charge_j", None)
    times = arrays.pop("times_by_design_point_s", None)
    columns = CampaignColumns(
        design_point_names=slot.design_point_names,
        times_by_design_point_s=times,
        **arrays,
    )
    return columns, battery


# --- context blobs ----------------------------------------------------------------
@dataclass(frozen=True)
class ContextRef:
    """Handle to a published context blob (crosses the executor pipe)."""

    segment_name: str
    nbytes: int
    digest: str


class PublishedContext:
    """A context blob the parent wrote into shared memory and still owns."""

    def __init__(self, shm: shared_memory.SharedMemory, ref: ContextRef) -> None:
        self._shm = shm
        self.ref = ref
        self.released = False

    def release(self) -> None:
        """Unlink and close the blob's segment (idempotent)."""
        if self.released:
            return
        self.released = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        try:
            self._shm.close()
        except BufferError:
            pass


def publish_context(payload: object) -> PublishedContext:
    """Pickle a campaign context once and park it in shared memory.

    Workers load it through :func:`load_context`; the parent releases the
    segment after the campaign (success or failure).  The digest keys the
    worker-side cache, so a persistent pool serving many campaigns keeps
    each context's unpickled form warm per worker.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest()
    shm = shared_memory.SharedMemory(
        name=new_segment_name(), create=True, size=max(len(blob), 1)
    )
    shm.buf[: len(blob)] = blob
    return PublishedContext(
        shm, ContextRef(segment_name=shm.name, nbytes=len(blob), digest=digest)
    )


#: Worker-side cache of unpickled contexts, keyed by blob digest.  Bounded
#: so a long-lived pool serving many distinct campaigns cannot grow it
#: without limit.
_CONTEXT_CACHE: Dict[str, object] = {}
_MAX_CACHED_CONTEXTS = 4


def load_context(ref: ContextRef) -> object:
    """Attach, unpickle and cache one published context (worker side).

    The first task of a campaign in each worker pays one read; subsequent
    tasks -- and later campaigns with identical inputs -- hit the cache.
    """
    cached = _CONTEXT_CACHE.get(ref.digest)
    if cached is not None:
        return cached
    shm = shared_memory.SharedMemory(name=ref.segment_name)
    try:
        # No _untrack here: under fork every process shares one resource
        # tracker whose per-type cache is a *set*, so this attach's
        # registration collapses into the parent's existing entry.
        # Unregistering would strip that shared entry and make the
        # parent's eventual unlink double-unregister (KeyError noise in
        # the tracker).  The attach/close pair needs no bookkeeping.
        payload = pickle.loads(bytes(shm.buf[: ref.nbytes]))
    finally:
        shm.close()
    while len(_CONTEXT_CACHE) >= _MAX_CACHED_CONTEXTS:
        _CONTEXT_CACHE.pop(next(iter(_CONTEXT_CACHE)))
    _CONTEXT_CACHE[ref.digest] = payload
    return payload


__all__ = [
    "ArenaBlock",
    "ArenaShard",
    "CellSlot",
    "ContextRef",
    "PublishedContext",
    "arena_available",
    "load_context",
    "new_segment_name",
    "publish_context",
    "read_cell",
    "release_segment",
    "write_cells",
]
