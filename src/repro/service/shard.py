"""Sharded fleet campaigns: split a (scenario x policy) grid across processes.

The fleet engine (:class:`~repro.simulation.fleet.FleetCampaign`) already
vectorizes a whole grid inside one process; this module scales it across
cores.  Every (scenario, policy) cell of a campaign grid is independent --
the lockstep battery scan couples nothing across cells and each cell's
device simulator owns its own seeded RNG -- so the grid can be partitioned
into contiguous scenario-major runs, executed in a
:class:`~concurrent.futures.ProcessPoolExecutor`, and reassembled into one
:class:`~repro.simulation.fleet.FleetResult` that matches the
single-process run to floating-point round-off.

When the grid itself is too small to fill the requested workers (e.g. one
scenario, one policy, a year-long trace) and the campaign is open-loop in
"expected" recognition mode, the runner shards along the *time* axis
instead: each worker simulates a contiguous trace slice and the per-cell
:class:`~repro.simulation.metrics.CampaignColumns` are merged back with
:meth:`~repro.simulation.metrics.CampaignColumns.concat`.  Closed-loop and
sampled-mode campaigns are excluded from time sharding because the battery
recurrence and the Bernoulli stream are sequential in time.

Everything sent to the workers (scenarios, policies, config, trace) travels
by pickle; the policy classes of :mod:`repro.simulation.policies` and the
frozen dataclasses of the energy/harvesting layers are all picklable.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import replace
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.harvesting.solar_cell import HarvestScenario
from repro.harvesting.traces import SolarTrace
from repro.simulation.fleet import CampaignConfig, FleetCampaign, FleetResult
from repro.simulation.metrics import CampaignColumns, CampaignResult
from repro.simulation.policies import Policy


def shard_cells(
    num_scenarios: int, num_policies: int, jobs: int
) -> List[List[Tuple[int, int]]]:
    """Partition the scenario-major cell list into at most ``jobs`` chunks.

    Returns contiguous runs of (scenario_index, policy_index) pairs of
    near-equal size; fewer than ``jobs`` chunks when there are fewer cells.
    """
    if num_scenarios < 1 or num_policies < 1:
        raise ValueError("grid must have at least one scenario and one policy")
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    cells = [
        (scenario, policy)
        for scenario in range(num_scenarios)
        for policy in range(num_policies)
    ]
    num_chunks = min(jobs, len(cells))
    base, extra = divmod(len(cells), num_chunks)
    chunks: List[List[Tuple[int, int]]] = []
    start = 0
    for chunk_index in range(num_chunks):
        size = base + (1 if chunk_index < extra else 0)
        chunks.append(cells[start : start + size])
        start += size
    return chunks


def _cell_groups(
    chunk: Sequence[Tuple[int, int]],
) -> List[Tuple[int, int, int]]:
    """Collapse a contiguous scenario-major chunk into per-scenario runs.

    Returns (scenario_index, first_policy, last_policy_exclusive) triples;
    within a contiguous chunk each scenario's policy indices form one run.
    """
    groups: List[Tuple[int, int, int]] = []
    for scenario, policy in chunk:
        if groups and groups[-1][0] == scenario and groups[-1][2] == policy:
            groups[-1] = (scenario, groups[-1][1], policy + 1)
        else:
            groups.append((scenario, policy, policy + 1))
    return groups


def _run_cell_shard(
    scenarios: Sequence[HarvestScenario],
    labels: Sequence[str],
    config: CampaignConfig,
    policies: Sequence[Policy],
    trace: SolarTrace,
    chunk: Sequence[Tuple[int, int]],
) -> List[Tuple[int, int, CampaignResult]]:
    """Worker: simulate one chunk of (scenario, policy) cells."""
    results: List[Tuple[int, int, CampaignResult]] = []
    for scenario, first, last in _cell_groups(chunk):
        fleet = FleetCampaign(
            scenarios[scenario], config, scenario_labels=[labels[scenario]]
        )
        shard = fleet.run(list(policies[first:last]), trace)
        for offset in range(last - first):
            results.append((scenario, first + offset, shard.result(offset)))
    return results


def _run_time_shard(
    scenarios: Sequence[HarvestScenario],
    labels: Sequence[str],
    config: CampaignConfig,
    policies: Sequence[Policy],
    trace: SolarTrace,
    first_hour: int,
    last_hour: int,
) -> List[List[CampaignColumns]]:
    """Worker: simulate every cell over one contiguous trace slice.

    Returns the per-cell columns with ``period_index`` shifted to global
    trace coordinates so :meth:`CampaignColumns.concat` yields the exact
    single-process indexing.
    """
    slice_trace = SolarTrace(trace.hours[first_hour:last_hour], name=trace.name)
    fleet = FleetCampaign(scenarios, config, scenario_labels=labels)
    shard = fleet.run(list(policies), trace=slice_trace)
    grid: List[List[CampaignColumns]] = []
    for scenario_index in range(len(scenarios)):
        row = []
        for policy_index in range(len(policies)):
            columns = shard.result(policy_index, scenario_index).columns
            assert columns is not None  # fleet results are always columnar
            row.append(
                replace(columns, period_index=columns.period_index + first_hour)
            )
        grid.append(row)
    return grid


def _time_shardable(
    config: CampaignConfig, policies: Sequence[Policy]
) -> bool:
    """Whether per-period outcomes are independent along the time axis.

    Requires an open loop (the battery recurrence is sequential),
    "expected" recognition (the sampled Bernoulli stream is sequential)
    and stateless policies.  A policy carrying cross-period state must
    override :meth:`Policy.reset` for campaigns to be correct at all, so an
    overridden ``reset`` is the signal to refuse time slicing (each worker
    would restart the state at its slice boundary).
    """
    return (
        not config.use_battery
        and config.device.recognition_mode == "expected"
        and all(type(policy).reset is Policy.reset for policy in policies)
    )


def _map_on_workers(
    fn: Callable,
    argument_tuples: Sequence[tuple],
    jobs: int,
    executor: Optional[Executor],
) -> List[Any]:
    """Map ``fn`` over argument tuples on worker processes.

    Uses the caller's ``executor`` when one is provided (a persistent
    service pool); otherwise spins up -- and tears down -- a private
    :class:`ProcessPoolExecutor` sized to the work.
    """
    if executor is not None:
        return list(executor.map(fn, *zip(*argument_tuples)))
    with ProcessPoolExecutor(max_workers=min(jobs, len(argument_tuples))) as own:
        return list(own.map(fn, *zip(*argument_tuples)))


def run_sharded_campaign(
    scenarios: Sequence[HarvestScenario],
    policies: Sequence[Policy],
    trace: SolarTrace,
    config: Optional[CampaignConfig] = None,
    scenario_labels: Optional[Sequence[str]] = None,
    jobs: int = 1,
    executor: Optional[Executor] = None,
) -> FleetResult:
    """Run a fleet campaign grid, optionally sharded across processes.

    ``jobs=1`` (the default) runs the plain in-process
    :class:`FleetCampaign` -- the sharded paths reproduce it to
    floating-point round-off, never approximately.  With more jobs the grid
    is split cell-wise; grids smaller than the worker count fall back to
    time sharding when the campaign allows it (open loop, expected-mode
    recognition).  The merged result's :attr:`FleetResult.scan` is ``None``
    for sharded runs (each worker owns a private scan); per-cell battery
    trajectories remain available on the cell results.

    ``executor`` lets long-running services reuse one persistent process
    pool (e.g. :class:`repro.service.pool.WorkerPool`) across campaigns
    instead of paying process start-up per run; it is never shut down here.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    scenarios = list(scenarios)
    policies = list(policies)
    config = config or CampaignConfig()
    if scenario_labels is None:
        scenario_labels = [f"S{index}" for index in range(len(scenarios))]
    labels = list(scenario_labels)

    fleet = FleetCampaign(scenarios, config, scenario_labels=labels)
    num_cells = len(scenarios) * len(policies)
    time_shardable = _time_shardable(config, policies)
    if jobs == 1 or (num_cells == 1 and not time_shardable):
        return fleet.run(policies, trace)

    if num_cells < jobs and time_shardable and len(trace) >= 2 * jobs:
        return _run_time_sharded(
            scenarios, labels, config, policies, trace, jobs, executor
        )
    return _run_cell_sharded(
        scenarios, labels, config, policies, trace, jobs, executor
    )


def _run_cell_sharded(
    scenarios: Sequence[HarvestScenario],
    labels: Sequence[str],
    config: CampaignConfig,
    policies: Sequence[Policy],
    trace: SolarTrace,
    jobs: int,
    executor: Optional[Executor] = None,
) -> FleetResult:
    """Split the grid cell-wise across a process pool and merge the rows."""
    chunks = shard_cells(len(scenarios), len(policies), jobs)
    grid: List[List[Optional[CampaignResult]]] = [
        [None] * len(policies) for _ in scenarios
    ]
    shard_results = _map_on_workers(
        _run_cell_shard,
        [
            (scenarios, labels, config, policies, trace, chunk)
            for chunk in chunks
        ],
        jobs,
        executor,
    )
    for cells in shard_results:
        for scenario_index, policy_index, result in cells:
            grid[scenario_index][policy_index] = result
    missing = [
        (scenario_index, policy_index)
        for scenario_index, row in enumerate(grid)
        for policy_index, cell in enumerate(row)
        if cell is None
    ]
    if missing:  # a partial grid would silently shift policy indices
        raise RuntimeError(f"shard workers left cells unfilled: {missing}")
    return FleetResult(
        scenario_labels=labels,
        policies=policies,
        grid=grid,
        scan=None,
        trace_hours=len(trace),
    )


def _run_time_sharded(
    scenarios: Sequence[HarvestScenario],
    labels: Sequence[str],
    config: CampaignConfig,
    policies: Sequence[Policy],
    trace: SolarTrace,
    jobs: int,
    executor: Optional[Executor] = None,
) -> FleetResult:
    """Split the trace into contiguous slices and concat the merged columns."""
    hours = len(trace)
    base, extra = divmod(hours, jobs)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for shard_index in range(jobs):
        size = base + (1 if shard_index < extra else 0)
        if size == 0:
            continue
        bounds.append((start, start + size))
        start += size
    shards = _map_on_workers(
        _run_time_shard,
        [
            (scenarios, labels, config, policies, trace, first, last)
            for first, last in bounds
        ],
        jobs,
        executor,
    )
    grid: List[List[CampaignResult]] = []
    for scenario_index in range(len(scenarios)):
        row = []
        for policy_index, policy in enumerate(policies):
            columns = CampaignColumns.concat(
                [shard[scenario_index][policy_index] for shard in shards]
            )
            row.append(
                CampaignResult.from_columns(policy.name, policy.alpha, columns)
            )
        grid.append(row)
    return FleetResult(
        scenario_labels=labels,
        policies=policies,
        grid=grid,
        scan=None,
        trace_hours=hours,
    )


__all__ = ["run_sharded_campaign", "shard_cells"]
