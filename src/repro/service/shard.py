"""Sharded fleet campaigns: split a (scenario x policy) grid across processes.

The fleet engine (:class:`~repro.simulation.fleet.FleetCampaign`) already
vectorizes a whole grid inside one process; this module scales it across
cores.  Every (scenario, policy) cell of a campaign grid is independent --
the lockstep battery scan couples nothing across cells and each cell's
device simulator owns its own seeded RNG -- so the grid can be partitioned
into contiguous scenario-major runs, executed in a
:class:`~concurrent.futures.ProcessPoolExecutor`, and reassembled into one
:class:`~repro.simulation.fleet.FleetResult` that matches the
single-process run to floating-point round-off.

When the grid itself is too small to fill the requested workers (e.g. one
scenario, one policy, a year-long trace) and the campaign is open-loop in
"expected" recognition mode, the runner shards along the *time* axis
instead: each worker simulates a contiguous trace slice and the per-cell
:class:`~repro.simulation.metrics.CampaignColumns` are merged back with
:meth:`~repro.simulation.metrics.CampaignColumns.concat`.  Closed-loop and
sampled-mode campaigns are excluded from time sharding because the battery
recurrence and the Bernoulli stream are sequential in time.

Two transports move data between parent and workers:

* **Shared memory** (the default wherever ``/dev/shm``-style segments
  work, see :mod:`repro.service.arena`): the campaign context (scenarios,
  config, policies, trace) is pickled *once* into a segment every worker
  maps and caches, each worker writes its cells' column frames straight
  into a per-task arena segment, and only tiny descriptors cross the
  executor pipe.  The parent rebuilds the grid as zero-copy NumPy views
  over the attached (and immediately unlinked) segments.
* **Pickle** (``shared_memory=False`` or unavailable): everything travels
  through the executor's result pipe as before -- same results, more
  copying.

Both transports reproduce the single-process run exactly: cell identity is
preserved (each cell's device simulator re-seeds from the same
``DeviceConfig``), so even sampled-mode RNG streams match bit for bit.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, as_completed
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.harvesting.solar_cell import HarvestScenario
from repro.harvesting.traces import SolarTrace
from repro.obs import tracing
from repro.obs.profiling import PhaseProfiler
from repro.service import arena
from repro.simulation.fleet import CampaignConfig, FleetCampaign, FleetResult
from repro.simulation.metrics import CampaignColumns, CampaignResult
from repro.simulation.policies import Policy


def shard_cells(
    num_scenarios: int, num_policies: int, jobs: int
) -> List[List[Tuple[int, int]]]:
    """Partition the scenario-major cell list into at most ``jobs`` chunks.

    Returns contiguous runs of (scenario_index, policy_index) pairs of
    near-equal size; fewer than ``jobs`` chunks when there are fewer cells.
    """
    if num_scenarios < 1 or num_policies < 1:
        raise ValueError("grid must have at least one scenario and one policy")
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    cells = [
        (scenario, policy)
        for scenario in range(num_scenarios)
        for policy in range(num_policies)
    ]
    num_chunks = min(jobs, len(cells))
    base, extra = divmod(len(cells), num_chunks)
    chunks: List[List[Tuple[int, int]]] = []
    start = 0
    for chunk_index in range(num_chunks):
        size = base + (1 if chunk_index < extra else 0)
        chunks.append(cells[start : start + size])
        start += size
    return chunks


def _cell_groups(
    chunk: Sequence[Tuple[int, int]],
) -> List[Tuple[int, int, int]]:
    """Collapse a contiguous scenario-major chunk into per-scenario runs.

    Returns (scenario_index, first_policy, last_policy_exclusive) triples;
    within a contiguous chunk each scenario's policy indices form one run.
    """
    groups: List[Tuple[int, int, int]] = []
    for scenario, policy in chunk:
        if groups and groups[-1][0] == scenario and groups[-1][2] == policy:
            groups[-1] = (scenario, groups[-1][1], policy + 1)
        else:
            groups.append((scenario, policy, policy + 1))
    return groups


def _simulate_cell_chunk(
    scenarios: Sequence[HarvestScenario],
    labels: Sequence[str],
    config: CampaignConfig,
    policies: Sequence[Policy],
    trace: SolarTrace,
    chunk: Sequence[Tuple[int, int]],
    profiler: Optional[PhaseProfiler] = None,
) -> List[Tuple[int, int, CampaignResult]]:
    """Simulate one chunk of (scenario, policy) cells (both transports).

    ``profiler`` accumulates the fleet pipeline's per-phase timings
    across the chunk's scenario groups.
    """
    results: List[Tuple[int, int, CampaignResult]] = []
    for scenario, first, last in _cell_groups(chunk):
        fleet = FleetCampaign(
            scenarios[scenario], config, scenario_labels=[labels[scenario]]
        )
        shard = fleet.run(list(policies[first:last]), trace, profiler=profiler)
        for offset in range(last - first):
            results.append((scenario, first + offset, shard.result(offset)))
    return results


def _shard_span(
    trace_ctx: Optional[tracing.SpanContext],
    transport: str,
    work: Callable[[PhaseProfiler], Any],
) -> Tuple[Any, Dict[str, float], List[Dict[str, Any]]]:
    """Worker-side harness: run ``work`` under a ``campaign.shard`` span.

    Returns (work result, per-phase timings, captured span records).  The
    span context arrives pickled from the parent process -- contextvars
    cannot cross the executor -- and the emitted spans are *returned*
    rather than only logged, because the worker's in-process trace
    recorder dies with the worker: the parent ingests them.  With no
    ``trace_ctx`` the phases are still profiled but no span is emitted.
    """
    profiler = PhaseProfiler()
    if trace_ctx is None:
        return work(profiler), profiler.as_dict(), []
    with tracing.capture_spans() as captured:
        with tracing.span("campaign.shard", parent=trace_ctx, transport=transport):
            result = work(profiler)
    return result, profiler.as_dict(), captured


def _run_cell_shard(
    scenarios: Sequence[HarvestScenario],
    labels: Sequence[str],
    config: CampaignConfig,
    policies: Sequence[Policy],
    trace: SolarTrace,
    chunk: Sequence[Tuple[int, int]],
    trace_ctx: Optional[tracing.SpanContext] = None,
) -> Tuple[List[Tuple[int, int, CampaignResult]], Dict[str, float], List[Dict[str, Any]]]:
    """Worker (pickle transport): simulate a chunk, return full results."""
    return _shard_span(
        trace_ctx,
        "pickle",
        lambda profiler: _simulate_cell_chunk(
            scenarios, labels, config, policies, trace, chunk, profiler
        ),
    )


def _run_cell_shard_arena(
    context_ref: arena.ContextRef,
    chunk: Sequence[Tuple[int, int]],
    trace_ctx: Optional[tracing.SpanContext],
    segment_name: str,
) -> arena.ArenaShard:
    """Worker (arena transport): simulate a chunk into shared memory.

    The campaign context comes out of the worker's blob cache (one
    unpickle per worker per campaign, not per task); the finished columns
    go straight into ``segment_name`` and only the descriptor returns.
    The trace context travels as a per-task argument, *not* inside the
    context blob -- the blob is digest-cached across campaigns, and a
    trace id baked into it would defeat the cache.
    """
    scenarios, labels, config, policies, trace = arena.load_context(context_ref)

    def work(profiler: PhaseProfiler) -> arena.ArenaShard:
        cells = _simulate_cell_chunk(
            scenarios, labels, config, policies, trace, chunk, profiler
        )
        with profiler.phase("arena_pack"):
            return arena.write_cells(segment_name, cells)

    shard, phases, spans = _shard_span(trace_ctx, "arena", work)
    return replace(
        shard,
        phase_s=tuple(sorted(phases.items())),
        spans=tuple(spans),
    )


def _simulate_time_slice(
    scenarios: Sequence[HarvestScenario],
    labels: Sequence[str],
    config: CampaignConfig,
    policies: Sequence[Policy],
    trace: SolarTrace,
    first_hour: int,
    last_hour: int,
) -> List[List[CampaignColumns]]:
    """Simulate every cell over one contiguous trace slice.

    Returns the per-cell columns with ``period_index`` shifted to global
    trace coordinates so :meth:`CampaignColumns.concat` yields the exact
    single-process indexing.
    """
    slice_trace = SolarTrace(trace.hours[first_hour:last_hour], name=trace.name)
    fleet = FleetCampaign(scenarios, config, scenario_labels=labels)
    shard = fleet.run(list(policies), trace=slice_trace)
    grid: List[List[CampaignColumns]] = []
    for scenario_index in range(len(scenarios)):
        row = []
        for policy_index in range(len(policies)):
            columns = shard.result(policy_index, scenario_index).columns
            assert columns is not None  # fleet results are always columnar
            row.append(
                replace(columns, period_index=columns.period_index + first_hour)
            )
        grid.append(row)
    return grid


def _run_time_shard(
    scenarios: Sequence[HarvestScenario],
    labels: Sequence[str],
    config: CampaignConfig,
    policies: Sequence[Policy],
    trace: SolarTrace,
    first_hour: int,
    last_hour: int,
    trace_ctx: Optional[tracing.SpanContext] = None,
) -> Tuple[List[List[CampaignColumns]], Dict[str, float], List[Dict[str, Any]]]:
    """Worker (pickle transport): simulate one trace slice for every cell."""

    def work(profiler: PhaseProfiler) -> List[List[CampaignColumns]]:
        with profiler.phase("cell_solve"):
            return _simulate_time_slice(
                scenarios, labels, config, policies, trace, first_hour, last_hour
            )

    return _shard_span(trace_ctx, "pickle", work)


def _run_time_shard_arena(
    context_ref: arena.ContextRef,
    first_hour: int,
    last_hour: int,
    trace_ctx: Optional[tracing.SpanContext],
    segment_name: str,
) -> arena.ArenaShard:
    """Worker (arena transport): simulate one trace slice into shared memory."""
    scenarios, labels, config, policies, trace = arena.load_context(context_ref)

    def work(profiler: PhaseProfiler) -> arena.ArenaShard:
        with profiler.phase("cell_solve"):
            grid = _simulate_time_slice(
                scenarios, labels, config, policies, trace, first_hour, last_hour
            )
        cells: List[Tuple[int, int, CampaignResult]] = []
        for scenario_index, row in enumerate(grid):
            for policy_index, columns in enumerate(row):
                policy = policies[policy_index]
                cells.append((
                    scenario_index,
                    policy_index,
                    CampaignResult.from_columns(
                        policy.name, policy.alpha, columns
                    ),
                ))
        with profiler.phase("arena_pack"):
            return arena.write_cells(segment_name, cells)

    shard, phases, spans = _shard_span(trace_ctx, "arena", work)
    return replace(
        shard,
        phase_s=tuple(sorted(phases.items())),
        spans=tuple(spans),
    )


def _warm_worker(context_ref: arena.ContextRef) -> None:
    """Private-pool initializer: preload the campaign context once per worker.

    Best-effort on purpose -- an initializer exception marks the whole
    pool broken, and the first task loads the context itself on a cache
    miss anyway.
    """
    try:
        arena.load_context(context_ref)
    except Exception:
        pass


def _time_shardable(
    config: CampaignConfig, policies: Sequence[Policy]
) -> bool:
    """Whether per-period outcomes are independent along the time axis.

    Requires an open loop (the battery recurrence is sequential),
    "expected" recognition (the sampled Bernoulli stream is sequential)
    and stateless policies.  A policy carrying cross-period state must
    override :meth:`Policy.reset` for campaigns to be correct at all, so an
    overridden ``reset`` is the signal to refuse time slicing (each worker
    would restart the state at its slice boundary).
    """
    return (
        not config.use_battery
        and config.device.recognition_mode == "expected"
        and all(type(policy).reset is Policy.reset for policy in policies)
    )


def _use_arena(shared_memory: Optional[bool]) -> bool:
    """Resolve the transport choice: explicit flag, else platform probe."""
    if shared_memory is None:
        return arena.arena_available()
    if shared_memory and not arena.arena_available():
        raise RuntimeError(
            "shared-memory transport requested but this platform cannot "
            "create shared-memory segments; rerun with shared memory off"
        )
    return bool(shared_memory)


def _map_on_workers(
    fn: Callable,
    argument_tuples: Sequence[tuple],
    jobs: int,
    executor: Optional[Executor],
) -> List[Any]:
    """Map ``fn`` over argument tuples on worker processes.

    Uses the caller's ``executor`` when one is provided (a persistent
    service pool); otherwise spins up -- and tears down -- a private
    :class:`ProcessPoolExecutor` sized to the work.  ``chunksize`` is
    computed explicitly: the default of 1 costs one IPC round trip per
    task, which swamps thousand-task maps; batching to ~2 chunks per
    worker keeps dispatch overhead flat while still load-balancing.
    """
    workers = max(1, min(jobs, len(argument_tuples)))
    chunksize = max(1, len(argument_tuples) // (workers * 2))
    if executor is not None:
        return list(executor.map(fn, *zip(*argument_tuples), chunksize=chunksize))
    with ProcessPoolExecutor(max_workers=workers) as own:
        return list(own.map(fn, *zip(*argument_tuples), chunksize=chunksize))


def _run_all_on_workers(
    fn: Callable,
    argument_tuples: Sequence[tuple],
    jobs: int,
    executor: Optional[Executor],
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """Run every task and let *all* of them settle before raising.

    The arena transport needs this stronger contract: the parent sweeps
    pre-assigned segment names after a failure, which is only safe once no
    worker can still be creating one.  ``executor.map`` raises at the
    first failed result with later tasks possibly still running; here the
    first exception is re-raised only after every future is done
    (not-yet-started tasks are cancelled, running ones finish).

    ``on_result(task_index, result)`` is invoked on the caller's thread
    for each task result *as it completes* (completion order, hence the
    explicit submission index) -- the hook durable campaigns use to
    journal a shard the moment it finishes rather than after the whole
    grid.  A callback exception aborts the run under the same
    settle-first contract.
    """

    def collect(futures) -> List[Any]:
        index_of = {id(future): index for index, future in enumerate(futures)}
        results: List[Any] = [None] * len(futures)
        first_error: Optional[BaseException] = None
        for future in as_completed(futures):
            if future.cancelled():
                continue
            error = future.exception()
            if error is not None:
                if first_error is None:
                    first_error = error
                    for other in futures:
                        other.cancel()
                continue
            index = index_of[id(future)]
            results[index] = future.result()
            if on_result is not None and first_error is None:
                try:
                    on_result(index, results[index])
                except BaseException as callback_error:
                    first_error = callback_error
                    for other in futures:
                        other.cancel()
        if first_error is not None:
            raise first_error
        return results

    if executor is not None:
        return collect([executor.submit(fn, *args) for args in argument_tuples])
    workers = max(1, min(jobs, len(argument_tuples)))
    with ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    ) as own:
        return collect([own.submit(fn, *args) for args in argument_tuples])


def run_sharded_campaign(
    scenarios: Sequence[HarvestScenario],
    policies: Sequence[Policy],
    trace: SolarTrace,
    config: Optional[CampaignConfig] = None,
    scenario_labels: Optional[Sequence[str]] = None,
    jobs: int = 1,
    executor: Optional[Executor] = None,
    shared_memory: Optional[bool] = None,
    completed: Optional[Dict[Tuple[int, int], CampaignResult]] = None,
    on_shard_done: Optional[
        Callable[[List[Tuple[int, int, CampaignResult]]], None]
    ] = None,
) -> FleetResult:
    """Run a fleet campaign grid, optionally sharded across processes.

    ``jobs=1`` (the default) runs the plain in-process
    :class:`FleetCampaign` -- the sharded paths reproduce it to
    floating-point round-off, never approximately.  With more jobs the grid
    is split cell-wise; grids smaller than the worker count fall back to
    time sharding when the campaign allows it (open loop, expected-mode
    recognition).  The merged result's :attr:`FleetResult.scan` is ``None``
    for sharded runs (each worker owns a private scan); per-cell battery
    trajectories remain available on the cell results.

    ``executor`` lets long-running services reuse one persistent process
    pool (e.g. :class:`repro.service.pool.WorkerPool`) across campaigns
    instead of paying process start-up per run; it is never shut down here.

    ``shared_memory`` selects the worker transport: ``None`` (default)
    auto-detects, ``False`` forces the pickle path, ``True`` requires the
    shared-memory arena (raising where the platform cannot provide it).
    Arena-backed results hold OS shared-memory mappings; call
    :meth:`FleetResult.release` when done with the arrays (dropping the
    result also releases them, just later, at garbage collection).

    ``completed`` and ``on_shard_done`` are the durable-campaign hooks
    (:mod:`repro.service.store`): cells present in ``completed`` -- e.g.
    journaled by a previous run that was killed mid-campaign -- are **not**
    re-simulated (their results are merged into the grid as-is), and
    ``on_shard_done(cells)`` fires on the caller's thread the moment each
    shard's cells are in hand, before the campaign finishes.  Either hook
    makes the run *durable*: the grid is always sharded cell-wise (time
    slices have no stable per-cell identity to journal), the jobs==1 path
    runs the chunks inline instead of taking the single-process shortcut,
    and a callback exception aborts the campaign after in-flight workers
    settle.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    scenarios = list(scenarios)
    policies = list(policies)
    config = config or CampaignConfig()
    if scenario_labels is None:
        scenario_labels = [f"S{index}" for index in range(len(scenarios))]
    labels = list(scenario_labels)

    num_cells = len(scenarios) * len(policies)
    time_shardable = _time_shardable(config, policies)
    # Captured once, here on the caller's thread: worker processes receive
    # it pickled per task so their spans join the caller's trace.
    trace_ctx = tracing.current_context()
    durable = completed is not None or on_shard_done is not None
    if durable:
        inline = jobs == 1 and executor is None
        return _run_cell_sharded(
            scenarios, labels, config, policies, trace, jobs, executor,
            False if inline else _use_arena(shared_memory), trace_ctx,
            completed=completed, on_shard_done=on_shard_done,
        )
    if jobs == 1 or (num_cells == 1 and not time_shardable):
        return FleetCampaign(
            scenarios, config, scenario_labels=labels
        ).run(policies, trace)

    use_arena = _use_arena(shared_memory)
    if num_cells < jobs and time_shardable and len(trace) >= 2 * jobs:
        return _run_time_sharded(
            scenarios, labels, config, policies, trace, jobs, executor,
            use_arena, trace_ctx,
        )
    return _run_cell_sharded(
        scenarios, labels, config, policies, trace, jobs, executor,
        use_arena, trace_ctx,
    )


def _run_arena_tasks(
    worker_fn: Callable,
    task_args: Sequence[tuple],
    context_payload: tuple,
    jobs: int,
    executor: Optional[Executor],
    profiler: Optional[PhaseProfiler] = None,
    on_shard: Optional[Callable[[arena.ArenaShard, arena.ArenaBlock], None]] = None,
) -> Tuple[List[arena.ArenaShard], List[arena.ArenaBlock]]:
    """Shared arena plumbing: publish context, run tasks, attach results.

    ``task_args`` are per-task argument tuples *without* the leading
    context ref and trailing segment name; both are injected here so the
    lifecycle stays in one place: the context segment is always released,
    and on any failure every pre-assigned result segment is swept once all
    workers have settled.  Returns the shards and their attached (already
    unlinked) blocks.  Each shard is attached -- and handed to
    ``on_shard`` -- as soon as its worker finishes, so callers can process
    (e.g. journal) completed shards while others still run.  ``profiler``
    times the parent-side transport phases (``context_publish``,
    ``arena_attach``) and absorbs each shard's worker-side phases; worker
    span records are ingested into the parent's trace recorder here.
    """
    if profiler is None:
        profiler = PhaseProfiler()
    with profiler.phase("context_publish"):
        context = arena.publish_context(context_payload)
    names = [arena.new_segment_name() for _ in task_args]
    # Keyed by submission index: shards attach in completion order, but
    # the returned block list must line up with the returned shard list.
    attached: Dict[int, arena.ArenaBlock] = {}

    def attach(index: int, shard: arena.ArenaShard) -> None:
        with profiler.phase("arena_attach"):
            block = arena.ArenaBlock.attach(shard)
        attached[index] = block
        profiler.merge(dict(shard.phase_s))
        tracing.ingest(shard.spans)
        if on_shard is not None:
            on_shard(shard, block)

    try:
        shards = _run_all_on_workers(
            worker_fn,
            [
                (context.ref, *args, name)
                for args, name in zip(task_args, names)
            ],
            jobs,
            executor,
            initializer=_warm_worker,
            initargs=(context.ref,),
            on_result=attach,
        )
        return shards, [attached[index] for index in range(len(shards))]
    except BaseException:
        for block in attached.values():  # already unlinked; free the pages
            block.close()
        for name in names:  # written-but-unattached segments still have names
            arena.release_segment(name)
        raise
    finally:
        context.release()


def _run_cell_sharded(
    scenarios: Sequence[HarvestScenario],
    labels: Sequence[str],
    config: CampaignConfig,
    policies: Sequence[Policy],
    trace: SolarTrace,
    jobs: int,
    executor: Optional[Executor] = None,
    use_arena: bool = False,
    trace_ctx: Optional[tracing.SpanContext] = None,
    completed: Optional[Dict[Tuple[int, int], CampaignResult]] = None,
    on_shard_done: Optional[
        Callable[[List[Tuple[int, int, CampaignResult]]], None]
    ] = None,
) -> FleetResult:
    """Split the grid cell-wise across a process pool and merge the rows.

    Cells in ``completed`` are excluded from the worker chunks and merged
    into the grid directly; ``on_shard_done`` fires per finished shard
    (see :func:`run_sharded_campaign`).
    """
    profiler = PhaseProfiler()
    chunks = shard_cells(len(scenarios), len(policies), jobs)
    grid: List[List[Optional[CampaignResult]]] = [
        [None] * len(policies) for _ in scenarios
    ]
    if completed:
        for (scenario_index, policy_index), result in completed.items():
            grid[scenario_index][policy_index] = result
        chunks = [
            [cell for cell in chunk if cell not in completed]
            for chunk in chunks
        ]
        chunks = [chunk for chunk in chunks if chunk]
    blocks: List[arena.ArenaBlock] = []

    def merge_cells(cells: List[Tuple[int, int, CampaignResult]]) -> None:
        for scenario_index, policy_index, result in cells:
            grid[scenario_index][policy_index] = result
        if on_shard_done is not None:
            on_shard_done(cells)

    if not chunks:
        pass  # every cell journaled already; nothing left to simulate
    elif jobs == 1 and executor is None:
        # Durable single-worker path: no pool, but still chunked so each
        # chunk's cells hit the journal as they finish.
        for chunk in chunks:
            merge_cells(
                _simulate_cell_chunk(
                    scenarios, labels, config, policies, trace, chunk, profiler
                )
            )
    elif use_arena:
        def merge_shard(
            shard: arena.ArenaShard, block: arena.ArenaBlock
        ) -> None:
            with profiler.phase("merge"):
                cells = []
                for slot in shard.cells:
                    columns, battery = arena.read_cell(block, slot)
                    cells.append((
                        slot.scenario_index,
                        slot.policy_index,
                        CampaignResult.from_columns(
                            slot.policy_name,
                            slot.alpha,
                            columns,
                            battery_charge_j=battery,
                        ),
                    ))
            merge_cells(cells)

        shards, blocks = _run_arena_tasks(
            _run_cell_shard_arena,
            [(chunk, trace_ctx) for chunk in chunks],
            (scenarios, labels, config, policies, trace),
            jobs,
            executor,
            profiler,
            on_shard=merge_shard,
        )
    else:
        def merge_pickled(_index: int, shard_result) -> None:
            cells, phases, spans = shard_result
            profiler.merge(phases)
            tracing.ingest(spans)
            with profiler.phase("merge"):
                merge_cells(cells)

        _run_all_on_workers(
            _run_cell_shard,
            [
                (scenarios, labels, config, policies, trace, chunk, trace_ctx)
                for chunk in chunks
            ],
            jobs,
            executor,
            on_result=merge_pickled,
        )
    missing = [
        (scenario_index, policy_index)
        for scenario_index, row in enumerate(grid)
        for policy_index, cell in enumerate(row)
        if cell is None
    ]
    if missing:  # a partial grid would silently shift policy indices
        for block in blocks:
            block.close()
        raise RuntimeError(f"shard workers left cells unfilled: {missing}")
    result = FleetResult(
        scenario_labels=labels,
        policies=policies,
        grid=grid,
        scan=None,
        trace_hours=len(trace),
    )
    result.adopt_arena(blocks)
    result.phase_timings = profiler.as_dict()
    return result


def _run_time_sharded(
    scenarios: Sequence[HarvestScenario],
    labels: Sequence[str],
    config: CampaignConfig,
    policies: Sequence[Policy],
    trace: SolarTrace,
    jobs: int,
    executor: Optional[Executor] = None,
    use_arena: bool = False,
    trace_ctx: Optional[tracing.SpanContext] = None,
) -> FleetResult:
    """Split the trace into contiguous slices and concat the merged columns."""
    profiler = PhaseProfiler()
    hours = len(trace)
    base, extra = divmod(hours, jobs)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for shard_index in range(jobs):
        size = base + (1 if shard_index < extra else 0)
        if size == 0:
            continue
        bounds.append((start, start + size))
        start += size
    blocks: List[arena.ArenaBlock] = []
    if use_arena:
        shards, blocks = _run_arena_tasks(
            _run_time_shard_arena,
            [(first, last, trace_ctx) for first, last in bounds],
            (scenarios, labels, config, policies, trace),
            jobs,
            executor,
            profiler,
        )
        slices: List[Dict[Tuple[int, int], CampaignColumns]] = []
        for shard, block in zip(shards, blocks):
            per_cell: Dict[Tuple[int, int], CampaignColumns] = {}
            for slot in shard.cells:
                columns, _ = arena.read_cell(block, slot)
                per_cell[(slot.scenario_index, slot.policy_index)] = columns
            slices.append(per_cell)
        parts_of = lambda s, p: [piece[(s, p)] for piece in slices]  # noqa: E731
    else:
        pickled: List[List[List[CampaignColumns]]] = []
        for grid_part, phases, spans in _map_on_workers(
            _run_time_shard,
            [
                (scenarios, labels, config, policies, trace, first, last,
                 trace_ctx)
                for first, last in bounds
            ],
            jobs,
            executor,
        ):
            profiler.merge(phases)
            tracing.ingest(spans)
            pickled.append(grid_part)
        parts_of = lambda s, p: [piece[s][p] for piece in pickled]  # noqa: E731
    grid: List[List[CampaignResult]] = []
    with profiler.phase("merge"):
        for scenario_index in range(len(scenarios)):
            row = []
            for policy_index, policy in enumerate(policies):
                columns = CampaignColumns.concat(
                    parts_of(scenario_index, policy_index)
                )
                row.append(
                    CampaignResult.from_columns(policy.name, policy.alpha, columns)
                )
            grid.append(row)
    result = FleetResult(
        scenario_labels=labels,
        policies=policies,
        grid=grid,
        scan=None,
        trace_hours=hours,
    )
    if len(bounds) > 1:
        # concat copied the views into fresh arrays; the mappings can go now.
        for block in blocks:
            block.close()
    else:
        result.adopt_arena(blocks)
    result.phase_timings = profiler.as_dict()
    return result


__all__ = ["run_sharded_campaign", "shard_cells"]
