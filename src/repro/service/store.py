"""Durable campaign job store: a write-ahead journal in SQLite.

The service's campaign jobs used to live in one process's dictionaries and
die with it.  This module makes the job lifecycle a *contract*: every
transition is appended to a journal **before** it is acknowledged
(persist-then-ack, the gridworks-scada proactor shape), so a ``POST
/v1/campaign`` id survives ``SIGKILL`` and any process that re-opens the
store can pick the job back up.

Journal model
-------------
One append-only ``journal`` table (monotonic ``seq``) of typed records,
each carrying a CRC-32 over its payload:

``submit``
    The full :class:`~repro.service.requests.CampaignRequest` JSON plus
    the optional idempotency key.  Appended -- and committed -- before the
    submit is acknowledged to the client.
``start``
    Execution began; records the resolved trace length.  A job may carry
    several ``start`` records (one per crash/recovery attempt).
``shard_done``
    One worker shard finished: the binary column frames of its (scenario,
    policy) cells (:meth:`repro.simulation.metrics.CampaignColumns.to_bytes`
    plus battery trajectories).  On recovery, cells with a journaled
    ``shard_done`` are *not* re-run.
``finish``
    The grid-shape meta payload.  The full result is never duplicated:
    :meth:`load_result` reassembles it from the journaled shard frames.
``fail`` / ``cancel`` / ``delete``
    Terminal transitions (``delete`` drops the job from :meth:`jobs`).

Recovery (:meth:`CampaignStore.__init__`) replays the journal in ``seq``
order.  A torn tail -- records whose CRC no longer matches, e.g. half a
write that a ``SIGKILL`` or disk fault left behind -- is *dropped cleanly*:
everything from the first bad record onward is deleted and the preceding
prefix stays authoritative.  A store file SQLite itself cannot read raises
:class:`StoreError` (the HTTP layer answers ``store_unavailable``).

Durability bound
----------------
The store runs SQLite in WAL mode.  ``sync="normal"`` (the default) lets
SQLite fsync only at WAL checkpoints -- journaling stays off the campaign
hot path (bounded fsyncs) and every acknowledged record survives process
death (``SIGKILL``) unconditionally; an OS crash may drop the tail of
un-checkpointed acknowledgements.  ``sync="full"`` fsyncs every commit for
power-failure durability at higher latency (``repro serve --store-sync``).

Leases
------
Multi-process front-ends (``repro serve --procs N``) coordinate *solely*
through the store: before running a job, a front-end takes an advisory
lease (``BEGIN IMMEDIATE`` makes claims atomic across processes).  A lease
names its owner as ``host:pid:token`` and expires after a TTL; an owner
whose pid is no longer alive on this host is treated as expired
immediately, so a killed server's jobs can be adopted by the next process
without waiting out the TTL.  Leases are renewed on every shard
completion, never held by two processes at once -- two front-ends can
never run the same shard.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import struct
import threading
import time
import uuid
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import tracing
from repro.service.requests import CampaignRequest

#: Journal record kinds, in lifecycle order.  ``lease_acquire`` /
#: ``lease_steal`` / ``recover`` are pure observability records -- they
#: surface PR 9's coordination in the ``/v1/campaign/<id>/events``
#: timeline but contribute nothing to replayed job state.
RECORD_KINDS = (
    "submit", "start", "lease_acquire", "lease_steal", "shard_done",
    "recover", "finish", "fail", "cancel", "delete",
)

#: Record kinds that annotate a job without defining its state; replay
#: never creates a :class:`JobRecord` for them (a late lease record must
#: not resurrect a deleted job).
_EVENT_ONLY_KINDS = ("lease_acquire", "lease_steal", "recover")

#: Non-terminal statuses a re-opened store offers for recovery.
RESUMABLE_STATUSES = ("queued", "running")

#: Default advisory-lease TTL; a backstop only -- dead owners are detected
#: by pid liveness and expire immediately.
DEFAULT_LEASE_TTL_S = 120.0

#: Completed spans persisted past ``max_spans`` are deleted oldest-first
#: (ring-buffer retention) so the trace table stays bounded forever.
DEFAULT_SPAN_RETENTION = 20000

#: Snapshots not re-published within this window are stale: excluded
#: from the cluster scope and eventually deleted.
DEFAULT_SNAPSHOT_TTL_S = 15.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS journal (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id TEXT NOT NULL,
    kind TEXT NOT NULL,
    payload BLOB NOT NULL,
    crc INTEGER NOT NULL,
    created_at REAL NOT NULL,
    owner TEXT
);
CREATE INDEX IF NOT EXISTS journal_job ON journal (job_id, seq);
CREATE TABLE IF NOT EXISTS idempotency (
    key TEXT PRIMARY KEY,
    job_id TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS leases (
    job_id TEXT PRIMARY KEY,
    owner TEXT NOT NULL,
    expires_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshots (
    proc TEXT PRIMARY KEY,
    payload BLOB NOT NULL,
    published_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS spans (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    trace_id TEXT NOT NULL,
    record BLOB NOT NULL,
    created_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS spans_trace ON spans (trace_id, id);
"""


class StoreError(RuntimeError):
    """The store file is unusable (unreadable, corrupt, or incomplete)."""


@dataclass
class JobRecord:
    """One job's state as replayed from the journal."""

    job_id: str
    status: str = "queued"
    request: Optional[CampaignRequest] = None
    error: Optional[str] = None
    trace_hours: int = 0
    created_at: float = 0.0
    idempotency_key: Optional[str] = None
    #: Journal seqs of this job's ``shard_done`` records (payloads are
    #: decoded lazily -- replaying a big store must not load every column).
    shard_seqs: List[int] = field(default_factory=list)
    #: (scenario_index, policy_index) cells covered by journaled shards.
    done_cells: List[Tuple[int, int]] = field(default_factory=list)
    #: Grid meta of the ``finish`` record (``None`` until finished).
    result_meta: Optional[Dict[str, Any]] = None

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.status in ("done", "failed", "cancelled")


# --- cell frame codec ---------------------------------------------------------
def _frame(blob: bytes) -> bytes:
    return struct.pack("<Q", len(blob)) + blob


def _read_frame(blob: bytes, offset: int, what: str) -> Tuple[bytes, int]:
    if offset + 8 > len(blob):
        raise StoreError(f"journal payload truncated before {what}")
    (length,) = struct.unpack_from("<Q", blob, offset)
    offset += 8
    if offset + length > len(blob):
        raise StoreError(f"journal payload truncated inside {what}")
    return blob[offset : offset + length], offset + length


def encode_cells(cells: Sequence[Tuple[int, int, Any]]) -> bytes:
    """Serialize one shard's (scenario, policy, CampaignResult) cells.

    Per cell: a length-prefixed JSON header, the cell's
    :meth:`~repro.simulation.metrics.CampaignColumns.to_bytes` frame
    (zlib-deflated float64 -- the lossless wire dtype) and, when present,
    a deflated ``<f8`` battery-trajectory frame.  The decoded cells equal
    the originals to the last bit; this is what makes "re-run only the
    unfinished shards" exact rather than approximate.
    """
    # Imported here: the store must be usable (recovery, status queries)
    # without paying for the simulation stack.
    from repro.simulation.metrics import CampaignColumns

    parts: List[bytes] = []
    for scenario_index, policy_index, result in cells:
        columns = result.columns
        if columns is None:
            columns = CampaignColumns.from_outcomes(result.outcomes)
        battery = result.battery_charge_j
        header = {
            "scenario_index": int(scenario_index),
            "policy_index": int(policy_index),
            "policy_name": str(result.policy_name),
            "alpha": float(result.alpha),
            "has_battery": battery is not None,
        }
        parts.append(
            _frame(json.dumps(header, separators=(",", ":")).encode("utf-8"))
        )
        parts.append(_frame(columns.to_bytes("<f8", compress=True)))
        if battery is not None:
            import numpy as np

            blob = np.ascontiguousarray(battery, dtype="<f8").tobytes()
            parts.append(_frame(zlib.compress(blob, 6)))
    return b"".join(parts)


def decode_cells(blob: bytes) -> List[Tuple[int, int, Any]]:
    """Decode one :func:`encode_cells` payload back into grid cells."""
    import numpy as np

    from repro.simulation.metrics import CampaignColumns, CampaignResult

    cells: List[Tuple[int, int, Any]] = []
    offset = 0
    index = 0
    while offset < len(blob):
        head_blob, offset = _read_frame(blob, offset, f"cell {index} header")
        try:
            head = json.loads(head_blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StoreError(f"malformed cell {index} header: {error}") from error
        columns_blob, offset = _read_frame(blob, offset, f"cell {index} columns")
        try:
            columns = CampaignColumns.from_bytes(columns_blob)
        except ValueError as error:
            raise StoreError(f"malformed cell {index} columns: {error}") from error
        battery = None
        if head.get("has_battery"):
            battery_blob, offset = _read_frame(
                blob, offset, f"cell {index} battery"
            )
            try:
                battery_bytes = zlib.decompress(battery_blob)
            except zlib.error as error:
                raise StoreError(
                    f"cell {index} battery frame corrupt: {error}"
                ) from error
            battery = np.frombuffer(battery_bytes, dtype="<f8").astype(float)
        cells.append((
            int(head["scenario_index"]),
            int(head["policy_index"]),
            CampaignResult.from_columns(
                str(head["policy_name"]),
                float(head["alpha"]),
                columns,
                battery_charge_j=battery,
            ),
        ))
        index += 1
    return cells


def _default_owner() -> str:
    """``host:pid:token`` -- pid enables dead-owner detection on this host."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


def _owner_alive(owner: str) -> bool:
    """Whether a lease owner's process still runs on this host.

    Owners from other hosts (or unparsable owners) are conservatively
    treated as alive -- only the TTL expires them.
    """
    parts = owner.split(":")
    if len(parts) != 3 or parts[0] != socket.gethostname():
        return True
    try:
        pid = int(parts[1])
    except ValueError:
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class StoreStats:
    """Thread-safe operation counters (surfaced in ``/stats``, ``/metrics``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.appends: Dict[str, int] = {}
        self.append_bytes = 0
        self.records_dropped = 0
        self.jobs_recovered = 0
        self.results_reloaded = 0
        self.leases_acquired = 0
        self.leases_stolen = 0
        self.leases_rejected = 0
        self.snapshots_published = 0
        self.spans_persisted = 0

    def record_append(self, kind: str, nbytes: int) -> None:
        with self._lock:
            self.appends[kind] = self.appends.get(kind, 0) + 1
            self.append_bytes += nbytes

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def to_json_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "appends": dict(sorted(self.appends.items())),
                "append_bytes": self.append_bytes,
                "records_dropped": self.records_dropped,
                "jobs_recovered": self.jobs_recovered,
                "results_reloaded": self.results_reloaded,
                "leases": {
                    "acquired": self.leases_acquired,
                    "stolen": self.leases_stolen,
                    "rejected": self.leases_rejected,
                },
                "snapshots_published": self.snapshots_published,
                "spans_persisted": self.spans_persisted,
            }


class CampaignStore:
    """Write-ahead campaign job store on one SQLite file (see module docs).

    Thread-safe within a process (one connection, one lock) and safe
    across processes (WAL + ``BEGIN IMMEDIATE`` transactions); every
    public method may also raise :class:`StoreError` when the underlying
    file has become unusable.
    """

    def __init__(
        self,
        path: str,
        sync: str = "normal",
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        owner: Optional[str] = None,
    ) -> None:
        if sync not in ("normal", "full"):
            raise ValueError(f"sync must be 'normal' or 'full', got {sync!r}")
        if lease_ttl_s <= 0:
            raise ValueError(f"lease TTL must be positive, got {lease_ttl_s}")
        self.path = str(path)
        self.sync = sync
        self.lease_ttl_s = float(lease_ttl_s)
        #: This process's lease identity (``host:pid:token``).
        self.owner = owner if owner is not None else _default_owner()
        #: The journal's ``owner`` column / cluster identity: ``host:pid``.
        self.proc = ":".join(self.owner.split(":")[:2])
        self.stats = StoreStats()
        self._lock = threading.RLock()
        parent = Path(self.path).resolve().parent
        parent.mkdir(parents=True, exist_ok=True)
        try:
            self._db = sqlite3.connect(
                self.path,
                timeout=30.0,
                check_same_thread=False,
                isolation_level=None,  # autocommit; explicit BEGIN IMMEDIATE
            )
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute(
                "PRAGMA synchronous=%s"
                % ("FULL" if sync == "full" else "NORMAL")
            )
            self._db.executescript(_SCHEMA)
            self._migrate_journal_owner()
            self._drop_torn_tail()
        except sqlite3.DatabaseError as error:
            raise StoreError(
                f"cannot open campaign store {self.path!r}: {error}"
            ) from error

    # --- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Close the SQLite connection (idempotent)."""
        with self._lock:
            if self._db is not None:
                self._db.close()
                self._db = None  # type: ignore[assignment]

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _connection(self) -> sqlite3.Connection:
        if self._db is None:
            raise StoreError(f"campaign store {self.path!r} is closed")
        return self._db

    def _migrate_journal_owner(self) -> None:
        """Add the ``owner`` column to journals created before PR 10.

        ``CREATE TABLE IF NOT EXISTS`` never alters an existing table, so
        a store from an older server lacks the column; records it wrote
        keep ``owner = NULL`` in the events timeline, which is honest --
        their writer was never recorded.
        """
        columns = {
            str(row[1])
            for row in self._db.execute("PRAGMA table_info(journal)")
        }
        if "owner" not in columns:
            self._db.execute("ALTER TABLE journal ADD COLUMN owner TEXT")

    def _drop_torn_tail(self) -> None:
        """Drop every journal record from the first CRC mismatch onward.

        A torn record means the tail of the journal is suspect; keeping
        anything after it could resurrect acknowledgements that never
        fully happened.  The surviving prefix is exactly the acknowledged
        history.
        """
        rows = self._db.execute(
            "SELECT seq, payload, crc FROM journal ORDER BY seq"
        ).fetchall()
        bad_seq: Optional[int] = None
        for seq, payload, crc in rows:
            if payload is None or zlib.crc32(payload) != crc:
                bad_seq = seq
                break
        if bad_seq is not None:
            dropped = self._db.execute(
                "SELECT COUNT(*) FROM journal WHERE seq >= ?", (bad_seq,)
            ).fetchone()[0]
            self._db.execute("DELETE FROM journal WHERE seq >= ?", (bad_seq,))
            self.stats.bump("records_dropped", int(dropped))

    # --- journal appends ----------------------------------------------------------
    def _append(self, job_id: str, kind: str, payload: bytes) -> int:
        """Append one journal record and commit it (the ack barrier)."""
        assert kind in RECORD_KINDS, kind
        started = time.time()
        clock = time.perf_counter()
        with self._lock:
            db = self._connection()
            try:
                cursor = db.execute(
                    "INSERT INTO journal (job_id, kind, payload, crc, "
                    "created_at, owner) VALUES (?, ?, ?, ?, ?, ?)",
                    (job_id, kind, payload, zlib.crc32(payload), started,
                     self.proc),
                )
            except sqlite3.DatabaseError as error:
                raise StoreError(f"journal append failed: {error}") from error
            seq = int(cursor.lastrowid)
        self.stats.record_append(kind, len(payload))
        parent = tracing.current_context()
        if parent is not None:
            tracing.record_span(
                "store.append",
                parent,
                started,
                time.perf_counter() - clock,
                job_id=job_id,
                kind=kind,
                bytes=len(payload),
            )
        return seq

    @staticmethod
    def _json_payload(payload: Dict[str, Any]) -> bytes:
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    def submit(
        self,
        request: CampaignRequest,
        idempotency_key: Optional[str] = None,
    ) -> Tuple[str, bool]:
        """Journal one submission; returns ``(job_id, created)``.

        The record is committed before this returns -- the ack the HTTP
        layer sends is backed by disk.  With an ``idempotency_key`` the
        submit is exactly-once: a key seen before returns the original
        job id with ``created=False`` and journals nothing.
        """
        with self._lock:
            db = self._connection()
            try:
                db.execute("BEGIN IMMEDIATE")
                try:
                    if idempotency_key is not None:
                        row = db.execute(
                            "SELECT job_id FROM idempotency WHERE key = ?",
                            (idempotency_key,),
                        ).fetchone()
                        if row is not None:
                            return str(row[0]), False
                    job_id = f"c{self._next_job_number(db)}"
                    payload = self._json_payload({
                        "request": request.to_json_dict(),
                        "idempotency_key": idempotency_key,
                    })
                    db.execute(
                        "INSERT INTO journal (job_id, kind, payload, crc, "
                        "created_at, owner) VALUES (?, ?, ?, ?, ?, ?)",
                        (job_id, "submit", payload, zlib.crc32(payload),
                         time.time(), self.proc),
                    )
                    if idempotency_key is not None:
                        db.execute(
                            "INSERT INTO idempotency (key, job_id) "
                            "VALUES (?, ?)",
                            (idempotency_key, job_id),
                        )
                finally:
                    db.execute("COMMIT")
            except sqlite3.DatabaseError as error:
                raise StoreError(f"submit append failed: {error}") from error
        self.stats.record_append("submit", len(payload))
        return job_id, True

    @staticmethod
    def _next_job_number(db: sqlite3.Connection) -> int:
        """Monotonic job counter, unique across restarts *and* processes."""
        row = db.execute(
            "SELECT value FROM counters WHERE name = 'job'"
        ).fetchone()
        value = (int(row[0]) if row is not None else 0) + 1
        db.execute(
            "INSERT INTO counters (name, value) VALUES ('job', ?) "
            "ON CONFLICT(name) DO UPDATE SET value = excluded.value",
            (value,),
        )
        return value

    def start(self, job_id: str, trace_hours: int) -> None:
        """Journal the start (or restart) of execution."""
        self._append(
            job_id, "start", self._json_payload({"trace_hours": int(trace_hours)})
        )

    def shard_done(
        self, job_id: str, cells: Sequence[Tuple[int, int, Any]]
    ) -> None:
        """Journal one completed shard's cells (persist before proceeding)."""
        self._append(job_id, "shard_done", encode_cells(cells))

    def finish(self, job_id: str, result: Any) -> None:
        """Journal completion; columns stay in the shard records."""
        self._append(
            job_id, "finish", self._json_payload(dict(result.meta_payload()))
        )

    def fail(self, job_id: str, error: str) -> None:
        """Journal a terminal failure."""
        self._append(job_id, "fail", self._json_payload({"error": str(error)}))

    def cancel(self, job_id: str) -> None:
        """Journal a cancellation request/transition."""
        self._append(job_id, "cancel", self._json_payload({}))

    def delete(self, job_id: str) -> None:
        """Journal deletion; the id disappears from :meth:`jobs`."""
        self._append(job_id, "delete", self._json_payload({}))

    def recover(self, job_id: str, reason: str = "adopted") -> None:
        """Journal an adoption/recovery of an abandoned job (event-only)."""
        self._append(
            job_id, "recover", self._json_payload({"reason": str(reason)})
        )

    # --- replay / queries ---------------------------------------------------------
    def jobs(self) -> Dict[str, JobRecord]:
        """Replay the journal into per-job state (shard payloads stay lazy)."""
        with self._lock:
            db = self._connection()
            try:
                rows = db.execute(
                    "SELECT seq, job_id, kind, payload, created_at "
                    "FROM journal ORDER BY seq"
                ).fetchall()
            except sqlite3.DatabaseError as error:
                raise StoreError(f"journal replay failed: {error}") from error
        records: Dict[str, JobRecord] = {}
        for seq, job_id, kind, payload, created_at in rows:
            record = records.get(job_id)
            if record is None:
                if kind in _EVENT_ONLY_KINDS:
                    continue  # annotations never resurrect a deleted job
                record = records[job_id] = JobRecord(job_id=job_id)
            if kind == "submit":
                body = self._decode_json(seq, payload)
                record.created_at = float(created_at)
                record.idempotency_key = body.get("idempotency_key")
                try:
                    record.request = CampaignRequest.from_json_dict(
                        body.get("request", {})
                    )
                except (ValueError, KeyError, TypeError) as error:
                    raise StoreError(
                        f"journal record {seq} has an undecodable campaign "
                        f"request: {error}"
                    ) from error
                record.status = "queued"
            elif kind == "start":
                record.trace_hours = int(
                    self._decode_json(seq, payload).get("trace_hours", 0)
                )
                record.status = "running"
            elif kind == "shard_done":
                record.shard_seqs.append(int(seq))
                record.done_cells.extend(self._shard_cell_ids(payload, seq))
            elif kind == "finish":
                record.result_meta = self._decode_json(seq, payload)
                record.status = "done"
            elif kind == "fail":
                record.error = self._decode_json(seq, payload).get("error")
                record.status = "failed"
            elif kind == "cancel":
                if record.status not in ("done", "failed"):
                    record.status = "cancelled"
            elif kind == "delete":
                records.pop(job_id, None)
        return records

    def job(self, job_id: str) -> Optional[JobRecord]:
        """One job's replayed state, or ``None`` for unknown/deleted ids."""
        return self.jobs().get(job_id)

    @staticmethod
    def _decode_json(seq: int, payload: bytes) -> Dict[str, Any]:
        try:
            body = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StoreError(
                f"journal record {seq} has an undecodable payload: {error}"
            ) from error
        if not isinstance(body, dict):
            raise StoreError(f"journal record {seq} payload is not an object")
        return body

    @staticmethod
    def _shard_cell_ids(payload: bytes, seq: int) -> List[Tuple[int, int]]:
        """The (scenario, policy) ids of one shard payload, headers only."""
        ids: List[Tuple[int, int]] = []
        offset = 0
        index = 0
        while offset < len(payload):
            try:
                head_blob, offset = _read_frame(
                    payload, offset, f"cell {index} header"
                )
                head = json.loads(head_blob.decode("utf-8"))
                columns_blob, offset = _read_frame(
                    payload, offset, f"cell {index} columns"
                )
                del columns_blob
                if head.get("has_battery"):
                    _, offset = _read_frame(
                        payload, offset, f"cell {index} battery"
                    )
            except (StoreError, UnicodeDecodeError, json.JSONDecodeError) as error:
                raise StoreError(
                    f"journal record {seq} shard payload is malformed: {error}"
                ) from error
            ids.append((int(head["scenario_index"]), int(head["policy_index"])))
            index += 1
        return ids

    def done_cells(self, job_id: str) -> Dict[Tuple[int, int], Any]:
        """Decode every journaled shard of one job into grid cells.

        Later records win on duplicate (scenario, policy) ids -- duplicates
        only arise from a crash between a shard's completion and its
        in-memory accounting, and both copies are bit-identical anyway.
        """
        with self._lock:
            db = self._connection()
            try:
                rows = db.execute(
                    "SELECT seq, payload FROM journal "
                    "WHERE job_id = ? AND kind = 'shard_done' ORDER BY seq",
                    (job_id,),
                ).fetchall()
            except sqlite3.DatabaseError as error:
                raise StoreError(f"shard replay failed: {error}") from error
        cells: Dict[Tuple[int, int], Any] = {}
        for _seq, payload in rows:
            for scenario_index, policy_index, result in decode_cells(payload):
                cells[(scenario_index, policy_index)] = result
        return cells

    def load_result(self, job_id: str):
        """Reassemble a finished job's :class:`FleetResult` from the journal.

        This is the disk-backed answer to ``GET /v1/campaign/<id>`` after
        an eviction or a restart: the meta frame of the ``finish`` record
        plus every journaled shard cell.  Raises :class:`StoreError` when
        the job is not finished or the journal is missing cells.
        """
        from repro.simulation.fleet import FleetResult

        record = self.job(job_id)
        if record is None:
            raise StoreError(f"unknown job {job_id!r}")
        if record.status != "done" or record.result_meta is None:
            raise StoreError(
                f"job {job_id!r} is {record.status}; only finished jobs "
                "have a stored result"
            )
        meta = record.result_meta
        labels = list(meta["scenario_labels"])
        names = list(meta["policy_names"])
        grid: List[List[Optional[Any]]] = [[None] * len(names) for _ in labels]
        for (scenario_index, policy_index), cell in self.done_cells(
            job_id
        ).items():
            grid[scenario_index][policy_index] = cell
        missing = [
            (scenario_index, policy_index)
            for scenario_index, row in enumerate(grid)
            for policy_index, value in enumerate(row)
            if value is None
        ]
        if missing:
            raise StoreError(
                f"stored job {job_id!r} is missing cells {missing}; the "
                "journal does not cover its grid"
            )
        self.stats.bump("results_reloaded")
        return FleetResult(
            scenario_labels=labels,
            grid=grid,  # type: ignore[arg-type]
            scan=None,
            trace_hours=int(meta["trace_hours"]),
            policy_names=names,
            alphas=[float(alpha) for alpha in meta["alphas"]],
        )

    def is_cancelled(self, job_id: str) -> bool:
        """Whether a ``cancel`` record exists for this job (cheap poll)."""
        with self._lock:
            db = self._connection()
            try:
                row = db.execute(
                    "SELECT 1 FROM journal WHERE job_id = ? AND "
                    "kind = 'cancel' LIMIT 1",
                    (job_id,),
                ).fetchone()
            except sqlite3.DatabaseError as error:
                raise StoreError(f"cancel poll failed: {error}") from error
        return row is not None

    # --- leases -------------------------------------------------------------------
    def acquire_lease(
        self, job_id: str, ttl_s: Optional[float] = None
    ) -> bool:
        """Claim the advisory run lease on one job (atomic across processes).

        Succeeds when the job is unleased, already ours, expired, or held
        by a process that no longer exists on this host.  Returns ``False``
        when another live owner holds it -- the caller must not run the
        job's shards.
        """
        ttl = float(ttl_s) if ttl_s is not None else self.lease_ttl_s
        now = time.time()
        with self._lock:
            db = self._connection()
            try:
                db.execute("BEGIN IMMEDIATE")
                try:
                    row = db.execute(
                        "SELECT owner, expires_at FROM leases WHERE job_id = ?",
                        (job_id,),
                    ).fetchone()
                    stolen = False
                    previous_owner: Optional[str] = None
                    if row is not None:
                        owner, expires_at = str(row[0]), float(row[1])
                        if owner != self.owner:
                            if expires_at > now and _owner_alive(owner):
                                self.stats.bump("leases_rejected")
                                return False
                            stolen = True
                            previous_owner = owner
                    db.execute(
                        "INSERT INTO leases (job_id, owner, expires_at) "
                        "VALUES (?, ?, ?) ON CONFLICT(job_id) DO UPDATE SET "
                        "owner = excluded.owner, expires_at = excluded.expires_at",
                        (job_id, self.owner, now + ttl),
                    )
                finally:
                    db.execute("COMMIT")
            except sqlite3.DatabaseError as error:
                raise StoreError(f"lease acquire failed: {error}") from error
        self.stats.bump("leases_stolen" if stolen else "leases_acquired")
        # Journaled after the claim commits: the timeline records who won,
        # and a steal names the owner it displaced.
        if stolen:
            self._append(
                job_id, "lease_steal",
                self._json_payload({"previous_owner": previous_owner}),
            )
        else:
            self._append(job_id, "lease_acquire", self._json_payload({}))
        return True

    def renew_lease(self, job_id: str, ttl_s: Optional[float] = None) -> bool:
        """Extend our lease; ``False`` when it is no longer ours."""
        ttl = float(ttl_s) if ttl_s is not None else self.lease_ttl_s
        with self._lock:
            db = self._connection()
            try:
                cursor = db.execute(
                    "UPDATE leases SET expires_at = ? "
                    "WHERE job_id = ? AND owner = ?",
                    (time.time() + ttl, job_id, self.owner),
                )
            except sqlite3.DatabaseError as error:
                raise StoreError(f"lease renew failed: {error}") from error
        return cursor.rowcount > 0

    def release_lease(self, job_id: str) -> None:
        """Drop our lease (no-op when it is not ours)."""
        with self._lock:
            db = self._connection()
            try:
                db.execute(
                    "DELETE FROM leases WHERE job_id = ? AND owner = ?",
                    (job_id, self.owner),
                )
            except sqlite3.DatabaseError as error:
                raise StoreError(f"lease release failed: {error}") from error

    def lease_holder(self, job_id: str) -> Optional[Tuple[str, float]]:
        """The current ``(owner, expires_at)`` of a job's lease, if any."""
        with self._lock:
            db = self._connection()
            try:
                row = db.execute(
                    "SELECT owner, expires_at FROM leases WHERE job_id = ?",
                    (job_id,),
                ).fetchone()
            except sqlite3.DatabaseError as error:
                raise StoreError(f"lease lookup failed: {error}") from error
        return None if row is None else (str(row[0]), float(row[1]))

    def lease_abandoned(self, job_id: str) -> bool:
        """Whether a job's lease is absent, expired, or owned by the dead.

        ``True`` means no live process is driving the job -- a front-end
        that notices this may adopt it (acquire + resume).
        """
        holder = self.lease_holder(job_id)
        if holder is None:
            return True
        owner, expires_at = holder
        if owner == self.owner:
            return False
        return expires_at <= time.time() or not _owner_alive(owner)

    # --- events timeline ----------------------------------------------------------
    def events(self, job_id: str) -> List[Dict[str, Any]]:
        """One job's journal as a human-readable lifecycle timeline.

        Each row: ``seq``, ``kind``, ``at`` (epoch seconds), ``owner``
        (the writing process's ``host:pid``; ``None`` for records from a
        pre-PR-10 store) and a light ``details`` object -- shard records
        surface their cell ids from the frame headers without decoding
        any column payloads, so the timeline stays cheap on big jobs.
        """
        with self._lock:
            db = self._connection()
            try:
                rows = db.execute(
                    "SELECT seq, kind, payload, created_at, owner "
                    "FROM journal WHERE job_id = ? ORDER BY seq",
                    (job_id,),
                ).fetchall()
            except sqlite3.DatabaseError as error:
                raise StoreError(f"events query failed: {error}") from error
        events: List[Dict[str, Any]] = []
        for seq, kind, payload, created_at, owner in rows:
            details: Dict[str, Any] = {}
            if kind == "shard_done":
                details["cells"] = [
                    [scenario_index, policy_index]
                    for scenario_index, policy_index
                    in self._shard_cell_ids(payload, seq)
                ]
            elif kind in ("submit", "finish"):
                pass  # request/meta payloads are status-endpoint material
            else:
                details = self._decode_json(seq, payload)
            events.append({
                "seq": int(seq),
                "kind": str(kind),
                "at": float(created_at),
                "owner": None if owner is None else str(owner),
                "details": details,
            })
        return events

    def recent_lease_steals(self, limit: int = 10) -> List[Dict[str, Any]]:
        """The newest ``lease_steal`` records, most recent first."""
        with self._lock:
            db = self._connection()
            try:
                rows = db.execute(
                    "SELECT seq, job_id, payload, created_at, owner "
                    "FROM journal WHERE kind = 'lease_steal' "
                    "ORDER BY seq DESC LIMIT ?",
                    (int(limit),),
                ).fetchall()
            except sqlite3.DatabaseError as error:
                raise StoreError(f"steal query failed: {error}") from error
        return [
            {
                "seq": int(seq),
                "job_id": str(job_id),
                "at": float(created_at),
                "owner": None if owner is None else str(owner),
                "previous_owner":
                    self._decode_json(seq, payload).get("previous_owner"),
            }
            for seq, job_id, payload, created_at, owner in rows
        ]

    # --- observability snapshots --------------------------------------------------
    def publish_snapshot(
        self, payload: bytes, proc: Optional[str] = None
    ) -> None:
        """Upsert this process's observability snapshot (the heartbeat).

        Re-publication refreshes ``published_at``; a process that stops
        publishing (crashed, hung, SIGKILLed) ages out of
        :meth:`live_snapshots` after the TTL.
        """
        if proc is None:
            proc = self.proc
        with self._lock:
            db = self._connection()
            try:
                db.execute(
                    "INSERT INTO snapshots (proc, payload, published_at) "
                    "VALUES (?, ?, ?) ON CONFLICT(proc) DO UPDATE SET "
                    "payload = excluded.payload, "
                    "published_at = excluded.published_at",
                    (proc, payload, time.time()),
                )
            except sqlite3.DatabaseError as error:
                raise StoreError(f"snapshot publish failed: {error}") from error
        self.stats.bump("snapshots_published")

    def live_snapshots(
        self, ttl_s: float = DEFAULT_SNAPSHOT_TTL_S
    ) -> List[Tuple[str, bytes, float]]:
        """Every live process's ``(proc, payload, published_at)``.

        A snapshot is live when it was published within ``ttl_s`` *and*
        its process still exists (same-host pids are probed directly, so
        a SIGKILLed front-end disappears immediately instead of lingering
        for the TTL).  Dead and stale rows are deleted on the way out --
        the table can never outgrow the set of recently live processes.
        """
        now = time.time()
        with self._lock:
            db = self._connection()
            try:
                rows = db.execute(
                    "SELECT proc, payload, published_at FROM snapshots"
                ).fetchall()
                live: List[Tuple[str, bytes, float]] = []
                dead: List[str] = []
                for proc, payload, published_at in rows:
                    proc = str(proc)
                    fresh = float(published_at) >= now - float(ttl_s)
                    if fresh and _owner_alive(f"{proc}:x"):
                        live.append((proc, payload, float(published_at)))
                    else:
                        dead.append(proc)
                for proc in dead:
                    db.execute(
                        "DELETE FROM snapshots WHERE proc = ?", (proc,)
                    )
            except sqlite3.DatabaseError as error:
                raise StoreError(f"snapshot query failed: {error}") from error
        return sorted(live)

    # --- durable spans ------------------------------------------------------------
    def persist_spans(
        self,
        records: Sequence[Dict[str, Any]],
        retention: int = DEFAULT_SPAN_RETENTION,
    ) -> int:
        """Persist finished span records; oldest rows beyond ``retention``
        are deleted (ring-buffer semantics).  Returns how many were
        written."""
        rows = []
        now = time.time()
        for record in records:
            trace_id = record.get("trace_id")
            if not trace_id:
                continue
            rows.append((
                str(trace_id),
                json.dumps(record, separators=(",", ":"),
                           default=str).encode("utf-8"),
                now,
            ))
        if not rows:
            return 0
        with self._lock:
            db = self._connection()
            try:
                db.executemany(
                    "INSERT INTO spans (trace_id, record, created_at) "
                    "VALUES (?, ?, ?)",
                    rows,
                )
                db.execute(
                    "DELETE FROM spans WHERE id <= "
                    "(SELECT MAX(id) FROM spans) - ?",
                    (int(retention),),
                )
            except sqlite3.DatabaseError as error:
                raise StoreError(f"span persist failed: {error}") from error
        self.stats.bump("spans_persisted", len(rows))
        return len(rows)

    def trace_spans(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every persisted span of one trace, start-ordered ([] if none)."""
        with self._lock:
            db = self._connection()
            try:
                rows = db.execute(
                    "SELECT record FROM spans WHERE trace_id = ? ORDER BY id",
                    (trace_id,),
                ).fetchall()
            except sqlite3.DatabaseError as error:
                raise StoreError(f"span query failed: {error}") from error
        spans = []
        for (record,) in rows:
            try:
                spans.append(json.loads(record.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue  # one corrupt row must not hide the trace
        return sorted(spans, key=lambda span: span.get("start_s", 0.0))

    # --- introspection ------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """Store block of the ``/stats`` payload."""
        payload = {
            "path": self.path,
            "sync": self.sync,
            "owner": self.owner,
        }
        payload.update(self.stats.to_json_dict())
        return payload


__all__ = [
    "CampaignStore",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_SNAPSHOT_TTL_S",
    "DEFAULT_SPAN_RETENTION",
    "JobRecord",
    "RECORD_KINDS",
    "RESUMABLE_STATUSES",
    "StoreError",
    "StoreStats",
    "decode_cells",
    "encode_cells",
]
