"""Thread-safe metrics registry with Prometheus text exposition.

The service historically kept its counters in ad-hoc classes surfaced
only through the ``/stats`` JSON bag.  This module generalises that layer
into a small, dependency-free metrics registry:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` families with
  optional label dimensions, each family guarded by one lock so worker
  threads and the event loop can record concurrently.
* Histograms share the service's log2 bucket scheme
  (:data:`LOG2_BOUNDS_S`: 1 microsecond doubling up through ~67 seconds,
  plus an overflow bucket) so recording stays O(1) with a fixed ~30-int
  footprint per label set regardless of traffic.
* :meth:`MetricsRegistry.render` emits the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` headers, ``_bucket{le=...}`` /
  ``_sum`` / ``_count`` histogram series) for ``GET /metrics``.
* :meth:`MetricsRegistry.callback` registers sample *functions* so
  pre-existing counter objects (cache stats, batcher stats, pool
  counters) can be scraped at exposition time without being rewritten.

PR 7's :class:`LatencyHistogram` and :class:`EndpointLatencies` live here
now (``repro.service.cache`` re-exports them for compatibility); the
per-endpoint histograms plug into the registry through
:func:`latency_histogram_samples`.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Upper bounds of the log2 histogram buckets, in seconds (1 us .. ~67 s).
LOG2_BOUNDS_S = tuple(1e-6 * 2.0**exponent for exponent in range(27))

#: One exposition sample: (name suffix, label mapping, value).  The suffix
#: is ``""`` for plain series and ``"_bucket"`` / ``"_sum"`` / ``"_count"``
#: for histogram series.
Sample = Tuple[str, Mapping[str, str], float]


def format_value(value: float) -> str:
    """Render one sample value the way Prometheus expects.

    Integral values print without a fractional part (counter increments
    stay readable and golden-testable); everything else uses ``repr`` so
    no precision is lost on the wire.
    """
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def format_labels(labels: Mapping[str, Any]) -> str:
    """Render a label mapping as ``{key="value",...}`` (empty when none)."""
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        value = str(labels[key]).replace("\\", "\\\\").replace('"', '\\"')
        value = value.replace("\n", "\\n")
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def _label_key(
    labelnames: Sequence[str], labels: Mapping[str, Any]
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {tuple(labelnames)}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Family:
    """Common shape of one registered metric family."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def samples(self) -> List[Sample]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Family):
    """Monotonically increasing counter family."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be non-negative) to one label set's count."""
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current count of one label set (0.0 before any increment)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Sample]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            ("", dict(zip(self.labelnames, key)), value)
            for key, value in items
        ]


class Gauge(_Family):
    """Set-to-current-value gauge family."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set one label set's value."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: Any) -> float:
        """Current value of one label set (0.0 before any set)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Sample]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            ("", dict(zip(self.labelnames, key)), value)
            for key, value in items
        ]


class _HistogramData:
    """Bucket counts + running sum/max of one histogram label set."""

    __slots__ = ("counts", "count", "total", "max")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets
        self.count = 0
        self.total = 0.0
        self.max = 0.0


class Histogram(_Family):
    """Log2-bucketed histogram family (cumulative Prometheus exposition)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        bounds: Sequence[float] = LOG2_BOUNDS_S,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self.bounds = tuple(float(bound) for bound in bounds)
        if sorted(self.bounds) != list(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self._data: Dict[Tuple[str, ...], _HistogramData] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation under one label set."""
        key = _label_key(self.labelnames, labels)
        index = bisect_right(self.bounds, value)
        with self._lock:
            data = self._data.get(key)
            if data is None:
                data = self._data[key] = _HistogramData(len(self.bounds) + 1)
            data.counts[index] += 1
            data.count += 1
            data.total += value
            if value > data.max:
                data.max = value

    def count(self, **labels: Any) -> int:
        """Observations recorded under one label set."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            data = self._data.get(key)
            return 0 if data is None else data.count

    def samples(self) -> List[Sample]:
        with self._lock:
            snapshot = [
                (key, list(data.counts), data.count, data.total)
                for key, data in sorted(self._data.items())
            ]
        out: List[Sample] = []
        for key, counts, count, total in snapshot:
            labels = dict(zip(self.labelnames, key))
            out.extend(
                bucket_samples(counts, count, total, self.bounds, labels)
            )
        return out


def bucket_samples(
    counts: Sequence[int],
    count: int,
    total: float,
    bounds: Sequence[float],
    labels: Mapping[str, str],
) -> List[Sample]:
    """Cumulative ``_bucket``/``_sum``/``_count`` samples of one label set."""
    out: List[Sample] = []
    cumulative = 0
    for bound, bucket in zip(bounds, counts):
        cumulative += bucket
        out.append(("_bucket", {**labels, "le": format_value(bound)}, cumulative))
    out.append(("_bucket", {**labels, "le": "+Inf"}, count))
    out.append(("_sum", dict(labels), total))
    out.append(("_count", dict(labels), count))
    return out


class _CallbackFamily(_Family):
    """A family whose samples are produced by a function at scrape time."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        sample_fn: Callable[[], Iterable[Sample]],
    ) -> None:
        super().__init__(name, help_text, ())
        self.kind = kind
        self._sample_fn = sample_fn

    def samples(self) -> List[Sample]:
        return list(self._sample_fn())


class MetricsRegistry:
    """Ordered collection of metric families with one text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            if family.name in self._families:
                raise ValueError(f"metric {family.name!r} already registered")
            self._families[family.name] = family
        return family

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Create and register a counter family."""
        counter = Counter(name, help_text, labelnames)
        self._register(counter)
        return counter

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Create and register a gauge family."""
        gauge = Gauge(name, help_text, labelnames)
        self._register(gauge)
        return gauge

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        bounds: Sequence[float] = LOG2_BOUNDS_S,
    ) -> Histogram:
        """Create and register a histogram family."""
        histogram = Histogram(name, help_text, labelnames, bounds)
        self._register(histogram)
        return histogram

    def callback(
        self,
        name: str,
        help_text: str,
        kind: str,
        sample_fn: Callable[[], Iterable[Sample]],
    ) -> None:
        """Register a scrape-time sample function as one family.

        This is how counters that already live elsewhere (cache stats,
        batcher stats, pool counters, SLO trackers) join the exposition
        without being rewritten on the registry's primitives: ``sample_fn``
        runs at every :meth:`render` and returns the family's samples.
        """
        self._register(_CallbackFamily(name, help_text, kind, sample_fn))

    def render(self) -> str:
        """The Prometheus text exposition of every registered family."""
        with self._lock:
            families = list(self._families.values())
        lines: List[str] = []
        for family in families:
            try:
                samples = family.samples()
            except Exception:
                continue  # one broken callback must not break the scrape
            lines.append(f"# HELP {family.name} {family.help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for suffix, labels, value in samples:
                lines.append(
                    f"{family.name}{suffix}{format_labels(labels)} "
                    f"{format_value(value)}"
                )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every family's samples as one JSON-encodable document.

        This is the publish side of the cluster scope: a front-end
        process serialises this snapshot into the shared store so any
        peer can merge it into a cluster-wide exposition (see
        :mod:`repro.obs.cluster`).  Shape::

            {name: {"kind": ..., "help": ...,
                    "samples": [[suffix, {label: value}, value], ...]}}

        The same broken-callback tolerance as :meth:`render` applies: a
        family whose sample function raises is skipped, never fatal.
        """
        with self._lock:
            families = list(self._families.values())
        out: Dict[str, Dict[str, Any]] = {}
        for family in families:
            try:
                samples = family.samples()
            except Exception:
                continue
            out[family.name] = {
                "kind": family.kind,
                "help": family.help_text,
                "samples": [
                    [suffix, {str(k): str(v) for k, v in labels.items()},
                     float(value)]
                    for suffix, labels, value in samples
                ],
            }
        return out


class LatencyHistogram:
    """Log-bucketed latency histogram with percentile estimates (thread-safe).

    Buckets double from 1 microsecond up through ~67 seconds plus one
    overflow bucket, so recording is O(1) with a fixed ~30-int footprint
    per endpoint -- safe to keep forever under production traffic, unlike
    a reservoir of raw samples.  Percentiles are read from the cumulative
    bucket counts and reported as each bucket's upper bound: an estimate
    within 2x of the true quantile, which is what latency SLOs need
    (p99 "about 8 ms" vs "about 16 ms", never "about 3 ms" when it's 20).
    """

    #: Upper bounds of the log2 buckets, in seconds (1 us .. ~67 s).
    BOUNDS_S = LOG2_BOUNDS_S

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.BOUNDS_S) + 1)  # +1 overflow
        self._count = 0
        self._total_s = 0.0
        self._max_s = 0.0

    def record(self, seconds: float) -> None:
        """Record one observation, in seconds."""
        index = bisect_right(self.BOUNDS_S, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total_s += seconds
            if seconds > self._max_s:
                self._max_s = seconds

    def snapshot(self) -> Tuple[List[int], int, float, float]:
        """Consistent (bucket counts, count, total_s, max_s) snapshot."""
        with self._lock:
            return list(self._counts), self._count, self._total_s, self._max_s

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's observations into this one.

        Both histograms share the fixed :data:`LOG2_BOUNDS_S` buckets, so
        the merge is exact (bucket counts sum elementwise); the estimator
        error of the merged histogram is the same <=2x bucket-width error
        as either input's.  Used by the cluster scope to combine
        per-process snapshots.
        """
        counts, count, total_s, max_s = other.snapshot()
        with self._lock:
            for index, bucket in enumerate(counts):
                self._counts[index] += bucket
            self._count += count
            self._total_s += total_s
            if max_s > self._max_s:
                self._max_s = max_s

    @classmethod
    def from_snapshot(
        cls,
        counts: Sequence[int],
        count: int,
        total_s: float,
        max_s: float,
    ) -> "LatencyHistogram":
        """Rebuild a histogram from a :meth:`snapshot` tuple."""
        histogram = cls()
        if len(counts) != len(histogram._counts):
            raise ValueError(
                f"expected {len(histogram._counts)} buckets, got {len(counts)}"
            )
        histogram._counts = [int(bucket) for bucket in counts]
        histogram._count = int(count)
        histogram._total_s = float(total_s)
        histogram._max_s = float(max_s)
        return histogram

    def quantile(self, fraction: float) -> float:
        """Estimated quantile in seconds, read from the bucket counts.

        An empty histogram returns the documented sentinel ``0.0`` for
        every quantile -- never ``nan`` -- and a single-observation
        histogram returns that observation's bucket estimate (clamped to
        the max seen, so it is the observation itself) for every
        fraction.  Estimates are bounded by the largest sample recorded.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction}")
        with self._lock:
            if self._count == 0:
                return 0.0
            return self._percentile_locked(fraction)

    def _percentile_locked(self, fraction: float) -> float:
        rank = fraction * self._count
        cumulative = 0
        for index, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= rank:
                if index < len(self.BOUNDS_S):
                    # Clamped: a bucket's upper bound can exceed the
                    # largest sample actually seen.
                    return min(self.BOUNDS_S[index], self._max_s)
                return self._max_s  # overflow bucket: report the max seen
        return self._max_s

    def to_json_dict(self) -> Dict[str, Any]:
        """Encode for the ``/stats`` endpoint (milliseconds for humans)."""
        with self._lock:
            if self._count == 0:
                return {
                    "count": 0, "mean_ms": 0.0, "max_ms": 0.0,
                    "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
                }
            return {
                "count": self._count,
                "mean_ms": self._total_s / self._count * 1000.0,
                "max_ms": self._max_s * 1000.0,
                "p50_ms": self._percentile_locked(0.50) * 1000.0,
                "p95_ms": self._percentile_locked(0.95) * 1000.0,
                "p99_ms": self._percentile_locked(0.99) * 1000.0,
            }


def latency_histogram_samples(
    histogram: LatencyHistogram, labels: Mapping[str, str]
) -> List[Sample]:
    """One :class:`LatencyHistogram` as Prometheus histogram samples."""
    counts, count, total, _ = histogram.snapshot()
    return bucket_samples(counts, count, total, histogram.BOUNDS_S, labels)


class EndpointLatencies:
    """Per-endpoint latency histograms for ``/stats`` (thread-safe).

    Endpoints are labelled by route pattern (``"GET /campaign/*"``), not
    raw path, so the map stays bounded regardless of how many campaign
    ids traffic touches.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: Dict[str, LatencyHistogram] = {}

    def observe(self, endpoint: str, seconds: float) -> None:
        """Record one request's latency under its endpoint label."""
        with self._lock:
            histogram = self._histograms.get(endpoint)
            if histogram is None:
                histogram = self._histograms[endpoint] = LatencyHistogram()
        histogram.record(seconds)

    def histogram(self, endpoint: str) -> Optional[LatencyHistogram]:
        """One endpoint's histogram, or ``None`` before any observation."""
        with self._lock:
            return self._histograms.get(endpoint)

    def items(self) -> List[Tuple[str, LatencyHistogram]]:
        """Endpoint-sorted (label, histogram) snapshot."""
        with self._lock:
            return sorted(self._histograms.items())

    def prometheus_samples(self, label_name: str = "endpoint") -> List[Sample]:
        """Every endpoint's histogram as one family's samples."""
        out: List[Sample] = []
        for endpoint, histogram in self.items():
            out.extend(
                latency_histogram_samples(histogram, {label_name: endpoint})
            )
        return out

    def to_json_dict(self) -> Dict[str, Any]:
        """Encode for the ``/stats`` endpoint, endpoint-sorted."""
        return {
            endpoint: histogram.to_json_dict()
            for endpoint, histogram in self.items()
        }


__all__ = [
    "Counter",
    "EndpointLatencies",
    "Gauge",
    "Histogram",
    "LOG2_BOUNDS_S",
    "LatencyHistogram",
    "MetricsRegistry",
    "bucket_samples",
    "format_labels",
    "format_value",
    "latency_histogram_samples",
]
