"""Observability layer: metrics registry, request tracing, phase profiling, SLOs.

``repro.obs`` is the service stack's shared instrumentation surface:

* :mod:`repro.obs.metrics` -- thread-safe counter/gauge/histogram
  families with Prometheus text exposition (``GET /metrics``), including
  the log2 latency histograms that back ``/stats`` percentiles.
* :mod:`repro.obs.tracing` -- W3C-traceparent-compatible span contexts
  that follow a request from the HTTP handler through batcher groups,
  pool slices, and sharded campaign process workers; structured span
  logs (``--log-format json``) and the recorder behind ``GET /trace/<id>``.
* :mod:`repro.obs.profiling` -- per-phase wall-clock accumulation for
  the campaign pipeline (``repro fleet --profile``,
  ``CampaignResponse.profile``).
* :mod:`repro.obs.slo` -- per-endpoint latency objectives with good/total
  counters and 5m/1h burn-rate windows (``repro serve --slo-ms ...``).
"""

from .metrics import (
    Counter,
    EndpointLatencies,
    Gauge,
    Histogram,
    LOG2_BOUNDS_S,
    LatencyHistogram,
    MetricsRegistry,
    latency_histogram_samples,
)
from .profiling import PhaseProfiler
from .slo import DEFAULT_SLO_MS, SloTracker, parse_slo_spec
from .tracing import (
    JsonLogFormatter,
    SpanContext,
    TraceRecorder,
    capture_spans,
    configure_logging,
    current_context,
    format_traceparent,
    ingest,
    new_trace_id,
    parse_traceparent,
    record_span,
    recorder,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_SLO_MS",
    "EndpointLatencies",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "LOG2_BOUNDS_S",
    "LatencyHistogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "SloTracker",
    "SpanContext",
    "TraceRecorder",
    "capture_spans",
    "configure_logging",
    "current_context",
    "format_traceparent",
    "ingest",
    "latency_histogram_samples",
    "new_trace_id",
    "parse_slo_spec",
    "parse_traceparent",
    "record_span",
    "recorder",
    "span",
]
