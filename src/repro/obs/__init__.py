"""Observability layer: metrics registry, request tracing, phase profiling, SLOs.

``repro.obs`` is the service stack's shared instrumentation surface:

* :mod:`repro.obs.metrics` -- thread-safe counter/gauge/histogram
  families with Prometheus text exposition (``GET /metrics``), including
  the log2 latency histograms that back ``/stats`` percentiles.
* :mod:`repro.obs.tracing` -- W3C-traceparent-compatible span contexts
  that follow a request from the HTTP handler through batcher groups,
  pool slices, and sharded campaign process workers; structured span
  logs (``--log-format json``) and the recorder behind ``GET /trace/<id>``.
* :mod:`repro.obs.profiling` -- per-phase wall-clock accumulation for
  the campaign pipeline (``repro fleet --profile``,
  ``CampaignResponse.profile``).
* :mod:`repro.obs.slo` -- per-endpoint latency objectives with good/total
  counters and 5m/1h burn-rate windows (``repro serve --slo-ms ...``).
* :mod:`repro.obs.cluster` -- cross-process snapshot publication and the
  exact merges behind ``GET /v1/metrics?scope=cluster`` and
  ``/v1/stats?scope=cluster`` on a ``--procs N`` front-end.
"""

from .cluster import (
    DEFAULT_SNAPSHOT_TTL_S,
    build_snapshot,
    cluster_stats,
    merged_families,
    proc_identity,
    render_cluster,
)
from .metrics import (
    Counter,
    EndpointLatencies,
    Gauge,
    Histogram,
    LOG2_BOUNDS_S,
    LatencyHistogram,
    MetricsRegistry,
    latency_histogram_samples,
)
from .profiling import PhaseProfiler
from .slo import DEFAULT_SLO_MS, SloTracker, merged_burn_rates, parse_slo_spec
from .tracing import (
    JsonLogFormatter,
    SpanContext,
    TraceRecorder,
    capture_spans,
    configure_logging,
    current_context,
    format_traceparent,
    ingest,
    new_trace_id,
    parse_traceparent,
    record_span,
    recorder,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_SLO_MS",
    "DEFAULT_SNAPSHOT_TTL_S",
    "EndpointLatencies",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "LOG2_BOUNDS_S",
    "LatencyHistogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "SloTracker",
    "SpanContext",
    "TraceRecorder",
    "build_snapshot",
    "capture_spans",
    "cluster_stats",
    "configure_logging",
    "current_context",
    "format_traceparent",
    "ingest",
    "latency_histogram_samples",
    "merged_burn_rates",
    "merged_families",
    "new_trace_id",
    "parse_slo_spec",
    "parse_traceparent",
    "proc_identity",
    "record_span",
    "recorder",
    "render_cluster",
    "span",
]
