"""Phase profiler for the campaign pipeline.

A campaign run is a short fixed pipeline (harvest matrix, scan settle,
per-cell solves, arena pack/attach, merge), so the profiler is just a
named-accumulator map with a timing context manager -- cheap enough to
leave on permanently, which is the point: ``FleetResult.phase_timings``
and ``CampaignResponse.profile`` always carry the breakdown, and the
service folds it into per-phase histograms in ``/metrics``.

Phase names accumulate: timing the same phase twice (e.g. ``cell_solve``
once per cell) sums the durations.  Worker processes each build their own
profiler and return ``as_dict()``; the parent folds them back with
:meth:`PhaseProfiler.merge` so sharded and in-process campaigns report
the same phase vocabulary.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator, Mapping


class PhaseProfiler:
    """Accumulates wall-clock seconds per named pipeline phase."""

    def __init__(self) -> None:
        self._phases: Dict[str, float] = {}

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the body and add its duration under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Add already-measured seconds under ``name``."""
        self._phases[name] = self._phases.get(name, 0.0) + float(seconds)

    def merge(self, phases: Mapping[str, float]) -> None:
        """Fold another profiler's ``as_dict()`` into this one."""
        for name, seconds in phases.items():
            self.add(name, seconds)

    def as_dict(self) -> Dict[str, float]:
        """Phase name -> accumulated seconds, name-sorted."""
        return {name: self._phases[name] for name in sorted(self._phases)}

    def __bool__(self) -> bool:
        return bool(self._phases)


__all__ = ["PhaseProfiler"]
