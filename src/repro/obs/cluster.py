"""Cluster scope: merge per-process observability snapshots exactly.

``repro serve --procs N`` is N independent processes behind one
SO_REUSEPORT socket, so a plain ``GET /metrics`` scrape only ever sees
the one process the kernel routed it to.  This module is the other half
of ``?scope=cluster``: each process periodically publishes a *snapshot*
of its observability state into the shared :class:`CampaignStore`, and
any process can merge the live snapshots into one answer.

A snapshot (see :func:`build_snapshot`) is a plain JSON document:

* ``families`` -- :meth:`MetricsRegistry.snapshot`: every family's
  samples.  Counters and log2-bucket histograms merge *exactly* across
  processes (fixed shared bounds, so bucket counts sum elementwise);
  gauges are inherently per-process and are kept distinct under a
  ``proc`` label instead of being summed.
* ``slo`` -- :meth:`SloTracker.snapshot`: good/bad counts per wall-clock
  epoch bucket, from which :func:`repro.obs.slo.merged_burn_rates`
  reconstructs the cluster burn rate exactly.
* ``stats`` -- the process's ``/stats`` document, so
  ``/v1/stats?scope=cluster`` and ``repro top`` get per-process rows
  without extra scrapes.

:func:`render_cluster` produces the merged Prometheus exposition:
every process's series with a ``proc="host:pid"`` label added, plus
synthesized ``repro_cluster_*`` families (live front-end count, merged
SLO event totals, cluster burn rates).  Liveness is the store's job --
snapshots from dead or silent processes age out after a TTL before this
module ever sees them.
"""

from __future__ import annotations

import json
import os
import socket
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from . import slo as slo_module
from .metrics import MetricsRegistry, format_labels, format_value

#: Snapshots older than this are considered stale and excluded from the
#: cluster scope (and eventually deleted by the store).  Publishers run
#: every ~2 s, so 15 s tolerates a few missed beats but ages a SIGKILLed
#: process out of dashboards within seconds.
DEFAULT_SNAPSHOT_TTL_S = 15.0

#: How often each front-end publishes its snapshot (and drains finished
#: spans) into the store.
PUBLISH_INTERVAL_S = 2.0


def proc_identity(
    pid: Optional[int] = None, host: Optional[str] = None
) -> str:
    """This process's cluster-wide identity, ``host:pid``."""
    if pid is None:
        pid = os.getpid()
    if host is None:
        host = socket.gethostname()
    return f"{host}:{pid}"


def build_snapshot(
    registry: MetricsRegistry,
    slo: Optional[Any] = None,
    stats: Optional[Mapping[str, Any]] = None,
    proc: Optional[str] = None,
) -> Dict[str, Any]:
    """One process's publishable observability snapshot."""
    if proc is None:
        proc = proc_identity()
    host, _, pid = proc.rpartition(":")
    payload: Dict[str, Any] = {
        "proc": proc,
        "host": host,
        "pid": int(pid) if pid.isdigit() else 0,
        "families": registry.snapshot(),
    }
    if slo is not None:
        payload["slo"] = slo.snapshot()
    if stats is not None:
        payload["stats"] = dict(stats)
    return payload


def encode_snapshot(payload: Mapping[str, Any]) -> bytes:
    """A snapshot as compact UTF-8 JSON (the store's payload format)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode_snapshot(raw: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_snapshot`."""
    return json.loads(raw.decode("utf-8"))


def _sample_key(
    suffix: str, labels: Mapping[str, str]
) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    return suffix, tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def merged_families(
    payloads: Iterable[Mapping[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Sum counter and histogram families across snapshots, exactly.

    Samples with identical (suffix, labels) sum elementwise -- for the
    shared log2-bucket histograms this is an exact merge, for counters a
    plain sum -- so the operation is associative and commutative.
    Gauges (and untyped callbacks) do not have a meaningful cross-process
    sum and are omitted; the cluster exposition keeps them per-process
    under the ``proc`` label instead.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for payload in payloads:
        for name, family in payload.get("families", {}).items():
            if family.get("kind") not in ("counter", "histogram"):
                continue
            entry = out.setdefault(name, {
                "kind": family["kind"],
                "help": family.get("help", ""),
                "_samples": {},
            })
            for suffix, labels, value in family.get("samples", ()):
                key = _sample_key(suffix, labels)
                entry["_samples"][key] = (
                    entry["_samples"].get(key, 0.0) + float(value)
                )
    for entry in out.values():
        entry["samples"] = [
            [suffix, dict(labels), value]
            for (suffix, labels), value in sorted(entry.pop("_samples").items())
        ]
    return out


def _synthesized_lines(snapshots: List[Mapping[str, Any]]) -> List[str]:
    """The ``repro_cluster_*`` families appended to the merged exposition."""
    lines = [
        "# HELP repro_cluster_frontends Live front-end processes "
        "contributing to this cluster scrape.",
        "# TYPE repro_cluster_frontends gauge",
        f"repro_cluster_frontends {format_value(float(len(snapshots)))}",
    ]
    slo_payloads = [p["slo"] for p in snapshots if p.get("slo")]
    if not slo_payloads:
        return lines
    merged = slo_module.merged_burn_rates(slo_payloads)
    objectives = merged.get("objectives", {})
    if not objectives:
        return lines
    lines.append(
        "# HELP repro_cluster_slo_events_total Requests judged against "
        "each SLO across all live processes, by outcome."
    )
    lines.append("# TYPE repro_cluster_slo_events_total counter")
    for key, entry in sorted(objectives.items()):
        good = entry.get("good", 0)
        bad = entry.get("total", 0) - good
        for outcome, value in (("good", good), ("bad", bad)):
            labels = format_labels({"outcome": outcome, "slo": key})
            lines.append(
                f"repro_cluster_slo_events_total{labels} {format_value(value)}"
            )
    lines.append(
        "# HELP repro_cluster_slo_burn_rate Error-budget burn rate per "
        "SLO computed from the merged epochs of all live processes."
    )
    lines.append("# TYPE repro_cluster_slo_burn_rate gauge")
    for key, entry in sorted(objectives.items()):
        for field, value in sorted(entry.items()):
            if not field.startswith("burn_rate_"):
                continue
            window = field[len("burn_rate_"):]
            labels = format_labels({"slo": key, "window": window})
            lines.append(
                f"repro_cluster_slo_burn_rate{labels} {format_value(value)}"
            )
    return lines


def render_cluster(snapshots: List[Mapping[str, Any]]) -> str:
    """The merged Prometheus exposition of the live snapshots.

    Every process's series are kept distinct under a ``proc`` label
    (``setdefault``: families that already carry one, like
    ``repro_frontend_up``, are not double-labelled) so no information is
    lost; exact cluster totals for counters and histograms are one
    ``sum by`` away in PromQL.  Synthesized ``repro_cluster_*`` families
    carry what cannot be recovered from per-process series: the live
    process count and the burn rates from the merged SLO epochs.
    """
    ordered = sorted(snapshots, key=lambda p: str(p.get("proc", "")))
    names: Dict[str, Dict[str, Any]] = {}
    for payload in ordered:
        for name, family in payload.get("families", {}).items():
            names.setdefault(name, family)
    lines: List[str] = []
    for name, first in names.items():
        lines.append(f"# HELP {name} {first.get('help', '')}")
        lines.append(f"# TYPE {name} {first.get('kind', 'untyped')}")
        for payload in ordered:
            family = payload.get("families", {}).get(name)
            if family is None:
                continue
            proc = str(payload.get("proc", ""))
            for suffix, labels, value in family.get("samples", ()):
                labelled = dict(labels)
                labelled.setdefault("proc", proc)
                lines.append(
                    f"{name}{suffix}{format_labels(labelled)} "
                    f"{format_value(value)}"
                )
    lines.extend(_synthesized_lines(ordered))
    return "\n".join(lines) + "\n"


def cluster_stats(
    snapshots: List[Mapping[str, Any]], now: Optional[float] = None
) -> Dict[str, Any]:
    """The merged ``/stats?scope=cluster`` document.

    Per-process ``/stats`` documents are kept whole under their ``proc``
    key (that is what ``repro top`` renders as rows); the cluster-level
    ``slo`` section is recomputed from the merged epochs rather than
    averaged from per-process burn rates, which would be wrong whenever
    traffic is unevenly routed.
    """
    ordered = sorted(snapshots, key=lambda p: str(p.get("proc", "")))
    return {
        "scope": "cluster",
        "procs": {
            str(payload.get("proc", f"unknown-{index}")):
                payload.get("stats", {})
            for index, payload in enumerate(ordered)
        },
        "slo": slo_module.merged_burn_rates(
            [p["slo"] for p in ordered if p.get("slo")], now
        ),
    }


__all__ = [
    "DEFAULT_SNAPSHOT_TTL_S",
    "PUBLISH_INTERVAL_S",
    "build_snapshot",
    "cluster_stats",
    "decode_snapshot",
    "encode_snapshot",
    "merged_families",
    "proc_identity",
    "render_cluster",
]
