"""Request tracing: span contexts, W3C traceparent, structured span logs.

One request's journey through the service crosses an asyncio event loop,
a micro-batcher flush task, worker-pool threads, and (for campaigns)
``ProcessPoolExecutor`` workers in other processes.  This module gives
each hop a :class:`SpanContext` -- a (trace_id, span_id) pair compatible
with the W3C ``traceparent`` header -- and a way to emit what happened
as structured span records:

* :func:`span` is a context manager that opens a child span of the
  current (or an explicit) parent, installs it in a ``contextvars``
  context variable for the duration, and on exit emits one span record.
* Contextvars do **not** cross ``run_in_executor`` threads or process
  pools, so code handing work to an executor captures
  :func:`current_context` first and passes it explicitly as ``parent=``
  (worker processes receive it pickled -- :class:`SpanContext` is a
  plain frozen dataclass precisely so it pickles cheaply).
* Span records go to the stdlib logger ``repro.obs.span`` (one INFO line
  each; with :func:`configure_logging` ``fmt="json"`` every log line is
  one JSON object carrying the trace/span ids) and into a bounded
  in-process :class:`TraceRecorder` that backs ``GET /trace/<id>``.
* Campaign process workers have no channel to the parent's recorder, so
  they collect spans with :func:`capture_spans` and return them as plain
  dicts; the parent calls :func:`ingest` to file them.

Trace ids are 32 lowercase hex chars, span ids 16, as in the W3C trace
context spec; :func:`parse_traceparent` / :func:`format_traceparent`
translate to and from the ``00-<trace>-<span>-01`` header form.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import logging
import re
import secrets
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

SPAN_LOGGER_NAME = "repro.obs.span"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """A fresh random 32-hex-char trace id."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh random 16-hex-char span id."""
    return secrets.token_hex(8)


@dataclass(frozen=True)
class SpanContext:
    """One point in a trace: (trace_id, span_id).  Picklable by design."""

    trace_id: str
    span_id: str

    def child(self) -> "SpanContext":
        """A new context in the same trace with a fresh span id."""
        return SpanContext(trace_id=self.trace_id, span_id=new_span_id())

    def traceparent(self) -> str:
        """This context as a W3C ``traceparent`` header value."""
        return format_traceparent(self)


def format_traceparent(context: SpanContext) -> str:
    """``00-<trace_id>-<span_id>-01`` for the given context."""
    return f"00-{context.trace_id}-{context.span_id}-01"


def parse_traceparent(value: Optional[str]) -> Optional[SpanContext]:
    """Parse a ``traceparent`` header; ``None`` when absent or malformed."""
    if not value:
        return None
    match = _TRACEPARENT_RE.match(value.strip().lower())
    if match is None:
        return None
    _, trace_id, span_id, _ = match.groups()
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None  # the spec reserves all-zero ids as invalid
    return SpanContext(trace_id=trace_id, span_id=span_id)


_current: "contextvars.ContextVar[Optional[SpanContext]]" = contextvars.ContextVar(
    "repro_obs_span", default=None
)

#: Optional per-context list collecting span records instead of / besides
#: the process-global recorder -- used by process workers via
#: :func:`capture_spans`.
_sink: "contextvars.ContextVar[Optional[List[Dict[str, Any]]]]" = (
    contextvars.ContextVar("repro_obs_span_sink", default=None)
)


def current_context() -> Optional[SpanContext]:
    """The active span context of this ``contextvars`` context, if any."""
    return _current.get()


class TraceRecorder:
    """Bounded in-memory store of finished spans, keyed by trace id.

    Backs ``GET /trace/<id>``: the most recent ``max_traces`` traces are
    kept (LRU on insertion), each capped at ``max_spans_per_trace`` so a
    runaway campaign cannot grow one entry without bound.
    """

    def __init__(
        self,
        max_traces: int = 256,
        max_spans_per_trace: int = 512,
        drain_buffer: int = 4096,
    ) -> None:
        self.max_traces = int(max_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()
        # Monotonic arrival sequence + a bounded buffer of recent records
        # so a persistence task can drain "everything since my last seq"
        # without holding the recorder lock across I/O.
        self._seq = 0
        self._recent: "deque[tuple[int, Dict[str, Any]]]" = deque(
            maxlen=int(drain_buffer)
        )

    def add(self, record: Dict[str, Any]) -> None:
        """File one finished span record under its trace id."""
        trace_id = record.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            self._seq += 1
            self._recent.append((self._seq, dict(record)))
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = self._traces[trace_id] = []
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            if len(spans) < self.max_spans_per_trace:
                spans.append(dict(record))

    def records_since(self, seq: int) -> "tuple[int, List[Dict[str, Any]]]":
        """(newest seq, records filed after ``seq``) -- the drain API.

        A publisher loop calls this with the last sequence number it
        persisted; records that fell out of the bounded drain buffer
        before being drained are lost (bounded-memory by design).
        """
        with self._lock:
            fresh = [
                (number, dict(record))
                for number, record in self._recent
                if number > seq
            ]
            newest = self._seq
        if not fresh:
            return newest, []
        return fresh[-1][0], [record for _, record in fresh]

    def spans(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        """Recorded spans of one trace (start-ordered), ``None`` if unknown."""
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                return None
            return sorted(
                (dict(span) for span in spans),
                key=lambda span: span.get("start_s", 0.0),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


_RECORDER = TraceRecorder()


def recorder() -> TraceRecorder:
    """The process-global trace recorder behind ``GET /trace/<id>``."""
    return _RECORDER


@dataclass
class Span:
    """One in-flight span; mutate :attr:`attributes` before it closes."""

    name: str
    context: SpanContext
    parent_span_id: Optional[str]
    start_s: float
    attributes: Dict[str, Any] = field(default_factory=dict)

    def record(self, duration_s: float) -> Dict[str, Any]:
        """This span as a finished plain-dict record."""
        record: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_span_id": self.parent_span_id,
            "start_s": self.start_s,
            "duration_ms": duration_s * 1000.0,
        }
        if self.attributes:
            record["attrs"] = dict(self.attributes)
        return record


def _emit(record: Dict[str, Any]) -> None:
    sink = _sink.get()
    if sink is not None:
        sink.append(record)
    _RECORDER.add(record)
    logging.getLogger(SPAN_LOGGER_NAME).info(
        "span %s %.3fms",
        record["name"],
        record["duration_ms"],
        extra={
            "span_name": record["name"],
            "trace_id": record["trace_id"],
            "span_id": record["span_id"],
            "parent_span_id": record.get("parent_span_id"),
            "duration_ms": record["duration_ms"],
            **({"attrs": record["attrs"]} if "attrs" in record else {}),
        },
    )


@contextlib.contextmanager
def span(
    name: str,
    parent: Optional[SpanContext] = None,
    **attributes: Any,
) -> Iterator[Span]:
    """Open a span, install its context, and emit a record on exit.

    ``parent`` defaults to :func:`current_context`; when neither exists a
    fresh trace is started.  The record is emitted even when the body
    raises (with an ``error`` attribute), then the exception propagates.
    """
    if parent is None:
        parent = current_context()
    if parent is None:
        context = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        parent_span_id = None
    else:
        context = parent.child()
        parent_span_id = parent.span_id
    active = Span(
        name=name,
        context=context,
        parent_span_id=parent_span_id,
        start_s=time.time(),
        attributes=dict(attributes),
    )
    token = _current.set(context)
    start = time.perf_counter()
    try:
        yield active
    except BaseException as exc:
        active.attributes.setdefault("error", type(exc).__name__)
        raise
    finally:
        _current.reset(token)
        _emit(active.record(time.perf_counter() - start))


def record_span(
    name: str,
    parent: Optional[SpanContext],
    start_s: float,
    duration_s: float,
    **attributes: Any,
) -> Dict[str, Any]:
    """Emit a span synthesized from already-measured timings.

    For call sites that timed work before knowing whether a trace was
    active, or that aggregate timings from elsewhere (per-phase campaign
    timings, batcher flush groups).  Returns the emitted record.
    """
    if parent is None:
        context = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        parent_span_id = None
    else:
        context = parent.child()
        parent_span_id = parent.span_id
    record = Span(
        name=name,
        context=context,
        parent_span_id=parent_span_id,
        start_s=start_s,
        attributes=dict(attributes),
    ).record(duration_s)
    _emit(record)
    return record


@contextlib.contextmanager
def capture_spans() -> Iterator[List[Dict[str, Any]]]:
    """Collect every span record emitted in the body into the yielded list.

    Process workers use this to ship their spans back to the parent as
    return values (their in-process recorder dies with them); the parent
    files the dicts with :func:`ingest`.
    """
    captured: List[Dict[str, Any]] = []
    token = _sink.set(captured)
    try:
        yield captured
    finally:
        _sink.reset(token)


def ingest(records: Iterable[Dict[str, Any]]) -> None:
    """File span records produced elsewhere (no re-logging)."""
    for record in records:
        if isinstance(record, dict):
            _RECORDER.add(record)


#: LogRecord attributes that are plumbing, not user data -- everything
#: else attached via ``extra=`` is carried into the JSON line.
_RESERVED_LOG_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line, carrying any ``extra=`` attributes."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED_LOG_FIELDS or key in payload:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class TextLogFormatter(logging.Formatter):
    """Human-oriented text lines; appends trace ids when present."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        trace_id = record.__dict__.get("trace_id")
        if trace_id:
            line = f"{line} trace_id={trace_id}"
        return line


#: Format last installed by :func:`configure_logging`, or ``None`` --
#: what :func:`init_worker_logging` replays inside pool workers.
_ACTIVE_LOG_FORMAT: Optional[str] = None


def configure_logging(
    fmt: str = "text",
    level: int = logging.INFO,
    stream: Any = None,
) -> logging.Handler:
    """Install one root handler with the chosen formatter.

    ``fmt`` is ``"text"`` or ``"json"``.  Replaces handlers previously
    installed by this function (idempotent across re-invocation, e.g.
    tests or an embedded server restart) and returns the handler.
    Fork-started campaign workers inherit the configuration; spawn-started
    ones (the default inside a spawn-context front-end child) replay it
    through :func:`init_worker_logging`.
    """
    global _ACTIVE_LOG_FORMAT
    if fmt not in ("text", "json"):
        raise ValueError(f"log format must be 'text' or 'json', got {fmt!r}")
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLogFormatter() if fmt == "json" else TextLogFormatter())
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root = logging.getLogger()
    for existing in list(root.handlers):
        if getattr(existing, "_repro_obs_handler", False):
            root.removeHandler(existing)
    root.addHandler(handler)
    if root.level > level or root.level == logging.WARNING:
        root.setLevel(level)
    _ACTIVE_LOG_FORMAT = fmt
    return handler


def active_log_format() -> Optional[str]:
    """The format :func:`configure_logging` last installed, if any."""
    return _ACTIVE_LOG_FORMAT


def init_worker_logging(fmt: Optional[str]) -> None:
    """Process-pool initializer: mirror the parent's logging setup.

    A pool created inside a spawn-context process gets spawn-started
    workers (the child's inherited default start method), which import
    everything fresh and so lose the parent's logging configuration --
    their span lines would silently vanish.  Fork-started workers re-run
    the (idempotent) configuration harmlessly.  ``fmt`` is the parent's
    :func:`active_log_format`; ``None`` means the parent never configured
    logging and the worker is left alone.
    """
    if fmt is not None:
        configure_logging(fmt)


__all__ = [
    "JsonLogFormatter",
    "SPAN_LOGGER_NAME",
    "Span",
    "SpanContext",
    "TextLogFormatter",
    "TraceRecorder",
    "active_log_format",
    "capture_spans",
    "configure_logging",
    "current_context",
    "init_worker_logging",
    "format_traceparent",
    "ingest",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "record_span",
    "recorder",
    "span",
]
